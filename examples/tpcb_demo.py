#!/usr/bin/env python3
"""Mini TPC-B run: TDB vs TDB-S vs the Berkeley-DB-style baseline.

A pocket version of the paper's section 7 evaluation (Figures 9 and 10):
loads the scaled-down TPC-B schema into all three systems, runs the same
transaction mix, and prints latency and I/O profiles side by side.  For
the full harness with the paper-value comparison, run
``python -m repro.bench.figure10``.

Run: ``python examples/tpcb_demo.py``
"""

from repro.bench.metrics import DiskModel, TxnMetrics
from repro.bench.tpcb import BaselineTpcbDriver, TdbTpcbDriver, TpcbScale

SCALE = TpcbScale(accounts=1000, tellers=100, branches=10)
CACHE_BYTES = 64 * 1024
WARMUP = 100
TXNS = 300


def measure(name: str, driver) -> TxnMetrics:
    driver.load()
    driver.run(WARMUP)
    io_before = driver.untrusted.stats.snapshot()
    counter_before = driver.counter.read() if hasattr(driver, "counter") else 0
    latency = driver.run(TXNS)
    io_delta = driver.untrusted.stats.delta_since(io_before)
    counter_bumps = (
        driver.counter.read() - counter_before if hasattr(driver, "counter") else 0
    )
    metrics = TxnMetrics.collect(
        name, latency, io_delta, DiskModel(), driver.db_size_bytes(),
        counter_bumps=counter_bumps,
    )
    driver.close()
    return metrics


def main() -> None:
    print(
        f"TPC-B: {SCALE.accounts} accounts / {SCALE.tellers} tellers / "
        f"{SCALE.branches} branches; {TXNS} measured transactions "
        f"(paper scale: 100000/1000/100, 200000 transactions)"
    )
    print("-" * 78)
    rows = [
        measure("TDB", TdbTpcbDriver(SCALE, secure=False, cache_bytes=CACHE_BYTES)),
        measure("TDB-S", TdbTpcbDriver(SCALE, secure=True, cache_bytes=CACHE_BYTES)),
        measure("BerkeleyDB", BaselineTpcbDriver(SCALE, cache_bytes=CACHE_BYTES)),
    ]
    for metrics in rows:
        print(metrics.row())
    print("-" * 78)
    baseline = rows[-1]
    for metrics in rows[:-1]:
        print(
            f"{metrics.system}: modeled disk time is "
            f"{metrics.modeled_disk_ms_per_txn / baseline.modeled_disk_ms_per_txn:.0%}"
            f" of the baseline's; writes "
            f"{metrics.bytes_written_per_txn / baseline.bytes_written_per_txn:.0%}"
            f" of the baseline's bytes per transaction"
        )
    print(
        "(paper: TDB ran at 56% of Berkeley DB's response time and wrote "
        "roughly half the bytes; TDB-S at 85%)"
    )


if __name__ == "__main__":
    main()
