#!/usr/bin/env python3
"""DRM usage metering: the paper's motivating application (sections 1, 5).

A consumer device stores one meter per piece of content plus a pre-paid
account balance.  Contracts enforced here:

* **pay-per-view**: each view debits the balance,
* **free after first ten paid views** (one of the paper's example
  contracts): after ten paid views of a title, further views are free.

The collection store gives the meters two functional indexes — a unique
hash index on the content id and a B+tree on the *derived* total usage
count (exactly Figure 7's ``usageCountEx``) — and the iterator-based
reset mirrors the paper's sample code.

Run: ``python examples/drm_metering.py``
"""

from repro import (
    BufferReader,
    BufferWriter,
    ClassRegistry,
    Database,
    Indexer,
    Persistent,
)
from repro.errors import DuplicateKeyError


class Meter(Persistent):
    class_id = "drm.meter"

    def __init__(self, content_id=0, title="", paid_views=0, free_views=0):
        self.content_id = content_id
        self.title = title
        self.paid_views = paid_views
        self.free_views = free_views

    def total_views(self) -> int:
        return self.paid_views + self.free_views

    def pickle(self) -> bytes:
        return (
            BufferWriter()
            .write_int(self.content_id)
            .write_str(self.title)
            .write_int(self.paid_views)
            .write_int(self.free_views)
            .getvalue()
        )

    @classmethod
    def unpickle(cls, data: bytes) -> "Meter":
        reader = BufferReader(data)
        return cls(
            reader.read_int(), reader.read_str(), reader.read_int(), reader.read_int()
        )


class Account(Persistent):
    class_id = "drm.account"

    def __init__(self, cents=0):
        self.cents = cents

    def pickle(self) -> bytes:
        return BufferWriter().write_int(self.cents).getvalue()

    @classmethod
    def unpickle(cls, data: bytes) -> "Account":
        return cls(BufferReader(data).read_int())


CONTENT_ID_INDEX = Indexer(
    "content-id", Meter, lambda m: m.content_id, unique=True, kind="hash"
)
# A functional index over a *derived* value — the capability the paper
# contrasts with offset-based embedded databases (section 5.1.1).
USAGE_INDEX = Indexer(
    "total-usage", Meter, lambda m: m.total_views(), unique=False, kind="btree"
)

PRICE_CENTS = 300
FREE_AFTER_PAID_VIEWS = 10


def view_content(db: Database, account_oid: int, content_id: int) -> str:
    """Enforce the contract for one view; return a receipt line."""
    with db.ctransaction() as ct:
        meters = ct.write_collection("meters")
        iterator = meters.query_match(CONTENT_ID_INDEX, content_id)
        if iterator.end():
            iterator.close()
            raise KeyError(f"no meter for content {content_id}")
        meter = iterator.write()
        if meter.paid_views >= FREE_AFTER_PAID_VIEWS:
            meter.free_views += 1
            receipt = f"{meter.title}: free view (#{meter.total_views()})"
        else:
            account = ct._txn.open_writable(account_oid, Account)
            if account.cents < PRICE_CENTS:
                iterator.abandon()
                ct.abort()
                return f"{meter.title}: DECLINED (balance too low)"
            account.cents -= PRICE_CENTS
            meter.paid_views += 1
            receipt = (
                f"{meter.title}: paid view #{meter.paid_views} "
                f"(balance {account.cents} cents)"
            )
        iterator.next()
        iterator.close()
    return receipt


def main() -> None:
    registry = ClassRegistry()
    registry.register(Meter)
    registry.register(Account)
    db = Database.in_memory(registry=registry)
    db.register_indexer(CONTENT_ID_INDEX)
    db.register_indexer(USAGE_INDEX)

    # -- set up the catalog of content meters and the pre-paid account ------
    with db.transaction() as txn:
        account_oid = txn.insert(Account(cents=4000))
        txn.bind_name("account", account_oid)
    titles = ["Blue Train", "Giant Steps", "Naima", "Lush Life"]
    with db.ctransaction() as ct:
        meters = ct.create_collection("meters", CONTENT_ID_INDEX)
        meters.create_index(USAGE_INDEX)
        for content_id, title in enumerate(titles):
            meters.insert(Meter(content_id, title))
        try:
            meters.insert(Meter(0, "Duplicate of Blue Train"))
        except DuplicateKeyError as exc:
            print(f"unique index enforced at insert: {exc}")

    # -- consume content under the contracts ---------------------------------
    print("\n--- consumption ---")
    for _ in range(12):
        print(view_content(db, account_oid, content_id=0))
    print(view_content(db, account_oid, content_id=1))
    print(view_content(db, account_oid, content_id=2))

    # -- report: who used more than 5 views? (range query on derived key) ---
    print("\n--- heavy usage report (total views >= 5) ---")
    with db.ctransaction() as ct:
        meters = ct.read_collection("meters")
        iterator = meters.query_range(USAGE_INDEX, 5, None)
        while not iterator.end():
            meter = iterator.read()
            print(f"  {meter.title}: {meter.total_views()} views")
            iterator.next()
        iterator.close()
        ct.abort()

    # -- end-of-billing-cycle reset (the paper's Figure 7) -------------------
    print("\n--- resetting meters with usage above 100... er, 5 ---")
    with db.ctransaction() as ct:
        meters = ct.write_collection("meters")
        iterator = meters.query_range(USAGE_INDEX, 5, None)
        reset_count = 0
        while not iterator.end():
            meter = iterator.write()
            meter.paid_views = 0
            meter.free_views = 0
            reset_count += 1
            iterator.next()
        iterator.close()
        print(f"reset {reset_count} meter(s)")

    with db.ctransaction() as ct:
        meters = ct.read_collection("meters")
        leftovers = meters.query_range(USAGE_INDEX, 5, None)
        assert leftovers.end(), "reset meters must leave the high-usage range"
        leftovers.close()
        ct.abort()
    print("high-usage range is empty after reset — index maintained "
          "automatically at iterator close")
    db.close()


if __name__ == "__main__":
    main()
