#!/usr/bin/env python3
"""Tamper and replay detection: TDB's security guarantees in action.

The paper's threat model (section 3): the consumer controls the device,
so the untrusted store can be read and modified offline — including the
classic DRM attack of saving the whole database before a purchase and
restoring it afterwards.  TDB cannot *prevent* any of this; it must
*detect* all of it.  This example plays the attacker and shows each
attack being caught:

1. reading the raw store finds no plaintext (secrecy),
2. a flipped bit in a chunk payload trips the Merkle tree,
3. a truncated log trips the counter binding,
4. a full replay of an old image trips the one-way counter,
5. the same database opened with a wrong secret fails authentication.

Run: ``python examples/tamper_detection.py``
"""

from repro import BufferReader, BufferWriter, ClassRegistry, Persistent
from repro.chunkstore import ChunkStore
from repro.config import ChunkStoreConfig
from repro.errors import ReplayDetectedError, TamperDetectedError
from repro.objectstore import ObjectStore
from repro.platform import (
    Attacker,
    MemoryOneWayCounter,
    MemorySecretStore,
    MemoryUntrustedStore,
)


class Wallet(Persistent):
    class_id = "tamper.wallet"

    def __init__(self, cents=0):
        self.cents = cents

    def pickle(self) -> bytes:
        return BufferWriter().write_int(self.cents).getvalue()

    @classmethod
    def unpickle(cls, data: bytes) -> "Wallet":
        return cls(BufferReader(data).read_int())


SECRET = b"device-secret-key-0123456789abcd"
MARKER = b"TOP-SECRET-CONTENT-KEY-0xDEADBEEF"


def build_database():
    untrusted = MemoryUntrustedStore()
    counter = MemoryOneWayCounter()
    registry = ClassRegistry()
    registry.register(Wallet)
    config = ChunkStoreConfig(segment_size=16 * 1024, initial_segments=4)
    chunk_store = ChunkStore.format(
        untrusted, MemorySecretStore(SECRET), counter, config
    )
    object_store = ObjectStore.create(chunk_store, registry=registry)
    return untrusted, counter, config, registry, chunk_store, object_store


def main() -> None:
    untrusted, counter, config, registry, chunk_store, object_store = build_database()
    with object_store.transaction() as txn:
        wallet_oid = txn.insert(Wallet(cents=5000))
        txn.set_root(wallet_oid)
    secret_cid = chunk_store.allocate_chunk_id()
    chunk_store.write(secret_cid, MARKER)
    attacker = Attacker(untrusted)

    # 1 -- secrecy ------------------------------------------------------------
    print("attack 1: scan the raw store for plaintext secrets")
    hits = attacker.search_plaintext(b"TOP-SECRET")
    print(f"  files containing the secret in the clear: {hits or 'none'}")
    assert not hits

    # 2 -- bit flip -----------------------------------------------------------
    print("attack 2: flip one bit inside a chunk payload")
    clean_image = attacker.save_image()
    locator = chunk_store.location_map.lookup(secret_cid)
    attacker.flip_bit(f"seg-{locator.segment:08d}", locator.offset + 5)
    try:
        chunk_store.read(secret_cid)
        raise SystemExit("UNDETECTED — this must never print")
    except TamperDetectedError as exc:
        print(f"  detected: {exc}")
    # Repair the flip so the remaining attacks start from a valid image.
    attacker.replay_image(clean_image)

    # 3 -- log truncation (roll back the last purchase) -----------------------
    print("attack 3: truncate the log to chop off the latest commit")
    with object_store.transaction() as txn:
        wallet = txn.open_writable(txn.get_root(), Wallet)
        wallet.cents -= 300  # a purchase the attacker wants to erase
    tail = f"seg-{chunk_store.segments.tail_segment:08d}"
    image_before_truncation = attacker.save_image()
    attacker.truncate(tail, untrusted.size(tail) - 40)
    try:
        ChunkStore.open(untrusted, MemorySecretStore(SECRET), counter, config)
        raise SystemExit("UNDETECTED — this must never print")
    except (TamperDetectedError, ReplayDetectedError) as exc:
        print(f"  detected: {type(exc).__name__}: {exc}")
    attacker.replay_image(image_before_truncation)  # restore for the next act

    # 4 -- full replay ----------------------------------------------------------
    print("attack 4: save the database, spend money, restore the copy")
    saved = attacker.save_image()
    reopened = ChunkStore.open(untrusted, MemorySecretStore(SECRET), counter, config)
    store2 = ObjectStore.attach(reopened, registry=registry)
    with store2.transaction() as txn:
        wallet = txn.open_writable(txn.get_root(), Wallet)
        wallet.cents -= 2000
        print(f"  spent 2000 cents; balance now {wallet.cents}")
    store2.close()
    attacker.replay_image(saved)
    try:
        ChunkStore.open(untrusted, MemorySecretStore(SECRET), counter, config)
        raise SystemExit("UNDETECTED — this must never print")
    except ReplayDetectedError as exc:
        print(f"  detected: {exc}")

    # 5 -- wrong secret ----------------------------------------------------------
    print("attack 5: open the stolen database on another device")
    wrong_secret = MemorySecretStore(b"some-other-devices-secret-key-00")
    try:
        ChunkStore.open(untrusted, wrong_secret, counter, config)
        raise SystemExit("UNDETECTED — this must never print")
    except TamperDetectedError as exc:
        print(f"  detected: {exc}")

    print("\nall five attacks detected.")


if __name__ == "__main__":
    main()
