#!/usr/bin/env python3
"""Quickstart: the TDB stack in five minutes.

Shows the core workflow:

1. define a persistent class (explicit pickling, stable class id),
2. create a database (the full stack: chunk store with encryption and
   tamper detection, object store, collection store),
3. run transactions with typed refs,
4. survive a crash (recovery from the residual log),
5. observe that a read-only ref and a stale ref are rejected.

Run: ``python examples/quickstart.py``
"""

import shutil
import tempfile

from repro import (
    BufferReader,
    BufferWriter,
    ClassRegistry,
    Database,
    Persistent,
)
from repro.errors import ReadOnlyViolationError, StaleRefError


class Meter(Persistent):
    """The paper's running example: a per-content usage meter."""

    class_id = "quickstart.meter"

    def __init__(self, title="", view_count=0, print_count=0):
        self.title = title
        self.view_count = view_count
        self.print_count = print_count

    def pickle(self) -> bytes:
        return (
            BufferWriter()
            .write_str(self.title)
            .write_int(self.view_count)
            .write_int(self.print_count)
            .getvalue()
        )

    @classmethod
    def unpickle(cls, data: bytes) -> "Meter":
        reader = BufferReader(data)
        return cls(reader.read_str(), reader.read_int(), reader.read_int())


def fresh_registry() -> ClassRegistry:
    registry = ClassRegistry()
    registry.register(Meter)
    return registry


def main() -> None:
    directory = tempfile.mkdtemp(prefix="tdb-quickstart-")
    print(f"database directory: {directory}")

    # -- create and populate ------------------------------------------------
    db = Database.create(directory, registry=fresh_registry())
    with db.transaction() as txn:
        oid = txn.insert(Meter("Concerto in D", view_count=1))
        txn.set_root(oid)
    print(f"inserted meter as object {oid} and registered it as root")

    # -- typed, checked access ----------------------------------------------
    with db.transaction() as txn:
        ref = txn.open_writable(txn.get_root(), Meter)
        ref.view_count += 1
        print(f"bumped view count to {ref.view_count}")

    with db.transaction() as txn:
        readonly = txn.open_readonly(txn.get_root(), Meter)
        try:
            readonly.view_count = 999
        except ReadOnlyViolationError as exc:
            print(f"read-only ref enforced: {exc}")
        txn.abort()

    stale = None
    with db.transaction() as txn:
        stale = txn.open_readonly(txn.get_root())
    try:
        _ = stale.view_count
    except StaleRefError as exc:
        print(f"stale ref enforced: {exc}")

    # -- crash and recover ----------------------------------------------------
    # No close(): the process "crashes" here.  Reopening replays the
    # residual log and verifies the Merkle tree + one-way counter.
    recovered = Database.open_existing(directory, registry=fresh_registry())
    with recovered.transaction() as txn:
        meter = txn.open_readonly(txn.get_root(), Meter)
        print(
            f"recovered after crash: {meter.title!r} has "
            f"{meter.view_count} views"
        )
        txn.abort()
    stats = recovered.stats()
    print(
        f"chunk store: {stats.capacity_bytes / 1024:.1f} KB capacity, "
        f"utilization {stats.utilization:.2f}, "
        f"counter at {stats.counter_value}"
    )
    recovered.close()
    shutil.rmtree(directory)
    print("done.")


if __name__ == "__main__":
    main()
