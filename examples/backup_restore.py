#!/usr/bin/env python3
"""Validated backups: full + incremental chains, and what restore rejects.

The backup store (paper section 2, reference [23]) creates backups from
copy-on-write snapshots; incrementals ship only the Merkle-diff since the
previous backup, so they stay tiny and can be taken often.  Restore
validates everything: authentication, the full-then-incrementals order,
and the base-backup chaining.

Run: ``python examples/backup_restore.py``
"""

from repro import BufferReader, BufferWriter, ClassRegistry, Persistent
from repro.backupstore import BackupStore
from repro.chunkstore import ChunkStore
from repro.config import ChunkStoreConfig
from repro.errors import RestoreSequenceError, TamperDetectedError
from repro.objectstore import ObjectStore
from repro.platform import (
    MemoryArchivalStore,
    MemoryOneWayCounter,
    MemorySecretStore,
    MemoryUntrustedStore,
)


class Meter(Persistent):
    class_id = "backup.meter"

    def __init__(self, name="", views=0):
        self.name = name
        self.views = views

    def pickle(self) -> bytes:
        return BufferWriter().write_str(self.name).write_int(self.views).getvalue()

    @classmethod
    def unpickle(cls, data: bytes) -> "Meter":
        reader = BufferReader(data)
        return cls(reader.read_str(), reader.read_int())


SECRET = b"backup-example-secret-0123456789"
CONFIG = ChunkStoreConfig(segment_size=16 * 1024, initial_segments=4)


def main() -> None:
    secret = MemorySecretStore(SECRET)
    registry = ClassRegistry()
    registry.register(Meter)

    untrusted = MemoryUntrustedStore()
    chunk_store = ChunkStore.format(
        untrusted, secret, MemoryOneWayCounter(), CONFIG
    )
    object_store = ObjectStore.create(chunk_store, registry=registry)

    with object_store.transaction() as txn:
        meter_oids = [txn.insert(Meter(f"title-{i}")) for i in range(20)]
        txn.set_root(meter_oids[0])

    archive = MemoryArchivalStore()
    backups = BackupStore(archive, secret)

    # -- full backup, then a chain of incrementals ----------------------------
    full = backups.create_full(chunk_store, "monday-full")
    print(f"full backup: {full.entry_count} chunks, {full.stream_bytes} bytes")

    for day in ("tuesday", "wednesday"):
        with object_store.transaction() as txn:
            ref = txn.open_writable(meter_oids[3], Meter)
            ref.views += 1
        incremental = backups.create_incremental(chunk_store, f"{day}-incr")
        print(
            f"{day} incremental: {incremental.entry_count} entries, "
            f"{incremental.stream_bytes} bytes "
            f"({incremental.stream_bytes / full.stream_bytes:.0%} of the full)"
        )

    # -- restore the chain onto a fresh device ----------------------------------
    restored_chunks = backups.restore(
        ["monday-full", "tuesday-incr", "wednesday-incr"],
        MemoryUntrustedStore(),
        secret,
        MemoryOneWayCounter(),
        CONFIG,
    )
    restored = ObjectStore.attach(restored_chunks, registry=registry)
    with restored.transaction() as txn:
        meter = txn.open_readonly(meter_oids[3], Meter)
        print(f"restored state: {meter.name!r} has {meter.views} views (expect 2)")
        txn.abort()
    restored.close()

    # -- what restore refuses ----------------------------------------------------
    print("\nvalidation:")
    try:
        backups.restore(
            ["monday-full", "wednesday-incr"],  # skipped tuesday
            MemoryUntrustedStore(),
            secret,
            MemoryOneWayCounter(),
            CONFIG,
        )
    except RestoreSequenceError as exc:
        print(f"  out-of-sequence restore rejected: {exc}")

    try:
        backups.restore(
            ["tuesday-incr"],  # incremental without its base
            MemoryUntrustedStore(),
            secret,
            MemoryOneWayCounter(),
            CONFIG,
        )
    except RestoreSequenceError as exc:
        print(f"  baseless incremental rejected: {exc}")

    archive.corrupt("monday-full", 200, b"\x00\x00\x00\x00")
    try:
        backups.restore(
            ["monday-full"],
            MemoryUntrustedStore(),
            secret,
            MemoryOneWayCounter(),
            CONFIG,
        )
    except TamperDetectedError as exc:
        print(f"  corrupted backup rejected: {exc}")

    backups.close()
    object_store.close()
    print("\ndone.")


if __name__ == "__main__":
    main()
