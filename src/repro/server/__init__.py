"""The TDB service layer: a networked front end over one Database.

The embedded stack (chunk store -> object store -> collection store)
serves one process; this package turns it into a small multi-client
service:

* :mod:`repro.server.protocol` — length-prefixed JSON frame protocol,
* :mod:`repro.server.server` — threaded socket server; one
  :class:`Session` per connection, scoping one open transaction,
* :mod:`repro.server.groupcommit` — batches concurrent commits into a
  single chunk-store commit (one log append + sync + counter advance),
* :mod:`repro.server.backpressure` — bounded sessions, bounded commit
  queue, idle/request timeouts that abort and release locks,
* :mod:`repro.server.client` — context-managed remote transactions
  with bounded reconnect/retry on transient errors,
* :mod:`repro.server.sharded` / :mod:`repro.server.shardworker` /
  :mod:`repro.server.sharding` — the multi-process sharded service: an
  asyncio front door routing the same wire protocol over N shard worker
  processes, with ordered cross-shard two-phase commit
  (:mod:`repro.server.coordinator`).
"""

from repro.server.backpressure import AdmissionControl, BackpressureConfig
from repro.server.client import RemoteTransaction, TdbClient
from repro.server.groupcommit import GroupCommitCoordinator, GroupCommitStats
from repro.server.server import RemoteRecord, TdbServer, field_indexer
from repro.server.sharded import ShardedTdbServer
from repro.server.sharding import ShardLayout

__all__ = [
    "AdmissionControl",
    "BackpressureConfig",
    "GroupCommitCoordinator",
    "GroupCommitStats",
    "RemoteRecord",
    "RemoteTransaction",
    "ShardLayout",
    "ShardedTdbServer",
    "TdbClient",
    "TdbServer",
    "field_indexer",
]
