"""The sharded TDB service: an asyncio front door over worker processes.

``ShardedTdbServer`` speaks the *same* length-prefixed JSON protocol as
the threaded :class:`~repro.server.server.TdbServer` — sharding is
invisible to clients — but escapes the GIL by partitioning the store
into N :mod:`repro.server.shardworker` processes (layout and routing in
:mod:`repro.server.sharding`).  One asyncio event loop (running in a
background thread so ``start()``/``stop()`` match the threaded server's
API) owns:

* the **client listener** — per-connection coroutines that read frames,
  route data verbs, and keep the threaded server's resilience contract:
  one-slot response replay, parked sessions with resume tokens, and the
  server-wide commit-token cache;
* the **worker supervisor** — spawns workers via ``subprocess``, each
  of which connects back to a private loopback listener and
  authenticates with the boot nonce; a worker crash fails in-flight
  calls with :class:`~repro.errors.TransientStoreError`, poisons the
  sessions that touched it, respawns the process, and re-drives any
  prepared-but-undecided commits from the decision log before the
  shard serves traffic again;
* the **cross-shard coordinator** — single-shard transactions commit
  directly on their owning worker (pipelined over one duplex
  connection per shard); transactions that touched several shards go
  through the ordered 2PC round in
  :mod:`repro.server.coordinator`, keyed by the client's idempotent
  commit token so retries stay exactly-once across worker restarts.
"""

from __future__ import annotations

import asyncio
import json
import os
import secrets
import struct
import subprocess
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Set

from repro.errors import (
    AuthFailedError,
    AuthRequiredError,
    CommitInDoubtError,
    FeatureUnavailableError,
    ObjectNotFoundError,
    ProtocolError,
    ServerBusyError,
    ServerError,
    SessionStateError,
    TDBError,
    TransientStoreError,
)
from repro.server import protocol
from repro.server.backpressure import AdmissionControl, BackpressureConfig
from repro.server.commitcache import CommitResultCache
from repro.server.coordinator import (
    CrossShardCoordinator,
    DecisionLog,
    ensure_single_writer,
    release_single_writer,
)
from repro.server.sharding import (
    BOOTSTRAP_ENV,
    ShardLayout,
    ShardRouter,
    config_to_dict,
)
from repro.server.verbs import DATA_VERBS, MUTATING_DATA_VERBS
from repro.tenancy import value_bytes as _tenant_value_bytes

__all__ = ["ShardedTdbServer"]

_LENGTH = struct.Struct(">I")

#: Required transaction mode per data-verb prefix.
_VERB_MODE = {"obj": "object", "name": "object", "col": "collection"}

#: Verbs the sharded frontend does not serve (replication and proofs
#: are per-store features; shard them in a later iteration).  They are
#: advertised in ``hello.absent_verbs`` and refused with
#: :class:`~repro.errors.FeatureUnavailableError`.
_UNSUPPORTED = (
    "repl.subscribe", "repl.segments", "repl.master",
    "proof.read", "proof.absent", "log.head", "log.consistency",
)

#: Verbs a hub session may send before binding an identity.
_PREAUTH_VERBS = ("hello", "auth", "stats", "commit.result", "session.resume")

#: Key under which the owning tenant is recorded inside every object
#: value a hub session stores on the shared shards.  The front door
#: wraps on ``obj.put`` and unwraps (with an ownership check) on
#: ``obj.get``, so raw virtual oids never cross tenants.
_TENANT_WRAP_KEY = "__tdbt"


def _tenant_prefix(tenant: str, name: str) -> str:
    """Shard-visible name for a tenant's name/collection.

    ``!`` never appears in a valid tenant name and keeps ``:`` free for
    the executor's ``field:{collection}:{field}`` descriptor syntax.
    """
    return f"t!{tenant}!{name}"


def _param(request: Dict[str, Any], field: str):
    if field not in request or request[field] is None:
        raise ProtocolError(f"missing parameter {field!r}")
    return request[field]


async def _read_wire_frame(reader: asyncio.StreamReader) -> Optional[Dict[str, Any]]:
    """One frame off an asyncio stream; ``None`` on clean EOF."""
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed inside frame header") from exc
    (length,) = _LENGTH.unpack(header)
    if length > protocol.MAX_FRAME_BYTES:
        raise ProtocolError(
            f"peer announced a {length}-byte frame "
            f"(limit {protocol.MAX_FRAME_BYTES})"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed inside frame body") from exc
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame body must be a JSON object")
    return message


class ShardLink:
    """One pipelined duplex connection to a shard worker."""

    def __init__(
        self,
        server: "ShardedTdbServer",
        shard: int,
        proc: subprocess.Popen,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        generation: int,
    ) -> None:
        self.server = server
        self.shard = shard
        self.proc = proc
        self.reader = reader
        self.writer = writer
        self.generation = generation
        self.alive = True
        self.superseded = False
        self._next_id = 1
        self._futures: Dict[int, asyncio.Future] = {}
        self.pump_task: Optional[asyncio.Task] = None

    def start_pump(self) -> None:
        self.pump_task = asyncio.get_running_loop().create_task(self._pump())

    async def call(self, op: str, **params: Any) -> Dict[str, Any]:
        """Send one op, await its correlated response (requests pipeline)."""
        if not self.alive:
            raise TransientStoreError(
                f"shard {self.shard} worker is restarting; retry"
            )
        rid = self._next_id
        self._next_id += 1
        fut = asyncio.get_running_loop().create_future()
        self._futures[rid] = fut
        frame = {"id": rid, "op": op}
        frame.update(params)
        try:
            self.writer.write(protocol.encode_frame(frame))
            await self.writer.drain()
        except (OSError, ConnectionError) as exc:
            self._futures.pop(rid, None)
            raise TransientStoreError(
                f"shard {self.shard} worker connection lost: {exc}"
            ) from exc
        response = await fut
        if response.get("ok"):
            return response.get("result") or {}
        raise protocol.exception_from_payload(response)

    async def _pump(self) -> None:
        try:
            while True:
                message = await _read_wire_frame(self.reader)
                if message is None:
                    break
                fut = self._futures.pop(message.get("id"), None)
                if fut is not None and not fut.done():
                    fut.set_result(message)
        except (ProtocolError, OSError, ConnectionError):
            pass
        finally:
            self.alive = False
            for fut in self._futures.values():
                if not fut.done():
                    fut.set_exception(
                        TransientStoreError(
                            f"shard {self.shard} worker died mid-call"
                        )
                    )
            self._futures.clear()
            try:
                self.writer.close()
            except Exception:
                pass
            await self.server._worker_died(self)


class FrontSession:
    """Per-client-connection state at the front door.

    The transaction itself lives on the workers; the front door tracks
    which shards it touched (`begun`), the mode, and the resilience
    state (resume token, one-slot replay cache)."""

    __slots__ = (
        "id", "resume_token", "mode", "begun", "insert_counter",
        "poisoned", "last_request", "last_response", "requests_served",
        "deadline", "identity", "pending_auth", "txn_bytes",
    )

    def __init__(self, session_id: int, shards: int) -> None:
        self.id = session_id
        self.resume_token = secrets.token_hex(16)
        self.mode: Optional[str] = None
        self.begun: Set[int] = set()
        self.insert_counter = session_id % max(1, shards)
        self.poisoned = False
        self.last_request: Optional[Dict[str, Any]] = None
        self.last_response: Optional[Dict[str, Any]] = None
        self.requests_served = 0
        self.deadline = 0.0  # parked-until, set when parked
        self.identity = None  # tenancy.Identity once authenticated
        self.pending_auth: Optional[Dict[str, Any]] = None
        self.txn_bytes = 0  # accounted value bytes in the open txn

    def next_insert_shard(self, shards: int) -> int:
        shard = self.insert_counter % shards
        self.insert_counter += 1
        return shard

    def clear_txn(self) -> None:
        self.mode = None
        self.begun = set()
        self.poisoned = False


class ShardedTdbServer:
    """Asyncio front door over N shard worker processes."""

    def __init__(
        self,
        root: str,
        shards: Optional[int] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        backpressure: Optional[BackpressureConfig] = None,
        max_batch: int = 32,
        max_delay: float = 0.005,
        max_results: int = 1000,
        quorum_seal: bool = True,
        chunk_config=None,
        worker_spawn_timeout: float = 30.0,
        tenancy=None,
    ) -> None:
        self.root = os.path.abspath(root)
        #: Optional :class:`repro.tenancy.TenancyHub`.  When set, every
        #: session must bind a ``(tenant, principal)`` identity via the
        #: auth challenge-response before touching data; names and
        #: collections are namespaced per tenant on the shared shards,
        #: and quotas/audit run against the hub's control plane.  The
        #: hub's lifecycle belongs to the caller (close it after stop()).
        self.tenancy = tenancy
        self._requested_shards = shards
        self.host = host
        self.port = port
        self.backpressure = backpressure or BackpressureConfig()
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.max_results = max_results
        self.quorum_seal = quorum_seal
        self.chunk_config = chunk_config
        self.worker_spawn_timeout = worker_spawn_timeout
        self.admission = AdmissionControl(self.backpressure.max_sessions)
        self.commit_results = CommitResultCache()
        self.epoch = secrets.token_hex(8)
        self.layout: Optional[ShardLayout] = None
        self.router: Optional[ShardRouter] = None
        self.decision_log: Optional[DecisionLog] = None
        self.coordinator: Optional[CrossShardCoordinator] = None
        #: Observation hook for the crash-sweep tests: called as
        #: ``hook(stage, token, shard)`` at every 2PC boundary.
        self.on_stage = None
        self._nonce = secrets.token_hex(16)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._client_server = None
        self._worker_server = None
        self._links: Dict[int, ShardLink] = {}
        self._link_generation = 0
        self._pending_handshakes: Dict[int, asyncio.Future] = {}
        self._sessions: Dict[int, FrontSession] = {}
        self._next_session_id = 1
        self._parked: Dict[str, FrontSession] = {}
        self._reaper_task: Optional[asyncio.Task] = None
        self._started = False
        self._stopping = False
        self._counters: Dict[str, int] = {
            "single_shard_commits": 0,
            "cross_shard_commits": 0,
            "empty_commits": 0,
            "worker_restarts": 0,
            "sessions_parked": 0,
            "sessions_resumed": 0,
            "resume_failures": 0,
            "grace_expired": 0,
            "request_replays": 0,
            "commit_replays": 0,
            "commit_settlements": 0,
            "timeout_aborts": 0,
            "poisoned_sessions": 0,
            "recovered_decisions": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ShardedTdbServer":
        if self._started:
            return self
        if self._requested_shards is not None:
            self.layout = ShardLayout.open_or_create(
                self.root, self._requested_shards
            )
        else:
            self.layout = ShardLayout.open(self.root)
        self.router = ShardRouter(self.layout)
        # One front door per layout: concurrent servers would interleave
        # decision-log appends and 2PC rounds.
        ensure_single_writer(self.layout.coord_dir)
        self.decision_log = DecisionLog(
            os.path.join(self.layout.coord_dir, "decisions.log")
        )
        self.coordinator = CrossShardCoordinator(
            self.decision_log,
            call=self._coordinator_call,
            restart_worker=self._coordinator_restart,
            on_stage=self._stage_hook,
        )
        self._loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self._loop.run_forever, name="tdb-sharded-loop", daemon=True
        )
        self._loop_thread.start()
        boot = asyncio.run_coroutine_threadsafe(self._boot(), self._loop)
        try:
            boot.result(timeout=self.worker_spawn_timeout * (self.layout.shards + 1))
        except BaseException:
            self.stop()
            raise
        self._started = True
        return self

    def stop(self) -> None:
        if self._stopping:
            return
        self._stopping = True
        if self._loop is not None:
            try:
                asyncio.run_coroutine_threadsafe(
                    self._shutdown(), self._loop
                ).result(timeout=15.0)
            except Exception:
                pass
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._loop_thread is not None:
                self._loop_thread.join(timeout=5.0)
            if not self._loop.is_running():
                self._loop.close()
        if self.decision_log is not None:
            self.decision_log.close()
        if self.layout is not None:
            release_single_writer(self.layout.coord_dir)
        self._started = False

    def __enter__(self) -> "ShardedTdbServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def address(self):
        return (self.host, self.port)

    def _stage_hook(self, stage: str, token: str, shard: Optional[int]) -> None:
        hook = self.on_stage
        if hook is not None:
            hook(stage, token, shard)

    def _count(self, name: str, amount: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    # ------------------------------------------------------------------
    # Boot: worker listener, workers, client listener
    # ------------------------------------------------------------------

    async def _boot(self) -> None:
        self._worker_server = await asyncio.start_server(
            self._on_worker_connect, "127.0.0.1", 0
        )
        self._worker_port = self._worker_server.sockets[0].getsockname()[1]
        for shard in range(self.layout.shards):
            await self._spawn_worker(shard)
        self._client_server = await asyncio.start_server(
            self._on_client_connect, self.host, self.port
        )
        sockname = self._client_server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        if self.backpressure.effective_resume_grace > 0:
            self._reaper_task = asyncio.get_running_loop().create_task(
                self._reaper_loop()
            )

    def _worker_env(self, shard: int) -> Dict[str, str]:
        import repro

        pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = pkg_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        env[BOOTSTRAP_ENV] = json.dumps(
            {
                "shard": shard,
                "shards": self.layout.shards,
                "directory": self.layout.shard_dir(shard),
                "nonce": self._nonce,
                "connect": ["127.0.0.1", self._worker_port],
                "config": config_to_dict(self.chunk_config),
                "group_commit": {
                    "max_batch": self.max_batch,
                    "max_delay": self.max_delay,
                    "max_pending": self.backpressure.max_pending_commits,
                    "quorum_seal": self.quorum_seal,
                },
                "max_results": self.max_results,
            }
        )
        return env

    async def _spawn_worker(self, shard: int) -> ShardLink:
        loop = asyncio.get_running_loop()
        fut = loop.create_future()
        self._pending_handshakes[shard] = fut
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.server.shardworker",
             "--shard", str(shard)],
            env=self._worker_env(shard),
            stdin=subprocess.DEVNULL,
        )
        try:
            hello, reader, writer = await asyncio.wait_for(
                fut, timeout=self.worker_spawn_timeout
            )
        except asyncio.TimeoutError:
            self._pending_handshakes.pop(shard, None)
            proc.kill()
            raise ServerError(
                f"shard {shard} worker did not connect back within "
                f"{self.worker_spawn_timeout}s"
            ) from None
        self._link_generation += 1
        link = ShardLink(self, shard, proc, reader, writer,
                         self._link_generation)
        link.start_pump()
        await self._redrive_decisions(link, hello.get("prepared") or [])
        self._links[shard] = link
        return link

    async def _on_worker_connect(self, reader, writer) -> None:
        try:
            hello = await asyncio.wait_for(_read_wire_frame(reader), timeout=10.0)
        except (asyncio.TimeoutError, ProtocolError):
            writer.close()
            return
        if (
            hello is None
            or hello.get("op") != "w.hello"
            or hello.get("nonce") != self._nonce
        ):
            writer.close()
            return
        shard = hello.get("shard")
        fut = self._pending_handshakes.pop(shard, None)
        if fut is None or fut.done():
            writer.close()
            return
        writer.write(protocol.encode_frame({"ok": True}))
        await writer.drain()
        fut.set_result((hello, reader, writer))

    async def _redrive_decisions(self, link: ShardLink, prepared: List[str]) -> None:
        """Resolve a (re)started worker's in-doubt tokens before traffic.

        Every redo record the worker reported is decided from the log
        (presumed abort when unlogged); logged-but-unacknowledged tokens
        the worker did *not* report were already applied (the redo file
        is unlinked after apply), so re-deciding them is a harmless
        no-op the worker discards.
        """
        tokens = dict.fromkeys(prepared)
        for token in self.decision_log.pending_for_shard(link.shard):
            tokens.setdefault(token)
        for token in tokens:
            verdict = (
                "commit" if self.decision_log.committed(token) else "abort"
            )
            await link.call("s.decide", token=token, verdict=verdict)
            self._count("recovered_decisions")

    async def _worker_died(self, link: ShardLink) -> None:
        """Pump exit handler: poison touched sessions, respawn."""
        if link.superseded or self._links.get(link.shard) is not link:
            return
        self._links.pop(link.shard, None)
        link.superseded = True
        try:
            link.proc.kill()
        except OSError:
            pass
        if self._stopping:
            return
        self._count("worker_restarts")
        # Sessions that touched the dead shard lost their transaction:
        # poison them (their next verb fails transient) and release the
        # locks they still hold on the surviving shards.
        for session in list(self._sessions.values()) + list(self._parked.values()):
            if link.shard in session.begun:
                others = [s for s in session.begun if s != link.shard]
                session.begun = set()
                session.poisoned = True
                self._count("poisoned_sessions")
                for shard in others:
                    other = self._links.get(shard)
                    if other is not None and other.alive:
                        try:
                            await other.call("s.abort", sid=session.id)
                        except TDBError:
                            pass
        for attempt in range(3):
            try:
                await self._spawn_worker(link.shard)
                return
            except (ServerError, OSError):
                await asyncio.sleep(0.2 * (attempt + 1))
        # Left unspawned: routing to this shard raises transient errors
        # until a later restart attempt succeeds via kill_worker/stop.

    async def _link_for(self, shard: int) -> ShardLink:
        link = self._links.get(shard)
        if link is not None and link.alive:
            return link
        # A respawn may be in flight; wait briefly for it.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            await asyncio.sleep(0.05)
            link = self._links.get(shard)
            if link is not None and link.alive:
                return link
        raise TransientStoreError(
            f"shard {shard} worker is unavailable; retry"
        )

    async def _coordinator_call(self, shard: int, op: str, **params):
        link = await self._link_for(shard)
        return await link.call(op, **params)

    async def _coordinator_restart(self, shard: int) -> None:
        link = self._links.get(shard)
        if link is not None and link.alive:
            try:
                link.proc.kill()
            except OSError:
                pass

    def kill_worker(self, shard: int) -> None:
        """Test hook: SIGKILL a shard worker process (supervisor respawns)."""
        link = self._links.get(shard)
        if link is not None:
            try:
                link.proc.kill()
            except OSError:
                pass

    def worker_pid(self, shard: int) -> Optional[int]:
        link = self._links.get(shard)
        return link.proc.pid if link is not None else None

    def inject_worker_fault(self, shard: int, mode: str) -> None:
        """Test hook: arm a crash fault (e.g. ``exit_after_commit``) on
        ``shard``'s worker."""
        link = self._links.get(shard)
        if link is None or self._loop is None:
            raise ServerError(f"no live worker for shard {shard}")
        asyncio.run_coroutine_threadsafe(
            link.call("w.fault", mode=mode), self._loop
        ).result(timeout=5.0)

    # ------------------------------------------------------------------
    # Client connections
    # ------------------------------------------------------------------

    async def _on_client_connect(self, reader, writer) -> None:
        if not self.admission.try_admit():
            try:
                writer.write(protocol.encode_frame(protocol.error_payload(
                    None,
                    ServerBusyError(
                        f"server full ({self.admission.max_sessions} sessions)"
                    ),
                )))
                await writer.drain()
            except (OSError, ConnectionError):
                pass
            writer.close()
            return
        session = FrontSession(self._next_session_id, self.layout.shards)
        self._next_session_id += 1
        self._sessions[session.id] = session
        config = self.backpressure
        parked = False
        try:
            while not self._stopping:
                try:
                    request = await self._read_request(reader, config)
                except asyncio.TimeoutError:
                    if session.mode is not None:
                        self.admission.record_timeout_abort()
                        self._count("timeout_aborts")
                    await self._abort_worker_txns(session)
                    break
                except (ProtocolError, OSError, ConnectionError):
                    parked = self._try_park(session)
                    break
                if request is None:
                    break  # clean EOF
                response, session = await self._serve_one(session, request)
                try:
                    writer.write(protocol.encode_frame(response))
                    await writer.drain()
                except (OSError, ConnectionError):
                    parked = self._try_park(session)
                    break
        finally:
            if not parked:
                await self._abort_worker_txns(session)
                self._sessions.pop(session.id, None)
                self._release_identity(session)
            try:
                writer.close()
            except Exception:
                pass
            self.admission.release()

    def _release_identity(self, session: FrontSession) -> None:
        """Drop a session's hub identity (memory-only; safe on the loop)."""
        if self.tenancy is not None and session.identity is not None:
            self.tenancy.release(session.identity)
            session.identity = None

    async def _read_request(self, reader, config) -> Optional[Dict[str, Any]]:
        try:
            header = await asyncio.wait_for(
                reader.readexactly(_LENGTH.size), timeout=config.idle_timeout
            )
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise ProtocolError("connection closed inside frame header") from exc
        (length,) = _LENGTH.unpack(header)
        if length > protocol.MAX_FRAME_BYTES:
            raise ProtocolError(f"oversized frame announced ({length} bytes)")
        try:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=config.request_timeout
            )
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError("connection closed inside frame body") from exc
        try:
            message = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
        if not isinstance(message, dict):
            raise ProtocolError("frame body must be a JSON object")
        return message

    async def _serve_one(self, session: FrontSession, request: Dict[str, Any]):
        request_id = request.get("id")
        if (
            request_id is not None
            and session.last_response is not None
            and request == session.last_request
        ):
            self._count("request_replays")
            return session.last_response, session
        try:
            result, session = await self._dispatch(session, request)
            response = {"id": request_id, "ok": True, "result": result}
        except TDBError as exc:
            response = protocol.error_payload(request_id, exc)
        except Exception as exc:  # noqa: BLE001 — connection must survive
            # A non-TDB fault (disk-full in the decision log, a bug) must
            # not kill the connection coroutine mid-commit: prepared
            # participants would hold their ledger locks forever.  The
            # commit path has already aborted/resolved what it could;
            # report the fault and keep serving.
            response = protocol.error_payload(
                request_id, ServerError(f"internal server fault: {exc}")
            )
        session.requests_served += 1
        if request.get("op") != "session.resume":
            session.last_request = dict(request)
            session.last_response = response
        return response, session

    async def _dispatch(self, session: FrontSession, request: Dict[str, Any]):
        op = request.get("op")
        if not isinstance(op, str):
            raise ProtocolError("request needs a string 'op' field")
        if (
            self.tenancy is not None
            and session.identity is None
            and op not in _PREAUTH_VERBS
        ):
            raise AuthRequiredError(
                "this server is a multi-tenant hub; bind an identity "
                "with the auth challenge-response first"
            )
        if op in DATA_VERBS:
            return await self._data_verb(session, request), session
        if op == "hello":
            return self.hello_payload(), session
        if op == "auth":
            return await self._op_auth(session, request), session
        if op == "begin":
            return await self._op_begin(session, request), session
        if op == "commit":
            return await self._op_commit(session, request), session
        if op == "abort":
            return await self._op_abort(session), session
        if op == "commit.result":
            return await self._op_commit_result(request), session
        if op == "session.resume":
            return self._op_session_resume(session, request)
        if op == "stats":
            return await self.stats_payload(), session
        if op == "tenant.grant":
            return await self._op_tenant_grant(session, request), session
        if op == "tenant.revoke":
            return await self._op_tenant_revoke(session, request), session
        if op == "tenant.meter":
            return await self._op_tenant_meter(session), session
        if op in _UNSUPPORTED:
            raise FeatureUnavailableError(
                f"verb {op!r} is unavailable on a sharded layout: "
                "replication streams and transparency heads are per-store "
                "features and a sharded root has no single store to serve "
                "them from (hello lists them under absent_verbs)"
            )
        if op in protocol.VERBS:
            raise ServerError(f"verb {op!r} not implemented by this frontend")
        raise ProtocolError(f"unknown verb {op!r}")

    # -- tenancy ---------------------------------------------------------

    def _require_hub(self):
        if self.tenancy is None:
            raise FeatureUnavailableError(
                "this server is not a multi-tenant hub (start it with "
                "serve --tenants for per-principal auth)"
            )
        return self.tenancy

    async def _op_auth(self, session: FrontSession, request) -> Dict[str, Any]:
        hub = self._require_hub()
        if session.mode is not None:
            raise SessionStateError("authenticate before opening a transaction")
        tenant = str(_param(request, "tenant"))
        principal = str(_param(request, "principal"))
        proof = request.get("proof")
        if proof is None:
            session.pending_auth = await asyncio.to_thread(
                hub.begin_auth, tenant, principal
            )
            return {"challenge": session.pending_auth["challenge"]}
        # The pending challenge is consumed by the attempt, success or
        # not: replaying an observed proof finds no challenge and fails.
        pending, session.pending_auth = session.pending_auth, None
        if (
            pending is None
            or pending["tenant"] != tenant
            or pending["principal"] != principal
        ):
            raise AuthFailedError("authentication failed")
        identity = await asyncio.to_thread(hub.finish_auth, pending, proof)
        self._release_identity(session)
        session.identity = identity
        return {
            "authenticated": True,
            "tenant": identity.tenant,
            "principal": identity.principal,
        }

    async def _op_tenant_grant(self, session: FrontSession, request):
        hub = self._require_hub()
        return await asyncio.to_thread(
            hub.grant,
            session.identity,
            str(_param(request, "principal")),
            str(_param(request, "scope")),
            str(_param(request, "right")),
        )

    async def _op_tenant_revoke(self, session: FrontSession, request):
        hub = self._require_hub()
        return await asyncio.to_thread(
            hub.revoke,
            session.identity,
            str(_param(request, "principal")),
            str(_param(request, "scope")),
            str(_param(request, "right")),
        )

    async def _op_tenant_meter(self, session: FrontSession):
        hub = self._require_hub()
        return await asyncio.to_thread(hub.meter, session.identity.tenant)

    # -- transaction lifecycle ------------------------------------------

    async def _op_begin(self, session: FrontSession, request) -> Dict[str, Any]:
        mode = request.get("mode", "object")
        if mode not in ("object", "collection"):
            raise ProtocolError(f"unknown transaction mode {mode!r}")
        if session.mode is not None:
            raise SessionStateError(
                "a transaction is already open in this session"
            )
        if self.tenancy is not None:
            # Per-tenant txn/s token bucket; refusal is transient.
            await asyncio.to_thread(self.tenancy.on_begin, session.identity)
        session.mode = mode
        session.begun = set()
        session.poisoned = False
        session.txn_bytes = 0
        return {
            "mode": mode,
            "session": session.resume_token,
            "epoch": self.epoch,
        }

    async def _op_abort(self, session: FrontSession) -> Dict[str, Any]:
        if session.mode is None:
            raise SessionStateError("no open transaction to abort")
        await self._abort_worker_txns(session)
        session.clear_txn()
        return {}

    async def _abort_worker_txns(self, session: FrontSession) -> None:
        begun, session.begun = session.begun, set()
        session.mode = None
        session.txn_bytes = 0
        for shard in sorted(begun):
            link = self._links.get(shard)
            if link is None or not link.alive:
                continue
            try:
                await link.call("s.abort", sid=session.id)
            except TDBError:
                pass

    async def _op_commit(self, session: FrontSession, request) -> Dict[str, Any]:
        token = request.get("token")
        if token is not None and not isinstance(token, str):
            raise ProtocolError("commit token must be a string")
        durable = bool(request.get("durable", True))
        cache = self.commit_results
        if token is not None:
            prior = cache.begin(token)
            if prior is not None:
                return self._replay_commit_outcome(prior)
        if session.mode is None:
            if token is not None:
                cache.cancel(token)
            raise SessionStateError("no open transaction to commit")
        if session.poisoned:
            if token is not None:
                cache.cancel(token)
            session.clear_txn()
            raise TransientStoreError(
                "a shard worker restarted under this transaction; retry"
            )
        txn_bytes, session.txn_bytes = session.txn_bytes, 0
        quota_held = False
        identity = session.identity
        if self.tenancy is not None and identity is not None:
            # Reserve the tenant's pending-commit slot and stored-bytes
            # budget before anything reaches the workers; a refusal
            # aborts the worker transactions so no shard keeps locks.
            try:
                await asyncio.to_thread(
                    self.tenancy.on_commit_start, identity, txn_bytes
                )
                quota_held = True
            except TDBError as exc:
                await self._abort_worker_txns(session)
                session.clear_txn()
                if token is not None:
                    cache.resolve(
                        token,
                        {
                            "status": "failed",
                            "error": type(exc).__name__,
                            "message": str(exc),
                            "transient": protocol.error_payload(
                                None, exc
                            )["transient"],
                        },
                    )
                raise
        participants = sorted(session.begun)
        session.clear_txn()
        committed = False
        try:
            if not participants:
                self._count("empty_commits")
                result = {"durable": durable}
            elif len(participants) == 1:
                result = await self._single_shard_commit(
                    session, participants[0], durable, token
                )
            else:
                result = await self._cross_shard_commit(
                    session, participants, token
                )
            committed = True
        except TDBError as exc:
            if token is not None and not isinstance(exc, CommitInDoubtError):
                cache.resolve(
                    token,
                    {
                        "status": "failed",
                        "error": type(exc).__name__,
                        "message": str(exc),
                        "transient": protocol.error_payload(None, exc)["transient"],
                    },
                )
            raise
        except Exception as exc:
            # Never leave the token pending forever on an unexpected
            # fault; the commit did not happen (the coordinator aborts
            # prepared participants before re-raising).
            if token is not None:
                cache.resolve(
                    token,
                    {
                        "status": "failed",
                        "error": "ServerError",
                        "message": f"internal server fault: {exc}",
                        "transient": False,
                    },
                )
            raise
        finally:
            if quota_held:
                # Releases the pending-commit slot; on success it also
                # settles the stored-bytes meter and the audit trail.
                # (An in-doubt outcome releases without recording —
                # metering is accounting, not a ledger.)
                await asyncio.to_thread(
                    self.tenancy.on_commit_end, identity, txn_bytes, committed
                )
        if token is not None:
            cache.resolve(
                token, {"status": "committed", "durable": result["durable"]}
            )
        return result

    async def _single_shard_commit(
        self, session: FrontSession, shard: int, durable: bool,
        token: Optional[str],
    ) -> Dict[str, Any]:
        link = self._links.get(shard)
        if link is None or not link.alive:
            # Nothing was sent: the commit definitely did not happen.
            if token is not None:
                self.commit_results.cancel(token)
            raise TransientStoreError(
                f"shard {shard} worker is unavailable; retry the transaction"
            )
        try:
            result = await link.call(
                "s.commit", sid=session.id, durable=durable, token=token
            )
        except TransientStoreError as exc:
            # The call was in flight when the worker died: the outcome
            # is momentarily unknown (its group commit may or may not
            # have reached the log).  The token rode the write set into
            # the worker's durable ledger, so the respawned worker's
            # recovered state answers the truth — ask it.
            if token is not None:
                verdict = await self._query_token_on_worker(shard, token)
                if verdict is True:
                    self._count("single_shard_commits")
                    self._count("commit_settlements")
                    self.commit_results.resolve(
                        token,
                        {
                            "status": "committed",
                            "durable": True,
                            "settled": True,
                        },
                    )
                    return {"durable": True, "settled": True}
                if verdict is False:
                    self._count("commit_settlements")
                    retry = TransientStoreError(
                        f"shard {shard} worker died before the commit "
                        "became durable; retry the transaction"
                    )
                    self.commit_results.resolve(
                        token,
                        {
                            "status": "failed",
                            "error": "TransientStoreError",
                            "message": str(retry),
                            "transient": True,
                        },
                    )
                    raise retry from exc
            # No token, or the respawned worker stayed unreachable:
            # report honestly in-doubt.  The cache entry remembers the
            # owning shard so a later ``commit.result`` can still settle
            # against the worker's ledger once it is back.
            doubt = CommitInDoubtError(
                f"shard {shard} worker died with the commit in flight: {exc}"
            )
            if token is not None:
                self.commit_results.resolve(
                    token,
                    {
                        "status": "failed",
                        "error": "CommitInDoubtError",
                        "message": str(doubt),
                        "transient": False,
                        "shard": shard,
                    },
                )
            raise doubt from exc
        self._count("single_shard_commits")
        return {"durable": result.get("durable", durable)}

    async def _query_token_on_worker(
        self, shard: int, token: str, deadline_s: float = 15.0
    ) -> Optional[bool]:
        """Ask ``shard``'s (respawned) worker whether ``token`` is in its
        durable commit ledger.  ``None`` if the worker stayed down."""
        deadline = time.monotonic() + deadline_s
        while time.monotonic() < deadline:
            try:
                link = await self._link_for(shard)
                state = await link.call("w.token.query", token=token)
                return bool(state.get("in_ledger"))
            except TDBError:
                await asyncio.sleep(0.1)
        return None

    async def _cross_shard_commit(
        self, session: FrontSession, participants: List[int],
        token: Optional[str],
    ) -> Dict[str, Any]:
        # 2PC needs a durable transaction id even if the client sent no
        # token; the generated one never collides with client tokens
        # (clients cannot query it, but recovery still converges).
        txn_token = token if token is not None else "auto:" + secrets.token_hex(12)
        result = await self.coordinator.commit(
            session.id, txn_token, participants
        )
        self._count("cross_shard_commits")
        return {"durable": True, "shards": result["shards"]}

    def _replay_commit_outcome(self, prior: Dict[str, Any]) -> Dict[str, Any]:
        status = prior.get("status")
        if status == "pending":
            raise TransientStoreError(
                "a commit with this token is already in flight; "
                "query commit.result for the outcome"
            )
        self._count("commit_replays")
        if status == "failed":
            raise protocol.exception_from_payload(
                {
                    "error": prior.get("error", "ServerError"),
                    "message": prior.get("message", "commit failed"),
                    "transient": bool(prior.get("transient")),
                }
            )
        return {"durable": prior.get("durable", True), "replayed": True}

    async def _op_commit_result(self, request) -> Dict[str, Any]:
        token = request.get("token")
        if not isinstance(token, str):
            raise ProtocolError("commit token must be a string")
        payload = self.commit_results.lookup(token)
        if payload["status"] == "unknown" and self.decision_log.committed(token):
            # The front door restarted after logging the decision: the
            # log is the durable source of truth for cross-shard commits.
            payload = {"token": token, "status": "committed", "durable": True}
        elif (
            payload.get("error") == "CommitInDoubtError"
            and isinstance(payload.get("shard"), int)
        ):
            # The owning worker was unreachable when the commit went
            # in-doubt; its durable ledger may be answerable by now.
            verdict = await self._query_token_on_worker(
                payload["shard"], token, deadline_s=3.0
            )
            if verdict is True:
                self._count("commit_settlements")
                self.commit_results.resolve(
                    token,
                    {"status": "committed", "durable": True, "settled": True},
                )
                payload = self.commit_results.lookup(token)
            elif verdict is False:
                self._count("commit_settlements")
                self.commit_results.resolve(
                    token,
                    {
                        "status": "failed",
                        "error": "TransientStoreError",
                        "message": (
                            f"shard {payload['shard']} worker died before "
                            "the commit became durable; retry the transaction"
                        ),
                        "transient": True,
                    },
                )
                payload = self.commit_results.lookup(token)
        payload["epoch"] = self.epoch
        return payload

    # -- session parking / resume ---------------------------------------

    def _try_park(self, session: FrontSession) -> bool:
        grace = self.backpressure.effective_resume_grace
        if grace <= 0 or self._stopping:
            return False
        if session.mode is None and session.last_response is None:
            return False
        if len(self._parked) >= self.backpressure.max_sessions:
            return False
        session.deadline = time.monotonic() + grace
        self._parked[session.resume_token] = session
        self._sessions.pop(session.id, None)
        self._count("sessions_parked")
        return True

    def _op_session_resume(self, session: FrontSession, request):
        token = request.get("session")
        if not isinstance(token, str):
            raise ProtocolError("session token must be a string")
        if session.mode is not None or session.begun:
            raise SessionStateError(
                "cannot resume into a session with an open transaction"
            )
        parked = self._parked.pop(token, None)
        if parked is None:
            self._count("resume_failures")
            raise SessionStateError(
                "unknown, expired, or already-resumed session token"
            )
        self._count("sessions_resumed")
        # The parked object *is* the session (worker transactions are
        # keyed by its id); the fresh connection adopts it wholesale —
        # identity and quota lease ride along, and any identity the
        # fresh connection bound itself is dropped.
        self._release_identity(session)
        self._sessions.pop(session.id, None)
        self._sessions[parked.id] = parked
        result = {
            "resumed": True,
            "txn_open": parked.mode is not None,
            "mode": parked.mode,
            "epoch": self.epoch,
        }
        return result, parked

    async def _reaper_loop(self) -> None:
        grace = self.backpressure.effective_resume_grace
        interval = max(0.02, min(grace / 4.0, 0.25))
        while not self._stopping:
            await asyncio.sleep(interval)
            now = time.monotonic()
            expired = [
                token for token, entry in self._parked.items()
                if entry.deadline <= now
            ]
            for token in expired:
                entry = self._parked.pop(token, None)
                if entry is None:
                    continue
                self._count("grace_expired")
                await self._abort_worker_txns(entry)
                self._release_identity(entry)

    # -- data verbs ------------------------------------------------------

    async def _data_verb(self, session: FrontSession, request) -> Dict[str, Any]:
        op = request["op"]
        needed = _VERB_MODE[op.split(".", 1)[0]]
        if session.mode is None:
            raise SessionStateError(
                f"no open transaction; send begin(mode={needed!r}) first"
            )
        if session.mode != needed:
            raise SessionStateError(
                f"verb needs a {needed} transaction, session has {session.mode}"
            )
        if session.poisoned:
            raise TransientStoreError(
                "a shard worker restarted under this transaction; "
                "abort and retry"
            )
        if self.tenancy is not None:
            return await self._tenant_data_verb(session, request)
        return await self._route_exec(session, request)

    async def _route_exec(self, session: FrontSession, request) -> Dict[str, Any]:
        """Route one (already-authorised) data verb to its shard."""
        shard, wreq = self.router.route(
            request, session.next_insert_shard(self.layout.shards)
        )
        link = await self._link_for(shard)
        if shard not in session.begun:
            await link.call("s.begin", sid=session.id, mode=session.mode)
            session.begun.add(shard)
        wreq.pop("id", None)
        result = await link.call("s.exec", sid=session.id, req=wreq)
        return self.router.translate_response(
            request["op"], request, shard, result
        )

    async def _tenant_data_verb(
        self, session: FrontSession, request
    ) -> Dict[str, Any]:
        """Policy-check then namespace one data verb for the hub.

        Tenant data shares the shards: names and collections are
        rewritten to ``t!{tenant}!{name}`` (stable-hash routing still
        applies, to the prefixed key), and object values are wrapped
        with the owning tenant so a guessed virtual oid from another
        tenant reads as absent rather than leaking data.  Reads of the
        reserved ``_``-collections (``_audit`` et al.) are answered from
        the tenant's own control-plane database, where the hub writes
        them; they are never sharded.
        """
        op = request["op"]
        identity = session.identity
        await asyncio.to_thread(self.tenancy.check, identity, op, request)
        name = request.get("name")
        if (
            op in ("col.get", "col.iterate")
            and isinstance(name, str)
            and name.startswith("_")
        ):
            return await asyncio.to_thread(
                self.tenancy.read_reserved, identity, request
            )
        wreq = dict(request)
        if op.startswith(("col.", "name.")):
            wreq["name"] = _tenant_prefix(identity.tenant, str(_param(request, "name")))
        elif op == "obj.put":
            if wreq.get("oid") is not None:
                await self._assert_owned(
                    session, int(wreq["oid"]), identity.tenant
                )
            wreq["value"] = {
                _TENANT_WRAP_KEY: identity.tenant,
                "v": request.get("value"),
            }
        elif op == "obj.remove":
            await self._assert_owned(
                session, int(_param(request, "oid")), identity.tenant
            )
        result = await self._route_exec(session, wreq)
        if op == "obj.get":
            value = result.get("value")
            if not (
                isinstance(value, dict)
                and value.get(_TENANT_WRAP_KEY) == identity.tenant
            ):
                raise ObjectNotFoundError(
                    f"object {request.get('oid')} not found"
                )
            result = {**result, "value": value.get("v")}
        if isinstance(name, str) and isinstance(result.get("name"), str):
            result = {**result, "name": name}
        if op in MUTATING_DATA_VERBS:
            session.txn_bytes += _tenant_value_bytes(request)
        return result

    async def _assert_owned(
        self, session: FrontSession, oid: int, tenant: str
    ) -> None:
        """Refuse obj.put/obj.remove on an oid another tenant owns.

        Uniform ``not found`` whether the object is absent or foreign —
        no existence oracle across tenants."""
        try:
            probe = await self._route_exec(
                session, {"op": "obj.get", "oid": oid}
            )
        except ObjectNotFoundError:
            raise ObjectNotFoundError(f"object {oid} not found") from None
        value = probe.get("value")
        if not (
            isinstance(value, dict) and value.get(_TENANT_WRAP_KEY) == tenant
        ):
            raise ObjectNotFoundError(f"object {oid} not found")

    # -- admin -----------------------------------------------------------

    def hello_payload(self) -> Dict[str, Any]:
        features = [
            "resume", "commit-tokens", "sharding", "cross-shard-commit",
        ]
        if self.tenancy is not None:
            features.append("tenancy")
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "server": "tdb",
            "mode": "primary",
            "sharded": True,
            "shards": self.layout.shards,
            "epoch": self.epoch,
            "features": features,
            "absent_verbs": list(_UNSUPPORTED),
        }

    async def stats_payload(self) -> Dict[str, Any]:
        per_shard: Dict[str, Any] = {}
        for shard in range(self.layout.shards):
            link = self._links.get(shard)
            if link is None or not link.alive:
                per_shard[str(shard)] = None
                continue
            try:
                per_shard[str(shard)] = await link.call("w.stats")
            except TDBError:
                per_shard[str(shard)] = None
        resilience = dict(self._counters)
        resilience["parked_sessions"] = len(self._parked)
        resilience["resume_grace"] = self.backpressure.effective_resume_grace
        resilience["epoch"] = self.epoch
        resilience["commit_tokens"] = self.commit_results.stats_snapshot()
        tenancy = None
        if self.tenancy is not None:
            tenancy = await asyncio.to_thread(self.tenancy.stats)
        return {
            "sharded": True,
            "shards": self.layout.shards,
            "per_shard": per_shard,
            "sessions": self.admission.as_dict(),
            "resilience": resilience,
            "read_only": False,
            "tenancy": tenancy,
        }

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    async def _shutdown(self) -> None:
        if self._client_server is not None:
            self._client_server.close()
        if self._worker_server is not None:
            self._worker_server.close()
        if self._reaper_task is not None:
            self._reaper_task.cancel()
        for session in list(self._parked.values()):
            await self._abort_worker_txns(session)
            self._release_identity(session)
        self._parked.clear()
        for link in list(self._links.values()):
            link.superseded = True
            try:
                await asyncio.wait_for(link.call("w.shutdown"), timeout=2.0)
            except (TDBError, asyncio.TimeoutError):
                pass
            if link.pump_task is not None:
                link.pump_task.cancel()
            try:
                link.writer.close()
            except Exception:
                pass
        for link in list(self._links.values()):
            try:
                link.proc.wait(timeout=3.0)
            except subprocess.TimeoutExpired:
                link.proc.kill()
        self._links.clear()
