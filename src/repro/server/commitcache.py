"""Idempotent-commit result cache: exactly-once commits over a lossy wire.

A TCP connection dying between a client's ``commit`` frame and the
server's response leaves the client unable to distinguish "the commit
never ran" from "the commit ran and the acknowledgement was lost".
Blindly re-running the transaction would double-apply it; blindly giving
up could discard a durably committed purchase.  The classic fix is to
decouple *request identity* from *transport*: the client attaches a
unique **commit token** to every tokened commit, and the server records
the authoritative outcome per token in this cache, so a reconnecting
client can ask ``commit.result <token>`` and learn what actually
happened instead of guessing.

Lifecycle of a token:

* ``begin(token)`` — called when a commit carrying the token starts
  executing.  Returns ``None`` for a fresh token (now marked *pending*,
  owned by the caller) or the existing entry: a *resolved* entry means
  the same token was already committed or failed (the caller replays
  that outcome instead of executing again — this is what makes a
  re-sent commit idempotent), a *pending* entry means another session
  is still executing it.
* ``resolve(token, outcome)`` — the commit finished; the outcome
  (``committed`` or ``failed`` plus the marshalled error) becomes
  authoritative and queryable.
* ``cancel(token)`` — the commit never actually started (for example
  the session had no open transaction); the pending mark is retracted
  so a later legitimate use of the token is not poisoned.
* ``lookup(token)`` — the ``commit.result`` verb: resolved outcome,
  ``pending``, or ``unknown`` for a token the cache has never seen
  (or has evicted).

The cache is bounded two ways: entries older than ``ttl`` seconds are
evicted, and the entry count never exceeds ``max_entries`` (oldest
resolved entries go first; pending entries are only evicted under
capacity pressure when nothing resolved remains).  The cache is
in-memory by design — a server crash loses it, which is why ``lookup``
answers are paired with the server's boot epoch on the wire: a client
whose commit predates the current epoch must treat ``unknown`` as
*in doubt*, not as "safe to retry".
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional

__all__ = ["CommitResultCache"]

#: ``status`` values an entry (and a ``commit.result`` reply) may carry.
PENDING = "pending"
COMMITTED = "committed"
FAILED = "failed"
UNKNOWN = "unknown"


class _Entry:
    __slots__ = ("status", "payload", "stamp")

    def __init__(self, status: str, payload: Optional[Dict[str, Any]], stamp: float) -> None:
        self.status = status
        self.payload = payload
        self.stamp = stamp


class CommitResultCache:
    """Bounded, TTL-evicted map of commit token -> authoritative outcome."""

    def __init__(
        self,
        max_entries: int = 4096,
        ttl: float = 600.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self.max_entries = max_entries
        self.ttl = ttl
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        # Counters (exposed through the server's stats verb).
        self.recorded = 0
        self.replays = 0
        self.result_hits = 0
        self.result_misses = 0
        self.evicted_ttl = 0
        self.evicted_capacity = 0

    # ------------------------------------------------------------------
    # Token lifecycle
    # ------------------------------------------------------------------

    def begin(self, token: str) -> Optional[Dict[str, Any]]:
        """Claim ``token`` for an about-to-run commit.

        ``None`` means the token is fresh (now pending, caller owns it);
        a dict means the token was seen before — ``status`` is either a
        resolved outcome to replay or ``pending``.
        """
        now = self._clock()
        with self._lock:
            self._evict(now)
            entry = self._entries.get(token)
            if entry is not None:
                if entry.status != PENDING:
                    self.replays += 1
                return self._view(token, entry)
            self._entries[token] = _Entry(PENDING, None, now)
            self.recorded += 1
            return None

    def resolve(self, token: str, outcome: Dict[str, Any]) -> None:
        """Record the authoritative outcome for ``token``.

        ``outcome`` must carry ``status`` (``committed`` or ``failed``)
        plus whatever the replay path needs (``durable``, marshalled
        error fields).  Resolving refreshes the TTL clock: the eviction
        window is measured from the *outcome*, which is what a
        reconnecting client needs to still find.
        """
        status = outcome.get("status")
        if status not in (COMMITTED, FAILED):
            raise ValueError(f"outcome status must be committed/failed: {status!r}")
        now = self._clock()
        with self._lock:
            entry = self._entries.get(token)
            if entry is None:
                entry = self._entries[token] = _Entry(status, None, now)
            entry.status = status
            entry.payload = dict(outcome)
            entry.stamp = now
            self._entries.move_to_end(token)
            self._evict(now)

    def cancel(self, token: str) -> None:
        """Retract a pending claim whose commit never actually started."""
        with self._lock:
            entry = self._entries.get(token)
            if entry is not None and entry.status == PENDING:
                del self._entries[token]

    def lookup(self, token: str) -> Dict[str, Any]:
        """The ``commit.result`` backend: outcome, pending, or unknown."""
        now = self._clock()
        with self._lock:
            self._evict(now)
            entry = self._entries.get(token)
            if entry is None:
                self.result_misses += 1
                return {"token": token, "status": UNKNOWN}
            self.result_hits += 1
            return self._view(token, entry)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _view(self, token: str, entry: _Entry) -> Dict[str, Any]:
        if entry.status == PENDING:
            return {"token": token, "status": PENDING}
        payload = dict(entry.payload or {})
        payload["token"] = token
        payload["status"] = entry.status
        return payload

    def _evict(self, now: float) -> None:
        """Drop expired entries, then enforce capacity (lock held)."""
        cutoff = now - self.ttl
        while self._entries:
            token, entry = next(iter(self._entries.items()))
            if entry.stamp >= cutoff:
                break
            del self._entries[token]
            self.evicted_ttl += 1
        if len(self._entries) <= self.max_entries:
            return
        # Capacity pressure: oldest resolved entries go first; a pending
        # entry (a commit literally in flight) is only sacrificed when
        # nothing resolved remains to evict.
        overflow = len(self._entries) - self.max_entries
        resolved = [t for t, e in self._entries.items() if e.status != PENDING]
        for token in resolved[:overflow]:
            del self._entries[token]
            self.evicted_capacity += 1
            overflow -= 1
        if overflow > 0:
            for token in list(self._entries)[:overflow]:
                del self._entries[token]
                self.evicted_capacity += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats_snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "recorded": self.recorded,
                "replays": self.replays,
                "result_hits": self.result_hits,
                "result_misses": self.result_misses,
                "evicted_ttl": self.evicted_ttl,
                "evicted_capacity": self.evicted_capacity,
            }
