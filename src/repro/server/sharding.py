"""Shard layout, stable routing, and virtual object ids.

The sharded service partitions one logical database into ``N``
independent :class:`~repro.db.Database` instances living under
``<root>/shard-<k>/``.  The partition function is fixed at layout
creation and recorded in ``<root>/sharding.json``; opening the layout
with a different shard count is refused, because every routing decision
below depends on ``N``:

* **names** route by a stable hash of the name,
* **collections** route by a stable hash of the collection name (a
  collection lives wholly on one shard, so iteration and indexes need
  no cross-shard merge),
* **object ids** are *virtual*: the id handed to clients encodes the
  owning shard as ``void = local_oid * N + shard``, so ``obj.get``
  routes arithmetically and ids stay globally unique across shards.
  Fresh inserts carry no key, so the front door places them round-robin
  — any placement is correct because the returned id pins the shard.

Nothing here talks to sockets; :mod:`repro.server.sharded` (front door)
and :mod:`repro.server.shardworker` (worker process) share this module
so both sides agree on the mapping.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Any, Dict, Optional, Tuple

from repro.config import ChunkStoreConfig, SecurityProfile
from repro.errors import ProtocolError, ServerError

__all__ = [
    "BOOTSTRAP_ENV",
    "MANIFEST_NAME",
    "ShardLayout",
    "ShardRouter",
    "shard_of_key",
    "encode_oid",
    "decode_oid",
    "config_to_dict",
    "config_from_dict",
]

MANIFEST_NAME = "sharding.json"
LAYOUT_VERSION = 1

#: Environment variable carrying the worker's JSON bootstrap blob.
#: Lives here (not in :mod:`repro.server.shardworker`) so the front door
#: never imports the worker's module namespace.
BOOTSTRAP_ENV = "TDB_SHARD_BOOTSTRAP"


def config_to_dict(config: Optional[ChunkStoreConfig]) -> Optional[Dict[str, Any]]:
    """JSON-able form of a chunk-store config (for the bootstrap blob)."""
    if config is None:
        return None
    blob = dataclasses.asdict(config)
    blob["security"] = dataclasses.asdict(config.security)
    return blob


def config_from_dict(blob: Optional[Dict[str, Any]]) -> Optional[ChunkStoreConfig]:
    if blob is None:
        return None
    blob = dict(blob)
    security = blob.pop("security", None)
    if security is not None:
        blob["security"] = SecurityProfile(**security)
    return ChunkStoreConfig(**blob)


def shard_of_key(key: str, shards: int) -> int:
    """Stable hash partition of a string key (names, collections)."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shards


def encode_oid(local_oid: int, shard: int, shards: int) -> int:
    """Virtual object id handed to clients."""
    return local_oid * shards + shard


def decode_oid(virtual_oid: int, shards: int) -> Tuple[int, int]:
    """``(local_oid, shard)`` for a client-visible object id."""
    if virtual_oid < 0:
        raise ProtocolError(f"object ids are non-negative, got {virtual_oid}")
    return virtual_oid // shards, virtual_oid % shards


class ShardLayout:
    """The on-disk shape of a sharded database root."""

    def __init__(self, root: str, shards: int) -> None:
        if shards < 1:
            raise ServerError("shard count must be at least 1")
        self.root = os.path.abspath(root)
        self.shards = shards

    # -- paths ----------------------------------------------------------

    def shard_dir(self, shard: int) -> str:
        return os.path.join(self.root, f"shard-{shard}")

    @property
    def coord_dir(self) -> str:
        return os.path.join(self.root, "coord")

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, MANIFEST_NAME)

    # -- creation / opening ---------------------------------------------

    @classmethod
    def create(cls, root: str, shards: int) -> "ShardLayout":
        layout = cls(root, shards)
        os.makedirs(layout.root, exist_ok=True)
        if os.path.exists(layout.manifest_path):
            raise ServerError(f"{layout.manifest_path} already exists")
        if os.path.exists(os.path.join(layout.root, "data")):
            raise ServerError(
                f"{layout.root} holds an unsharded database; refusing to "
                "overlay a shard layout on it"
            )
        os.makedirs(layout.coord_dir, exist_ok=True)
        for shard in range(shards):
            os.makedirs(layout.shard_dir(shard), exist_ok=True)
        blob = json.dumps(
            {"version": LAYOUT_VERSION, "shards": shards}, indent=2
        ).encode("utf-8")
        tmp = layout.manifest_path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, layout.manifest_path)
        return layout

    @classmethod
    def open(cls, root: str, shards: Optional[int] = None) -> "ShardLayout":
        """Open an existing layout; ``shards`` (if given) must match."""
        path = os.path.join(os.path.abspath(root), MANIFEST_NAME)
        try:
            with open(path, "rb") as fh:
                manifest = json.loads(fh.read().decode("utf-8"))
        except FileNotFoundError:
            raise ServerError(
                f"{root} has no {MANIFEST_NAME}; create the layout first "
                "(serve --shards N on an empty directory)"
            ) from None
        except (OSError, ValueError) as exc:
            raise ServerError(f"unreadable shard manifest {path}: {exc}") from exc
        recorded = manifest.get("shards")
        if not isinstance(recorded, int) or recorded < 1:
            raise ServerError(f"corrupt shard manifest {path}")
        if shards is not None and shards != recorded:
            raise ServerError(
                f"layout at {root} was created with {recorded} shards; "
                f"refusing to open it with {shards} (virtual object ids "
                "and key routing are functions of the shard count)"
            )
        return cls(root, recorded)

    @classmethod
    def open_or_create(cls, root: str, shards: int) -> "ShardLayout":
        path = os.path.join(os.path.abspath(root), MANIFEST_NAME)
        if os.path.exists(path):
            return cls.open(root, shards)
        return cls.create(root, shards)


class ShardRouter:
    """Maps client requests to ``(shard, worker-request)`` pairs.

    Oid translation happens here, at the front door: workers always see
    local ids, clients always see virtual ids, and ``name.bind`` values
    pass through untouched (a bound value is an opaque integer to the
    catalog, so it may carry a virtual id pointing at another shard).
    """

    def __init__(self, layout: ShardLayout) -> None:
        self.layout = layout
        self._routed: Dict[str, int] = {}

    def shard_for_name(self, name: str) -> int:
        return shard_of_key(name, self.layout.shards)

    def route(
        self, request: Dict[str, Any], insert_shard: int
    ) -> Tuple[int, Dict[str, Any]]:
        """``(shard, translated request)`` for one data verb.

        ``insert_shard`` is the caller's placement choice for keyless
        inserts (``obj.put`` with no oid).
        """
        op = request.get("op")
        shards = self.layout.shards
        if op in ("obj.get", "obj.remove"):
            local, shard = decode_oid(int(_need(request, "oid")), shards)
            return shard, {**request, "oid": local}
        if op == "obj.put":
            oid = request.get("oid")
            if oid is None:
                return insert_shard % shards, dict(request)
            local, shard = decode_oid(int(oid), shards)
            return shard, {**request, "oid": local}
        if op in ("name.bind", "name.lookup"):
            return self.shard_for_name(str(_need(request, "name"))), dict(request)
        if op in ("col.create", "col.insert", "col.get", "col.remove", "col.iterate"):
            return self.shard_for_name(str(_need(request, "name"))), dict(request)
        raise ProtocolError(f"verb {op!r} is not routable")

    def translate_response(
        self,
        op: str,
        original: Dict[str, Any],
        shard: int,
        result: Dict[str, Any],
    ) -> Dict[str, Any]:
        """Rewrite worker-local oids in a result back to virtual ids."""
        shards = self.layout.shards
        if op in ("obj.put", "col.insert"):
            oid = result.get("oid")
            if oid is not None:
                if op == "obj.put" and original.get("oid") is not None:
                    result = {**result, "oid": int(original["oid"])}
                else:
                    result = {**result, "oid": encode_oid(int(oid), shard, shards)}
        elif op in ("obj.get", "obj.remove"):
            if "oid" in result and original.get("oid") is not None:
                result = {**result, "oid": int(original["oid"])}
        return result


def _need(request: Dict[str, Any], field: str):
    if field not in request or request[field] is None:
        raise ProtocolError(f"missing parameter {field!r}")
    return request[field]
