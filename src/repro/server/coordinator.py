"""Ordered cross-shard commit: the 2PC coordinator and its decision log.

The sharded front door drives cross-shard commits deterministically:
participants are prepared in ascending shard-id order (so two
cross-shard commits contending for the same ledger slot lock can never
deadlock),
then a single decision record is fsynced to ``coord/decisions.log``
**before** any participant learns the verdict.  The decision record is
the commit point — once it is durable, the outcome is *committed* no
matter which workers crash, because every participant holds a durable
redo record from its prepare and the supervisor re-drives the decision
at respawn.  An unlogged token is presumed aborted.

The client's idempotent commit token (PR 7) doubles as the global 2PC
transaction id, so retries, ``commit.result`` queries, and recovery all
speak about the same identifier — exactly-once across worker restarts.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ServerError, TDBError

__all__ = [
    "DecisionLog",
    "CrossShardCoordinator",
    "CommitStage",
    "ensure_single_writer",
    "release_single_writer",
]


class CommitStage:
    """Stage names passed to the coordinator's observation hook (tests
    kill workers at these boundaries to sweep the crash matrix)."""

    BEFORE_PREPARE = "before_prepare"
    AFTER_PREPARE = "after_prepare"
    BEFORE_DECISION = "before_decision"
    AFTER_DECISION = "after_decision"
    BEFORE_DECIDE = "before_decide"
    AFTER_DECIDE = "after_decide"


class DecisionLog:
    """Append-only fsynced JSONL log of commit decisions.

    Only *commit* decisions are logged (presumed abort).  ``done``
    markers are an optimization — recovery is idempotent through the
    per-shard ledgers, so a re-driven decision for an already-applied
    token is discarded by the worker.

    Growth is bounded: an acknowledged token is dropped from the live
    decision map immediately, and every ``compact_every`` done-marks the
    log file is rewritten with only the still-pending decisions (crash
    mid-compaction is safe — the rewrite lands via ``os.replace``).
    Recently acknowledged tokens stay answerable through ``committed``
    until the next compaction, mirroring the finite dedup window of the
    front door's commit-token cache.
    """

    def __init__(self, path: str, compact_every: int = 512) -> None:
        self.path = path
        self.compact_every = max(1, int(compact_every))
        self._lock = threading.Lock()
        self._decisions: Dict[str, List[int]] = {}
        self._done: set = set()
        self._done_since_compact = 0
        os.makedirs(os.path.dirname(path), exist_ok=True)
        self._load()
        self._fh = open(path, "ab")

    def _load(self) -> None:
        try:
            with open(self.path, "rb") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line.decode("utf-8"))
                    except ValueError:
                        continue  # torn tail of a crashed append
                    token = entry.get("token")
                    if not isinstance(token, str):
                        continue
                    if entry.get("done"):
                        self._decisions.pop(token, None)
                        self._done.add(token)
                    elif isinstance(entry.get("shards"), list):
                        self._decisions[token] = [
                            int(s) for s in entry["shards"]
                        ]
        except FileNotFoundError:
            pass

    def record_commit(self, token: str, shards: List[int]) -> None:
        """Durably log the commit decision — the 2PC commit point."""
        entry = json.dumps(
            {"token": token, "verdict": "commit", "shards": shards},
            separators=(",", ":"),
        ).encode("utf-8") + b"\n"
        with self._lock:
            self._fh.write(entry)
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._decisions[token] = list(shards)

    def mark_done(self, token: str) -> None:
        """Record that every participant acknowledged the decision."""
        entry = json.dumps(
            {"token": token, "done": True}, separators=(",", ":")
        ).encode("utf-8") + b"\n"
        with self._lock:
            self._fh.write(entry)
            self._fh.flush()
            self._decisions.pop(token, None)
            self._done.add(token)
            self._done_since_compact += 1
            if self._done_since_compact >= self.compact_every:
                self._compact_locked()

    def _compact_locked(self) -> None:
        """Rewrite the log with only the still-pending decisions."""
        tmp_path = self.path + ".compact"
        with open(tmp_path, "wb") as fh:
            for token, shards in self._decisions.items():
                fh.write(
                    json.dumps(
                        {"token": token, "verdict": "commit", "shards": shards},
                        separators=(",", ":"),
                    ).encode("utf-8")
                    + b"\n"
                )
            fh.flush()
            os.fsync(fh.fileno())
        try:
            self._fh.close()
        except OSError:
            pass
        os.replace(tmp_path, self.path)
        self._fh = open(self.path, "ab")
        self._done.clear()
        self._done_since_compact = 0

    def committed(self, token: str) -> bool:
        with self._lock:
            return token in self._decisions or token in self._done

    def pending_for_shard(self, shard: int) -> List[str]:
        """Committed-but-unacknowledged tokens involving ``shard``."""
        with self._lock:
            return [
                token
                for token, shards in self._decisions.items()
                if token not in self._done and shard in shards
            ]

    def close(self) -> None:
        with self._lock:
            try:
                self._fh.close()
            except OSError:
                pass


class CrossShardCoordinator:
    """Drives one ordered-commit round over the shard links.

    ``call`` is an async callable ``(shard, op, **params)`` provided by
    the front door; ``on_stage`` (optional) observes each boundary for
    the crash-sweep tests.
    """

    def __init__(
        self,
        log: DecisionLog,
        call,
        restart_worker,
        on_stage: Optional[Callable[[str, str, Optional[int]], None]] = None,
    ) -> None:
        self.log = log
        self._call = call
        self._restart_worker = restart_worker
        self.on_stage = on_stage

    def _stage(self, stage: str, token: str, shard: Optional[int]) -> None:
        if self.on_stage is not None:
            self.on_stage(stage, token, shard)

    async def commit(
        self, sid: int, token: str, shards: List[int]
    ) -> Dict[str, Any]:
        """Prepare in shard order, log the decision, decide everywhere.

        Raises on abort; the caller owns the commit-token cache entry.
        """
        order = sorted(shards)
        prepared: List[int] = []
        try:
            for shard in order:
                self._stage(CommitStage.BEFORE_PREPARE, token, shard)
                await self._call(shard, "s.prepare", sid=sid, token=token)
                prepared.append(shard)
                self._stage(CommitStage.AFTER_PREPARE, token, shard)
        except Exception:
            await self._abort_round(sid, token, order, prepared)
            raise
        self._stage(CommitStage.BEFORE_DECISION, token, None)
        try:
            self.log.record_commit(token, order)
        except Exception as exc:
            # No durable decision record means presumed abort; release
            # the prepared participants instead of wedging their locks.
            await self._abort_round(sid, token, order, order)
            raise ServerError(
                f"cannot write the commit decision: {exc}"
            ) from exc
        self._stage(CommitStage.AFTER_DECISION, token, None)
        lagging = False
        for shard in order:
            self._stage(CommitStage.BEFORE_DECIDE, token, shard)
            try:
                await self._call(
                    shard, "s.decide", sid=sid, token=token, verdict="commit"
                )
            except TDBError:
                # The decision is durable; a participant that cannot
                # apply it live is restarted and re-driven from its redo
                # record — the outcome stays committed.
                lagging = True
                await self._restart_worker(shard)
            self._stage(CommitStage.AFTER_DECIDE, token, shard)
        if not lagging:
            self.log.mark_done(token)
        return {"durable": True, "shards": order}

    async def _abort_round(
        self, sid: int, token: str, order: List[int], prepared: List[int]
    ) -> None:
        """Presumed abort: no decision record is written.  Prepared
        participants are told to abort; unreachable ones resolve the
        same way at respawn (their token is not in the log)."""
        for shard in order:
            try:
                if shard in prepared:
                    await self._call(
                        shard, "s.decide", sid=sid, token=token, verdict="abort"
                    )
                else:
                    await self._call(shard, "s.abort", sid=sid)
            except TDBError:
                pass


#: Coordinator directories this process is currently serving.  The pid
#: file below only guards against *other* processes; two servers inside
#: one process would pass the pid-liveness test, so they are tracked
#: here.
_held_coord_dirs: set = set()


def ensure_single_writer(path: str) -> None:
    """Guard against two front doors on one layout.

    Called by ``ShardedTdbServer.start()``; released by ``stop()``.
    Best-effort across processes (pid liveness), exact within one
    process.  A stale pid file left by a crashed front door is
    reclaimed, because recovery is driven from the durable decision log
    and redo records, never from the dead server's memory.
    """
    pid_path = os.path.join(path, "frontdoor.pid")
    if pid_path in _held_coord_dirs:
        raise ServerError(
            f"shard layout already served by this process ({pid_path})"
        )
    try:
        with open(pid_path, "r", encoding="utf-8") as fh:
            pid = int(fh.read().strip() or 0)
        if pid and pid != os.getpid():
            try:
                os.kill(pid, 0)
            except (OSError, ProcessLookupError):
                pid = 0
            if pid:
                raise ServerError(
                    f"shard layout already served by pid {pid} ({pid_path})"
                )
    except FileNotFoundError:
        pass
    except ValueError:
        pass
    os.makedirs(path, exist_ok=True)
    with open(pid_path, "w", encoding="utf-8") as fh:
        fh.write(str(os.getpid()))
    _held_coord_dirs.add(pid_path)


def release_single_writer(path: str) -> None:
    """Drop the guard taken by :func:`ensure_single_writer` (no-op if
    this server never acquired it)."""
    pid_path = os.path.join(path, "frontdoor.pid")
    if pid_path not in _held_coord_dirs:
        return
    _held_coord_dirs.discard(pid_path)
    try:
        os.unlink(pid_path)
    except OSError:
        pass
