"""Admission control and timeout policy for the TDB service.

Three bounds keep an overloaded server shedding load instead of growing
queues without limit (the GlassDB-style service boundary in front of a
verifiable store needs all three):

* **session count** — at most ``max_sessions`` concurrent connections;
  further connects are answered with a transient
  :class:`~repro.errors.ServerBusyError` frame and closed,
* **pending commits** — the group-commit coordinator bounds its queue
  at ``max_pending_commits`` requests (see
  :mod:`repro.server.groupcommit`),
* **time** — ``idle_timeout`` bounds how long a session may sit between
  requests and ``request_timeout`` bounds how long one frame may dribble
  in; either firing aborts the session's open transaction (releasing
  its strict-2PL locks so other sessions stop waiting on a dead client)
  and closes the connection.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict

__all__ = ["BackpressureConfig", "AdmissionControl"]


@dataclass(frozen=True)
class BackpressureConfig:
    """Bounds of the service layer.

    ``idle_timeout``
        Seconds a session may wait between requests before the server
        aborts its transaction and drops the connection.
    ``request_timeout``
        Seconds one request frame may take to arrive completely once
        its first byte has been read (slow-writer protection) — an
        absolute deadline across partial reads, so trickled bytes do
        not reset it.
    ``resume_grace``
        Seconds a session whose connection *dropped* (rather than timed
        out or closed cleanly) stays parked server-side with its
        transaction and locks intact, waiting for the client to
        reconnect via ``session.resume``.  Effectively capped at
        ``idle_timeout`` (a parked session must never outlive an idle
        one); ``0`` disables parking and restores abort-on-drop.
    """

    max_sessions: int = 64
    max_pending_commits: int = 256
    idle_timeout: float = 30.0
    request_timeout: float = 10.0
    resume_grace: float = 2.0

    def __post_init__(self) -> None:
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be at least 1")
        if self.max_pending_commits < 1:
            raise ValueError("max_pending_commits must be at least 1")
        if self.idle_timeout <= 0:
            raise ValueError("idle_timeout must be positive")
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        if self.resume_grace < 0:
            raise ValueError("resume_grace must be non-negative")

    @property
    def effective_resume_grace(self) -> float:
        """The grace window actually applied: never beyond idle_timeout."""
        return min(self.resume_grace, self.idle_timeout)


class AdmissionControl:
    """Bounded session-slot accounting (thread-safe)."""

    def __init__(self, max_sessions: int) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be at least 1")
        self.max_sessions = max_sessions
        self._mutex = threading.Lock()
        self._active = 0
        self.admitted_total = 0
        self.rejected_total = 0
        self.timeout_aborts = 0

    def try_admit(self) -> bool:
        """Claim a session slot; ``False`` when the server is full."""
        with self._mutex:
            if self._active >= self.max_sessions:
                self.rejected_total += 1
                return False
            self._active += 1
            self.admitted_total += 1
            return True

    def release(self) -> None:
        """Return a previously claimed slot."""
        with self._mutex:
            if self._active > 0:
                self._active -= 1

    def record_timeout_abort(self) -> None:
        """A session timeout aborted an open transaction."""
        with self._mutex:
            self.timeout_aborts += 1

    @property
    def active(self) -> int:
        with self._mutex:
            return self._active

    def as_dict(self) -> Dict[str, int]:
        with self._mutex:
            return {
                "active_sessions": self._active,
                "max_sessions": self.max_sessions,
                "admitted_total": self.admitted_total,
                "rejected_total": self.rejected_total,
                "timeout_aborts": self.timeout_aborts,
            }
