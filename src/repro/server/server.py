"""The threaded TDB socket server: concurrent sessions over one Database.

Turns the embedded stack into a service (the step GlassDB takes in
front of its verifiable ledger store): a listener thread accepts
connections under admission control, and each connection gets a
:class:`Session` — a thread that reads protocol frames, maps verbs onto
``Database.transaction()`` / ``ctransaction()`` under the existing
strict-2PL locks, and scopes **exactly one** open transaction.

Concurrency model:

* isolation comes entirely from the object store's strict two-phase
  locking — the server adds no locking of its own around data access,
* the shared commit path is serialized by the chunk store's internal
  writer mutex, and commits are routed through the group-commit
  coordinator so concurrent sessions share one log append + sync +
  counter advance (:mod:`repro.server.groupcommit`),
* a session that times out idle or mid-request has its transaction
  aborted — releasing its locks so other sessions stop blocking on a
  dead client — and its connection closed
  (:mod:`repro.server.backpressure`),
* a session whose connection *drops* (rather than timing out or closing
  cleanly) is **parked** for a bounded grace window: its transaction and
  locks survive, and a reconnecting client presents its resume token via
  ``session.resume`` to adopt them and continue.  Strict 2PL locks are
  keyed by transaction id, not thread, so the adoption is safe.

Exactly-once commits ride on two caches: each session keeps its last
response (re-sending the in-flight request id after a resume replays it
without re-execution), and tokened commits record their authoritative
outcome in the server-wide :class:`~repro.server.commitcache.
CommitResultCache`, queryable via ``commit.result`` even from a brand
new connection.

The remote data model is JSON: values live in :class:`RemoteRecord`
persistent objects and collections are indexed by record fields, so a
remote client needs no Python class registry.
"""

from __future__ import annotations

import base64
import dataclasses
import secrets
import socket
import threading
import time
from typing import Any, Dict, List, Optional

from repro.errors import (
    AuthFailedError,
    AuthRequiredError,
    ConfigError,
    FeatureUnavailableError,
    ProtocolError,
    ReadOnlyReplicaError,
    ReplicationError,
    ServerBusyError,
    SessionStateError,
    TDBError,
    TransientStoreError,
)
from repro.server.backpressure import AdmissionControl, BackpressureConfig
from repro.server.commitcache import CommitResultCache
from repro.server.groupcommit import GroupCommitCoordinator
from repro.server import protocol
from repro.server.verbs import (
    DATA_VERBS,
    MUTATING_DATA_VERBS,
    RemoteRecord,
    VerbExecutor,
    field_indexer,
)
from repro.tenancy import value_bytes as _tenant_value_bytes

__all__ = ["RemoteRecord", "TdbServer", "field_indexer"]

#: Verbs refused outright on a read-only replica server.  ``begin`` /
#: ``commit`` / ``abort`` stay allowed: a read-only transaction's commit
#: carries no writes, so it never reaches the chunk store's commit path.
_MUTATING_VERBS = MUTATING_DATA_VERBS

#: Verbs a multi-tenant hub answers before ``auth`` binds an identity.
#: Everything else on a hub requires an authenticated session.
_PREAUTH_VERBS = ("hello", "auth", "stats", "commit.result", "session.resume")

#: Verbs that are inherently per-database and therefore absent on a
#: multi-tenant hub: there is no single replication stream or
#: transparency head to serve across tenants (per-tenant heads are a
#: roadmap item).  Advertised as ``absent_verbs`` in ``hello``.
_PER_STORE_VERBS = (
    "repl.subscribe",
    "repl.segments",
    "repl.master",
    "proof.read",
    "proof.absent",
    "log.head",
    "log.consistency",
)


class _SessionTimeout(Exception):
    """Internal: the idle/request timeout fired for this session."""


class _ParkedSession:
    """Transaction state preserved across a dropped connection."""

    __slots__ = (
        "token",
        "txn",
        "mode",
        "gate_held",
        "last_request",
        "last_response",
        "requests_served",
        "deadline",
        "identity",
        "tenant_db",
        "txn_bytes",
    )

    def __init__(
        self,
        token: str,
        txn,
        mode: Optional[str],
        gate_held: bool,
        last_request: Optional[Dict[str, Any]],
        last_response: Optional[Dict[str, Any]],
        requests_served: int,
        deadline: float,
        identity=None,
        tenant_db=None,
        txn_bytes: int = 0,
    ) -> None:
        self.token = token
        self.txn = txn
        self.mode = mode
        self.gate_held = gate_held
        self.last_request = last_request
        self.last_response = last_response
        self.requests_served = requests_served
        self.deadline = deadline
        self.identity = identity
        self.tenant_db = tenant_db
        self.txn_bytes = txn_bytes


class Session:
    """One connection: a protocol loop scoping one open transaction."""

    def __init__(
        self,
        server: "TdbServer",
        sock: socket.socket,
        address,
        session_id: int,
    ) -> None:
        self.server = server
        self.sock = sock
        self.address = address
        self.session_id = session_id
        self.txn = None
        self.mode: Optional[str] = None
        self._gate_held = False
        self.requests_served = 0
        self._stop = False
        #: Tenancy: the bound (tenant, principal), the tenant's database,
        #: the pending auth challenge, and the accounting bytes of the
        #: open transaction's mutating verbs.
        self.identity = None
        self.tenant_db = None
        self._pending_auth: Optional[Dict[str, Any]] = None
        self.txn_bytes = 0
        #: Token a disconnected client presents to ``session.resume``.
        self.resume_token = secrets.token_hex(16)
        # One-slot response cache: a re-delivered request (chaos
        # duplicate, or the in-flight request re-sent after a resume)
        # replays the stored response instead of executing twice.  The
        # whole request is matched, not just its id: a *new* client
        # adopting a parked session starts its own id sequence, and a
        # colliding id on a different request must execute, not replay.
        self.last_request: Optional[Dict[str, Any]] = None
        self.last_response: Optional[Dict[str, Any]] = None
        self.thread = threading.Thread(
            target=self._run, name=f"tdb-session-{session_id}", daemon=True
        )

    def start(self) -> None:
        self.thread.start()

    def stop(self) -> None:
        """Ask the session to exit; unblocks its pending recv."""
        self._stop = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Protocol loop
    # ------------------------------------------------------------------

    def _run(self) -> None:
        config = self.server.backpressure
        parked = False
        try:
            while not self._stop:
                try:
                    request = protocol.read_frame(
                        self.sock,
                        idle_timeout=config.idle_timeout,
                        body_timeout=config.request_timeout,
                    )
                except socket.timeout:
                    raise _SessionTimeout() from None
                if request is None:
                    break  # clean EOF
                self._serve_one(request)
        except _SessionTimeout:
            if self.txn is not None:
                self.server.admission.record_timeout_abort()
        except (OSError, ProtocolError):
            # The peer vanished mid-conversation (or a frame was cut
            # short).  Instead of instantly aborting the transaction,
            # park the session state for the resume grace window so the
            # client can reconnect with its token and carry on.
            parked = self.server._try_park(self)
        finally:
            if not parked:
                self._abort_open_txn()
            try:
                self.sock.close()
            except OSError:
                pass
            self.server._session_finished(self)

    def _serve_one(self, request: Dict[str, Any]) -> None:
        request_id = request.get("id")
        if (
            request_id is not None
            and self.last_response is not None
            and request == self.last_request
        ):
            self.server._count("srv_request_replays")
            protocol.write_frame(self.sock, self.last_response)
            return
        try:
            result = self._dispatch(request)
            response = {"id": request_id, "ok": True, "result": result}
        except TDBError as exc:
            response = protocol.error_payload(request_id, exc)
        self.requests_served += 1
        # Cache before writing: if the write dies the session parks with
        # the response, and the resumed client's re-send replays it.  A
        # resume response must not clobber the slot it just adopted —
        # the slot still holds the dropped connection's in-flight
        # response, which the client is about to ask for.
        if request.get("op") != "session.resume":
            self.last_request = dict(request)
            self.last_response = response
        protocol.write_frame(self.sock, response)

    def _abort_open_txn(self) -> None:
        if self.txn is None:
            self._release_gate()
            return
        txn, self.txn, self.mode = self.txn, None, None
        try:
            txn.abort()
        except TDBError:
            pass
        finally:
            self._release_gate()

    def _release_gate(self) -> None:
        if self._gate_held:
            self._gate_held = False
            self.server.txn_gate.release_shared()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        if not isinstance(op, str):
            raise ProtocolError("request needs a string 'op' field")
        if self.server.read_only and op in _MUTATING_VERBS:
            raise ReadOnlyReplicaError(
                f"verb {op!r} refused: this server is a read-only replica; "
                "write to the primary or promote this node"
            )
        tenancy = self.server.tenancy
        if tenancy is not None:
            if self.identity is None and op not in _PREAUTH_VERBS:
                raise AuthRequiredError(
                    "this server is a multi-tenant hub; bind an identity "
                    "with the auth challenge-response first"
                )
            if op in _PER_STORE_VERBS:
                raise FeatureUnavailableError(
                    f"verb {op!r} is unavailable on a multi-tenant hub: it "
                    "is per-database (no single replication stream or "
                    "transparency head spans tenants; per-tenant heads are "
                    "a roadmap item)"
                )
            if op in DATA_VERBS:
                tenancy.check(self.identity, op, request)
                result = self.server.executor.execute(
                    self.tenant_db, request, self.txn, self.mode
                )
                if op in MUTATING_DATA_VERBS:
                    self.txn_bytes += _tenant_value_bytes(request)
                return result
        if op in DATA_VERBS:
            return self.server.executor.execute(
                self.server.db, request, self.txn, self.mode
            )
        handler = getattr(self, "_op_" + op.replace(".", "_"), None)
        if handler is None or op not in protocol.VERBS:
            raise ProtocolError(f"unknown verb {op!r}")
        return handler(request)

    @staticmethod
    def _param(request: Dict[str, Any], name: str, required: bool = True, default=None):
        if name not in request:
            if required:
                raise ProtocolError(f"missing parameter {name!r}")
            return default
        return request[name]

    def _require_txn(self, mode: str):
        if self.txn is None:
            raise SessionStateError(
                f"no open transaction; send begin(mode={mode!r}) first"
            )
        if self.mode != mode:
            raise SessionStateError(
                f"verb needs a {mode} transaction, session has {self.mode}"
            )
        return self.txn

    # -- transaction lifecycle --------------------------------------------

    def _op_begin(self, request) -> Dict[str, Any]:
        mode = self._param(request, "mode", required=False, default="object")
        if mode not in ("object", "collection"):
            raise ProtocolError(f"unknown transaction mode {mode!r}")
        if self.txn is not None:
            raise SessionStateError(
                "a transaction is already open in this session"
            )
        if self.server.tenancy is not None:
            # Tenancy: charge the tenant's txn/s token bucket first; a
            # refused begin opens nothing.
            self.server.tenancy.on_begin(self.identity)
        if self.server.txn_gate is not None:
            # Replica mode: the transaction pins the current image so the
            # applier cannot swap it mid-transaction.
            self.server.txn_gate.acquire_shared()
            self._gate_held = True
        try:
            db = (
                self.tenant_db
                if self.server.tenancy is not None
                else self.server.db
            )
            self.txn = db.transaction() if mode == "object" else db.ctransaction()
        except BaseException:
            self._release_gate()
            raise
        self.mode = mode
        self.txn_bytes = 0
        return {
            "mode": mode,
            "session": self.resume_token,
            "epoch": self.server.epoch,
        }

    def _op_commit(self, request) -> Dict[str, Any]:
        token = self._param(request, "token", required=False)
        if token is not None and not isinstance(token, str):
            raise ProtocolError("commit token must be a string")
        durable = bool(self._param(request, "durable", required=False, default=True))
        cache = self.server.commit_results
        if token is not None:
            prior = cache.begin(token)
            if prior is not None:
                return self._replay_commit_outcome(token, prior)
        if self.txn is None:
            if token is not None:
                cache.cancel(token)
            raise SessionStateError("no open transaction to commit")
        txn, self.txn, self.mode = self.txn, None, None
        tenancy = self.server.tenancy
        txn_bytes, self.txn_bytes = self.txn_bytes, 0
        quota_held = False
        committed = False
        try:
            if tenancy is not None:
                # Tenancy: the pending-commit and stored-bytes budgets
                # gate the commit; a QuotaExceededError lands in the
                # except branch below, which aborts the transaction
                # (releasing its locks) and resolves the token as a
                # transient failure.
                tenancy.on_commit_start(self.identity, txn_bytes)
                quota_held = True
            txn.commit(durable=durable)
            committed = True
        except TDBError as exc:
            # The commit failed (queue full, store fault, deferred index
            # violation...).  Release the locks so the failed session
            # cannot wedge its neighbours, then report the error.
            try:
                if getattr(txn, "active", False):
                    txn.abort()
            except TDBError:
                pass
            if token is not None:
                cache.resolve(
                    token,
                    {
                        "status": "failed",
                        "error": type(exc).__name__,
                        "message": str(exc),
                        "transient": protocol.error_payload(None, exc)["transient"],
                    },
                )
            raise
        except BaseException:
            # Crash injection or interpreter-level failure mid-commit:
            # the outcome is genuinely unknown, so the token stays
            # pending and commit.result answers honestly.
            raise
        finally:
            self._release_gate()
            if quota_held:
                tenancy.on_commit_end(self.identity, txn_bytes, committed)
        if token is not None:
            cache.resolve(token, {"status": "committed", "durable": durable})
        return {"durable": durable}

    def _replay_commit_outcome(self, token: str, prior: Dict[str, Any]) -> Dict[str, Any]:
        """A commit re-sent with an already-seen token: replay, never re-run."""
        status = prior.get("status")
        if status == "pending":
            # Another session (or a crashed one) holds this token's
            # commit in flight; the client should poll commit.result.
            raise TransientStoreError(
                "a commit with this token is already in flight; "
                "query commit.result for the outcome"
            )
        self.server._count("srv_commit_replays")
        if status == "failed":
            raise protocol.exception_from_payload(
                {
                    "error": prior.get("error", "ServerError"),
                    "message": prior.get("message", "commit failed"),
                    "transient": bool(prior.get("transient")),
                }
            )
        return {"durable": prior.get("durable", True), "replayed": True}

    def _op_commit_result(self, request) -> Dict[str, Any]:
        token = self._param(request, "token")
        if not isinstance(token, str):
            raise ProtocolError("commit token must be a string")
        payload = self.server.commit_results.lookup(token)
        self.server._count(
            "srv_indoubt_misses" if payload["status"] == "unknown"
            else "srv_indoubt_hits"
        )
        payload["epoch"] = self.server.epoch
        return payload

    def _op_session_resume(self, request) -> Dict[str, Any]:
        token = self._param(request, "session")
        if not isinstance(token, str):
            raise ProtocolError("session token must be a string")
        if self.txn is not None:
            raise SessionStateError(
                "cannot resume into a session with an open transaction"
            )
        parked = self.server._take_parked(token)
        if parked is None:
            raise SessionStateError(
                "unknown, expired, or already-resumed session token"
            )
        self.resume_token = token
        self.txn = parked.txn
        self.mode = parked.mode
        self._gate_held = parked.gate_held
        self.last_request = parked.last_request
        self.last_response = parked.last_response
        self.requests_served = parked.requests_served
        if self.server.tenancy is not None:
            # Adopt the parked identity (and its lease) wholesale; the
            # resume token is the bearer credential.  An identity this
            # session authenticated before resuming is released first.
            if self.identity is not None:
                self.server.tenancy.release(self.identity)
            self.identity = parked.identity
            self.tenant_db = parked.tenant_db
            self.txn_bytes = parked.txn_bytes
        return {
            "resumed": True,
            "txn_open": self.txn is not None,
            "mode": self.mode,
            "epoch": self.server.epoch,
        }

    def _op_abort(self, request) -> Dict[str, Any]:
        if self.txn is None:
            raise SessionStateError("no open transaction to abort")
        txn, self.txn, self.mode = self.txn, None, None
        self.txn_bytes = 0
        try:
            txn.abort()
        finally:
            self._release_gate()
        return {}

    # -- data verbs (obj.* / name.* / col.*) are routed to the shared
    # -- VerbExecutor by _dispatch; see repro.server.verbs.

    # -- tenancy -----------------------------------------------------------

    def _require_hub(self):
        hub = self.server.tenancy
        if hub is None:
            raise FeatureUnavailableError(
                "this server is not a multi-tenant hub; it serves one "
                "anonymous database (start it with a TenancyHub / "
                "serve --tenants for per-principal auth)"
            )
        return hub

    def _op_auth(self, request) -> Dict[str, Any]:
        hub = self._require_hub()
        if self.txn is not None:
            raise SessionStateError(
                "authenticate before opening a transaction"
            )
        tenant = str(self._param(request, "tenant"))
        principal = str(self._param(request, "principal"))
        proof = self._param(request, "proof", required=False)
        if proof is None:
            self._pending_auth = hub.begin_auth(tenant, principal)
            return {"challenge": self._pending_auth["challenge"]}
        # The pending challenge is consumed by the attempt, success or
        # not: replaying an observed proof finds no challenge and fails.
        pending, self._pending_auth = self._pending_auth, None
        if (
            pending is None
            or pending["tenant"] != tenant
            or pending["principal"] != principal
        ):
            raise AuthFailedError("authentication failed")
        identity = hub.finish_auth(pending, proof)
        if self.identity is not None:
            hub.release(self.identity)
        self.identity = identity
        self.tenant_db = hub.session_db(identity)
        return {
            "authenticated": True,
            "tenant": identity.tenant,
            "principal": identity.principal,
        }

    def _op_tenant_grant(self, request) -> Dict[str, Any]:
        return self._require_hub().grant(
            self.identity,
            str(self._param(request, "principal")),
            str(self._param(request, "scope")),
            str(self._param(request, "right")),
        )

    def _op_tenant_revoke(self, request) -> Dict[str, Any]:
        return self._require_hub().revoke(
            self.identity,
            str(self._param(request, "principal")),
            str(self._param(request, "scope")),
            str(self._param(request, "right")),
        )

    def _op_tenant_meter(self, request) -> Dict[str, Any]:
        return self._require_hub().meter(self.identity.tenant)

    # -- replication -------------------------------------------------------

    def _require_shipper(self):
        shipper = self.server.shipper
        if shipper is None:
            raise ReplicationError(
                "this server does not ship: it is itself a read-only replica"
            )
        return shipper

    def _op_repl_subscribe(self, request) -> Dict[str, Any]:
        shipper = self._require_shipper()
        last_generation = self._param(request, "last_generation", required=False)
        last_seqno = self._param(request, "last_seqno", required=False)
        return shipper.subscribe(
            self.session_id,
            None if last_generation is None else int(last_generation),
            None if last_seqno is None else int(last_seqno),
        )

    def _op_repl_segments(self, request) -> Dict[str, Any]:
        shipper = self._require_shipper()
        segment = int(self._param(request, "segment"))
        offset = int(self._param(request, "offset"))
        length = int(self._param(request, "length"))
        data = shipper.read_segment(self.session_id, segment, offset, length)
        return {
            "segment": segment,
            "offset": offset,
            "data": base64.b64encode(data).decode("ascii"),
        }

    def _op_repl_master(self, request) -> Dict[str, Any]:
        shipper = self._require_shipper()
        payload = shipper.master_blob(self.session_id)
        return {
            "name": payload["name"],
            "data": base64.b64encode(payload["blob"]).decode("ascii"),
        }

    # -- proofs / transparency log ----------------------------------------

    def _proof_response(self, head, proof) -> Dict[str, Any]:
        return {
            "uuid": base64.b64encode(
                self.server.db.chunk_store.db_uuid
            ).decode("ascii"),
            "head": base64.b64encode(head.raw).decode("ascii"),
            "chunk_id": proof.chunk_id,
            "depth": proof.depth,
            "present": proof.present,
            "nodes": [
                base64.b64encode(node).decode("ascii") for node in proof.nodes
            ],
            "payload": (
                base64.b64encode(proof.payload).decode("ascii")
                if proof.payload is not None
                else None
            ),
        }

    def _op_proof_read(self, request) -> Dict[str, Any]:
        service = self.server.proof_service()
        head, proof = service.prove(int(self._param(request, "chunk_id")))
        return self._proof_response(head, proof)

    def _op_proof_absent(self, request) -> Dict[str, Any]:
        # Same walk as proof.read; kept as its own verb so audits can
        # ask "prove you do NOT have this" without ambiguity.
        return self._op_proof_read(request)

    def _op_log_head(self, request) -> Dict[str, Any]:
        service = self.server.proof_service()
        head, length = service.head()
        return {
            "uuid": base64.b64encode(
                self.server.db.chunk_store.db_uuid
            ).decode("ascii"),
            "head": base64.b64encode(head.raw).decode("ascii"),
            "length": length,
        }

    def _op_log_consistency(self, request) -> Dict[str, Any]:
        service = self.server.proof_service()
        entries = service.consistency(
            int(self._param(request, "from_index")),
            int(self._param(request, "to_index")),
        )
        return {
            "uuid": base64.b64encode(
                self.server.db.chunk_store.db_uuid
            ).decode("ascii"),
            "entries": [
                base64.b64encode(entry).decode("ascii") for entry in entries
            ],
        }

    # -- admin -------------------------------------------------------------

    def _op_hello(self, request) -> Dict[str, Any]:
        return self.server.hello_payload()

    def _op_stats(self, request) -> Dict[str, Any]:
        return self.server.stats_payload()


class TdbServer:
    """Threaded socket server over one :class:`~repro.db.Database`."""

    def __init__(
        self,
        db,
        host: str = "127.0.0.1",
        port: int = 0,
        backpressure: Optional[BackpressureConfig] = None,
        max_batch: int = 32,
        max_delay: float = 0.005,
        max_results: int = 1000,
        quorum_seal: bool = True,
        read_only: bool = False,
        txn_gate=None,
        replication_stats=None,
        tenancy=None,
    ) -> None:
        if tenancy is not None:
            if db is not None:
                raise ConfigError(
                    "pass either a database or a TenancyHub, not both: a "
                    "multi-tenant hub serves the registry's databases"
                )
            if read_only:
                raise ConfigError(
                    "a multi-tenant hub cannot run read-only: audit and "
                    "metering write through the tenants' own databases"
                )
        elif db is None:
            raise ConfigError("a server needs a database (or a TenancyHub)")
        self.db = db
        self.tenancy = tenancy
        self.host = host
        self.port = port
        self.backpressure = backpressure or BackpressureConfig()
        self.max_results = max_results
        self.read_only = read_only
        self.txn_gate = txn_gate
        self.replication_stats = replication_stats
        self.admission = AdmissionControl(self.backpressure.max_sessions)
        self.executor = VerbExecutor(max_results=max_results)
        if read_only or tenancy is not None:
            # A replica commits nothing, so there is nothing to batch —
            # and its store would refuse the coordinator's commits anyway.
            # A tenancy hub has no single database to batch or ship:
            # commits go through each tenant's own stack.
            self.coordinator: Optional[GroupCommitCoordinator] = None
            self.shipper = None
        else:
            self.coordinator = db.enable_group_commit(
                max_batch=max_batch,
                max_delay=max_delay,
                max_pending=self.backpressure.max_pending_commits,
                quorum_seal=quorum_seal,
            )
            from repro.replication.shipper import ReplicationShipper

            self.shipper = ReplicationShipper(db.chunk_store)
        self.register_data_model()
        # Built lazily on the first proof/log verb (insecure stores have
        # none to serve) and rebuilt when a replica applier swaps db.
        self._proof_service = None
        self._proof_lock = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._sessions: Dict[int, Session] = {}
        self._sessions_lock = threading.Lock()
        self._next_session_id = 1
        self._stopping = False
        self._started = False
        #: Boot nonce: lets a client distinguish "this server never saw
        #: your commit token" from "the server restarted and lost its
        #: token cache" — the latter makes an unknown token *in doubt*.
        self.epoch = secrets.token_hex(8)
        self.commit_results = CommitResultCache()
        self._parked: Dict[str, _ParkedSession] = {}
        self._parked_lock = threading.Lock()
        self._reaper_thread: Optional[threading.Thread] = None
        self._reaper_wake = threading.Event()
        self._resilience_lock = threading.Lock()
        self._resilience: Dict[str, int] = {
            "sessions_parked": 0,
            "sessions_resumed": 0,
            "resume_failures": 0,
            "grace_expired": 0,
            "request_replays": 0,
            "commit_replays": 0,
            "indoubt_hits": 0,
            "indoubt_misses": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "TdbServer":
        """Bind, listen, and serve in background threads."""
        if self._started:
            return self
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(self.backpressure.max_sessions + 8)
        listener.settimeout(0.25)
        self._listener = listener
        self.host, self.port = listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="tdb-accept", daemon=True
        )
        self._started = True
        self._accept_thread.start()
        if self.backpressure.effective_resume_grace > 0:
            self._reaper_thread = threading.Thread(
                target=self._reaper_loop, name="tdb-park-reaper", daemon=True
            )
            self._reaper_thread.start()
        return self

    @property
    def address(self):
        """``(host, port)`` actually bound (port 0 resolves at start)."""
        return (self.host, self.port)

    def stop(self) -> None:
        """Stop accepting, drain sessions (aborting open transactions)."""
        if not self._started or self._stopping:
            return
        self._stopping = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        with self._sessions_lock:
            sessions = list(self._sessions.values())
        for session in sessions:
            session.stop()
        for session in sessions:
            session.thread.join(timeout=5.0)
        self._reaper_wake.set()
        if self._reaper_thread is not None:
            self._reaper_thread.join(timeout=5.0)
            self._reaper_thread = None
        with self._parked_lock:
            parked = list(self._parked.values())
            self._parked.clear()
        for entry in parked:
            self._discard_parked(entry, expired=False)
        if self.shipper is not None:
            self.shipper.close()
        with self._proof_lock:
            if self._proof_service is not None:
                self._proof_service.close()
                self._proof_service = None
        if self.coordinator is not None:
            self.db.disable_group_commit()
        self._started = False

    def __enter__(self) -> "TdbServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Accept loop
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping:
            try:
                sock, address = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed
            if not self.admission.try_admit():
                self._reject(sock)
                continue
            with self._sessions_lock:
                session_id = self._next_session_id
                self._next_session_id += 1
                session = Session(self, sock, address, session_id)
                self._sessions[session_id] = session
            if self.coordinator is not None:
                self.coordinator.concurrency_hint = self.admission.active
            session.start()

    def _reject(self, sock: socket.socket) -> None:
        try:
            protocol.write_frame(
                sock,
                protocol.error_payload(
                    None,
                    ServerBusyError(
                        f"server full ({self.admission.max_sessions} sessions)"
                    ),
                ),
            )
        except OSError:
            pass
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def _session_finished(self, session: Session) -> None:
        with self._sessions_lock:
            self._sessions.pop(session.session_id, None)
        if self.tenancy is not None and session.identity is not None:
            # A parked session transferred its identity to the parked
            # entry (session.identity is None then); only a session that
            # truly ends releases the tenant lease and quota slot.
            self.tenancy.release(session.identity)
            session.identity = None
            session.tenant_db = None
        if self.shipper is not None:
            self.shipper.release(session.session_id)
        self.admission.release()
        if self.coordinator is not None:
            self.coordinator.concurrency_hint = self.admission.active

    # ------------------------------------------------------------------
    # Session parking (resume grace window)
    # ------------------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        """Bump a resilience counter, mirrored into PerfStats so it also
        shows up under the io/perf section of the stats verb."""
        key = name[4:] if name.startswith("srv_") else name
        with self._resilience_lock:
            self._resilience[key] = self._resilience.get(key, 0) + amount
        if self.db is not None:
            self.db.perf_stats().incr(name, amount)

    def _try_park(self, session: Session) -> bool:
        """Preserve a dropped session's state for the grace window.

        Returns ``False`` (caller aborts as before) when parking is
        disabled, the server is stopping, the session was stopped
        deliberately, there is nothing worth preserving, or the parked
        registry is full.  The admission slot is *released* either way —
        a parked session must not starve live connections.
        """
        grace = self.backpressure.effective_resume_grace
        if grace <= 0 or self._stopping or session._stop:
            return False
        if session.txn is None and session.last_response is None:
            return False
        entry = _ParkedSession(
            token=session.resume_token,
            txn=session.txn,
            mode=session.mode,
            gate_held=session._gate_held,
            last_request=session.last_request,
            last_response=session.last_response,
            requests_served=session.requests_served,
            deadline=time.monotonic() + grace,
            identity=session.identity,
            tenant_db=session.tenant_db,
            txn_bytes=session.txn_bytes,
        )
        with self._parked_lock:
            if self._stopping or len(self._parked) >= self.backpressure.max_sessions:
                return False
            self._parked[session.resume_token] = entry
        # Ownership moved to the parked entry: the session's normal
        # cleanup must not abort the transaction or release the gate —
        # and in tenancy mode the identity's lease rides along too.
        session.txn = None
        session.mode = None
        session._gate_held = False
        session.identity = None
        session.tenant_db = None
        session.txn_bytes = 0
        self._count("srv_sessions_parked")
        self._reaper_wake.set()
        return True

    def _take_parked(self, token: str) -> Optional[_ParkedSession]:
        with self._parked_lock:
            entry = self._parked.pop(token, None)
        if entry is None:
            self._count("srv_resume_failures")
            return None
        self._count("srv_sessions_resumed")
        return entry

    def _discard_parked(self, entry: _ParkedSession, expired: bool) -> None:
        if entry.txn is not None:
            try:
                entry.txn.abort()
            except TDBError:
                pass
        if entry.gate_held and self.txn_gate is not None:
            self.txn_gate.release_shared()
        if self.tenancy is not None and entry.identity is not None:
            self.tenancy.release(entry.identity)
            entry.identity = None
        if expired:
            self._count("srv_grace_expired")

    def _reaper_loop(self) -> None:
        grace = self.backpressure.effective_resume_grace
        interval = max(0.02, min(grace / 4.0, 0.25))
        while not self._stopping:
            self._reaper_wake.wait(interval)
            self._reaper_wake.clear()
            if self._stopping:
                break
            now = time.monotonic()
            expired: List[_ParkedSession] = []
            with self._parked_lock:
                for token, entry in list(self._parked.items()):
                    if entry.deadline <= now:
                        expired.append(self._parked.pop(token))
            for entry in expired:
                self._discard_parked(entry, expired=True)

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    def register_data_model(self) -> None:
        """(Re-)register the remote data model with the current database.

        Called at construction and again by the replica applier after it
        swaps ``self.db`` for a freshly installed image.
        """
        if self.db is not None and self.db.object_store is not None:
            self.db.object_store.registry.register(RemoteRecord)

    def proof_service(self):
        """The (lazily built) proof service for the *current* database.

        A replica applier swaps ``self.db`` wholesale when it installs a
        shipped image; a service anchored to the old store would serve
        proofs for a closed tree, so the accessor rebuilds whenever the
        store identity changed.
        """
        from repro.proofs.service import ProofService

        with self._proof_lock:
            service = self._proof_service
            if service is not None and service.store is not self.db.chunk_store:
                service.close()
                service = None
            if service is None:
                service = ProofService(self.db.chunk_store)
                self._proof_service = service
            return service

    def hello_payload(self) -> Dict[str, Any]:
        """The ``hello`` verb: protocol version + capability negotiation.

        ``absent_verbs`` names protocol verbs this frontend cannot serve
        (they fail with ``FeatureUnavailableError``) so a new client can
        route around a capability gap before tripping over it.
        """
        if self.tenancy is not None:
            features = ["resume", "commit-tokens", "tenancy"]
            absent = list(_PER_STORE_VERBS)
        else:
            features = ["resume", "commit-tokens", "proofs"]
            if self.shipper is not None:
                features.append("replication")
            absent = []
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "server": "tdb",
            "mode": "replica" if self.read_only else "primary",
            "sharded": False,
            "shards": 1,
            "epoch": self.epoch,
            "features": features,
            "absent_verbs": absent,
        }

    def stats_payload(self) -> Dict[str, Any]:
        """The admin ``stats`` verb: one JSON-able view of the stack."""
        if self.tenancy is not None:
            payload: Dict[str, Any] = {
                "chunk_store": None,
                "io": None,
                "group_commit": None,
                "sessions": self.admission.as_dict(),
                "read_only": self.read_only,
                "tenancy": self.tenancy.stats(),
            }
        else:
            chunk = dataclasses.asdict(self.db.stats())
            payload = {
                "chunk_store": chunk,
                "io": self.db.io_stats().as_dict(),
                "group_commit": (
                    self.coordinator.stats_snapshot().as_dict()
                    if self.coordinator is not None
                    else None
                ),
                "sessions": self.admission.as_dict(),
                "read_only": self.read_only,
            }
        with self._resilience_lock:
            resilience: Dict[str, Any] = dict(self._resilience)
        with self._parked_lock:
            resilience["parked_sessions"] = len(self._parked)
        resilience["resume_grace"] = self.backpressure.effective_resume_grace
        resilience["epoch"] = self.epoch
        resilience["commit_tokens"] = self.commit_results.stats_snapshot()
        payload["resilience"] = resilience
        if self.tenancy is not None:
            payload["replication"] = None
            payload["head"] = None
            return payload
        replication: Dict[str, Any] = {"role": "replica" if self.read_only else "primary"}
        if self.shipper is not None:
            replication["shipper"] = self.shipper.stats_snapshot()
        if self.replication_stats is not None:
            replication["applier"] = self.replication_stats()
        payload["replication"] = replication
        head: Optional[Dict[str, Any]] = None
        store = self.db.chunk_store
        log = getattr(store, "transparency", None)
        if log is not None:
            tip = log.tip()
            head = {
                "log_length": len(log),
                "scheme": log.scheme,
                "generation": tip.generation if tip else None,
                "seqno": tip.seqno if tip else None,
                "root": tip.root_digest.hex() if tip else None,
            }
            with self._proof_lock:
                if self._proof_service is not None:
                    head["proofs"] = self._proof_service.stats_snapshot()
        payload["head"] = head
        return payload
