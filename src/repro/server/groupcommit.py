"""Group commit: batch concurrent commits into one chunk-store commit.

A durable chunk-store commit pays three fixed costs regardless of how
much data it carries: one log append (record framing, hash chain, MAC),
one durable sync, and one one-way-counter advance.  With many sessions
committing small transactions those fixed costs dominate — the classic
group-commit amortization shared by enclave-backed authenticated stores
(see PAPERS: *Authenticated Key-Value Stores with Hardware Enclaves*)
applies directly, because under strict 2PL the write sets of
concurrently committing transactions are disjoint and can be merged
into a single atomic batch.

The coordinator implements the leader/follower discipline:

* the first committer to arrive becomes the **leader** of the open
  batch and waits up to ``max_delay`` for followers (skipped when the
  concurrency hint says nobody else is connected),
* followers merge their write sets into the open batch and block,
* once the batch is full (``max_batch``) or the window closes, the
  leader seals it, performs **one** ``ChunkStore.commit`` for the whole
  batch, and wakes every member.

Atomicity across the batch is inherited from the chunk store: the
merged batch is a single commit record, and recovery applies a commit
record all-or-nothing (a torn record discards the whole batch).  If the
merged commit fails with a :class:`~repro.errors.TDBError` and the
batch has several members, the leader retries each member individually
so one session's invalid write set cannot poison its neighbours'
commits; non-TDB failures (injected crashes, real power loss) propagate
to every member unchanged.

Admission control: at most ``max_pending`` commit requests may be
queued or in flight; beyond that :class:`~repro.errors.ServerBusyError`
(transient, retryable) is raised instead of growing the queue without
bound.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from repro.errors import ServerBusyError, TDBError

__all__ = ["GroupCommitCoordinator", "GroupCommitStats"]


@dataclass
class GroupCommitStats:
    """Counters of the coordinator's batching behaviour.

    ``requests`` counts transaction commits submitted; ``batches``
    counts chunk-store commits performed.  Their difference is exactly
    the number of log appends, syncs, and counter advances the batching
    saved.  ``batch_sizes`` is a histogram (size -> count).
    """

    requests: int = 0
    batches: int = 0
    failed_batches: int = 0
    individual_retries: int = 0
    rejected: int = 0
    quorum_seals: int = 0
    max_batch_size: int = 0
    batch_sizes: Dict[int, int] = field(default_factory=dict)

    @property
    def mean_batch_size(self) -> float:
        if not self.batches:
            return 0.0
        committed = sum(size * count for size, count in self.batch_sizes.items())
        return committed / self.batches

    def as_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "failed_batches": self.failed_batches,
            "individual_retries": self.individual_retries,
            "rejected": self.rejected,
            "quorum_seals": self.quorum_seals,
            "max_batch_size": self.max_batch_size,
            "mean_batch_size": round(self.mean_batch_size, 3),
            "batch_sizes": {str(k): v for k, v in sorted(self.batch_sizes.items())},
        }


class _Member:
    """One transaction's commit request inside a batch."""

    __slots__ = ("writes", "deallocs", "durable", "error")

    def __init__(self, writes, deallocs, durable) -> None:
        self.writes = dict(writes)
        self.deallocs = list(deallocs)
        self.durable = durable
        self.error: Optional[BaseException] = None


class _Batch:
    """A forming (then flushing) group of commit requests."""

    __slots__ = ("members", "sealed", "done")

    def __init__(self) -> None:
        self.members: List[_Member] = []
        self.sealed = False
        self.done = threading.Event()


class GroupCommitCoordinator:
    """Merges concurrent commit requests into shared chunk-store commits.

    Drop-in for :meth:`ChunkStore.commit` (install as an object store's
    ``commit_sink``); single-threaded callers pass straight through with
    no added latency when :attr:`concurrency_hint` is below 2.
    """

    def __init__(
        self,
        chunk_store,
        max_batch: int = 32,
        max_delay: float = 0.005,
        max_pending: int = 256,
        quorum_seal: bool = True,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_delay < 0:
            raise ValueError("max_delay cannot be negative")
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        self.chunk_store = chunk_store
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.max_pending = max_pending
        #: Seal a batch as soon as every live session has joined it
        #: instead of waiting out ``max_delay``.  With N active sessions
        #: and N < ``max_batch`` the batch can never grow past N, so
        #: once all N are aboard further waiting is pure latency — at
        #: 8 clients that dead wait cost ~40% of throughput.
        self.quorum_seal = quorum_seal
        #: How many potential committers exist right now (the server
        #: keeps this at its active-session count).  Below 2 the leader
        #: skips the batching window — group commit never taxes a lone
        #: client with ``max_delay`` of pure latency.
        self.concurrency_hint = 0
        self.stats = GroupCommitStats()
        self._mutex = threading.Lock()
        self._filled = threading.Condition(self._mutex)
        self._open: Optional[_Batch] = None
        self._pending = 0
        self._closed = False

    # ------------------------------------------------------------------
    # The ChunkStore.commit-compatible entry point
    # ------------------------------------------------------------------

    def commit(
        self,
        writes: Mapping[int, bytes],
        deallocs: Iterable[int] = (),
        durable: bool = True,
    ) -> None:
        """Commit atomically, sharing the flush with concurrent callers.

        Blocks until the batch containing this request has been
        committed (and synced, for durable batches).  Raises whatever
        the underlying commit raised for *this* request.
        """
        member = _Member(writes, deallocs, durable)
        if not member.writes and not member.deallocs:
            return
        with self._mutex:
            if self._closed:
                raise ServerBusyError("group-commit coordinator is closed")
            if self._pending >= self.max_pending:
                self.stats.rejected += 1
                raise ServerBusyError(
                    f"commit queue full ({self.max_pending} pending); retry"
                )
            self._pending += 1
            self.stats.requests += 1
            batch = self._open
            leader = batch is None
            if leader:
                batch = _Batch()
                self._open = batch
            batch.members.append(member)
            if len(batch.members) >= self._seal_threshold():
                batch.sealed = True
                self._open = None
                if len(batch.members) < self.max_batch:
                    self.stats.quorum_seals += 1
                self._filled.notify_all()
        try:
            if leader:
                self._lead(batch)
            else:
                batch.done.wait()
        finally:
            with self._mutex:
                self._pending -= 1
        if member.error is not None:
            raise member.error

    def _seal_threshold(self) -> int:
        """Batch size that seals immediately (caller holds ``_mutex``).

        Without quorum sealing a leader whose batch never reaches
        ``max_batch`` waits out the whole ``max_delay`` window — exactly
        what happened at 8 clients against the default ``max_batch=32``:
        every batch of 8 still slept the full 5 ms.  The session count
        bounds how many committers *can* join, so once that many are in
        the batch there is nobody left to wait for.
        """
        if not self.quorum_seal or self.concurrency_hint < 2:
            return self.max_batch
        return min(self.max_batch, self.concurrency_hint)

    # ------------------------------------------------------------------
    # Leader path
    # ------------------------------------------------------------------

    def _lead(self, batch: _Batch) -> None:
        deadline = time.monotonic() + self.max_delay
        with self._mutex:
            if self.concurrency_hint >= 2:
                while not batch.sealed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._filled.wait(remaining)
            if not batch.sealed:
                batch.sealed = True
                if self._open is batch:
                    self._open = None
        try:
            self._flush(batch)
        finally:
            batch.done.set()

    def _flush(self, batch: _Batch) -> None:
        writes: Dict[int, bytes] = {}
        deallocs: List[int] = []
        durable = False
        for member in batch.members:
            writes.update(member.writes)
            deallocs.extend(member.deallocs)
            durable = durable or member.durable
        size = len(batch.members)
        try:
            self.chunk_store.commit(writes, deallocs, durable=durable)
        except TDBError as exc:
            self._record(size, failed=True)
            if size == 1:
                batch.members[0].error = exc
                return
            # One member's invalid write set fails the merged commit for
            # everyone; fall back to individual commits so only the
            # guilty request errors.  The chunk store rejected the batch
            # before writing anything, so no partial state exists.
            for member in batch.members:
                try:
                    self.chunk_store.commit(
                        member.writes, member.deallocs, durable=member.durable
                    )
                    with self._mutex:
                        self.stats.individual_retries += 1
                except TDBError as member_exc:
                    member.error = member_exc
            return
        except BaseException as exc:
            # Crash-like failures (injected or real): every member sees
            # the same outcome; recovery decides what survived.
            self._record(size, failed=True)
            for member in batch.members:
                member.error = exc
            return
        self._record(size, failed=False)

    def _record(self, size: int, failed: bool) -> None:
        with self._mutex:
            if failed:
                self.stats.failed_batches += 1
                return
            self.stats.batches += 1
            self.stats.max_batch_size = max(self.stats.max_batch_size, size)
            self.stats.batch_sizes[size] = self.stats.batch_sizes.get(size, 0) + 1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Refuse new commits; in-flight batches finish normally."""
        with self._mutex:
            self._closed = True

    def stats_snapshot(self) -> GroupCommitStats:
        with self._mutex:
            copy = GroupCommitStats(
                requests=self.stats.requests,
                batches=self.stats.batches,
                failed_batches=self.stats.failed_batches,
                individual_retries=self.stats.individual_retries,
                rejected=self.stats.rejected,
                quorum_seals=self.stats.quorum_seals,
                max_batch_size=self.stats.max_batch_size,
                batch_sizes=dict(self.stats.batch_sizes),
            )
        return copy
