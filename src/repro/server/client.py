"""Remote TDB client: context-managed transactions over the wire protocol.

A :class:`TdbClient` speaks :mod:`repro.server.protocol` to one
:class:`~repro.server.server.TdbServer`.  The API mirrors the embedded
:class:`~repro.db.Database` surface so applications can switch between
embedded and remote use::

    with TdbClient(host, port) as client:
        with client.transaction() as txn:
            oid = txn.put({"balance": 10})
            txn.bind("account", oid)

Error handling reuses the :class:`~repro.errors.TransientStoreError`
taxonomy: connection failures and transient server rejections
(:class:`~repro.errors.ServerBusyError`, admission refusals) surface as
transient errors, and :meth:`TdbClient.run_transaction` retries them a
bounded number of times — the same discipline the chunk store applies
to its own flaky untrusted store.  Backoff between retries follows a
:class:`~repro.platform.resilient.RetryPolicy`: capped exponential with
deterministic CRC32 jitter, so sweeps replay identically.  Non-transient
errors (lock timeouts, tamper detection, schema violations) are
re-raised as the exception class the server named and are never retried
silently.

Exactly-once semantics over a lossy network:

* ``begin`` hands back a session resume token; when the connection
  drops mid-transaction the client reconnects, ``session.resume``\\ s,
  and re-sends the in-flight request **with its original id** — the
  server replays the cached response instead of executing twice,
* every commit carries a fresh commit token; if the connection dies
  during ``commit`` (and resume cannot settle it) the client polls
  ``commit.result`` for the authoritative outcome.  ``unknown`` from
  the *same* server epoch means the commit never ran (safe to retry);
  ``unknown`` after an epoch change means the server restarted and the
  outcome must be reconciled by the application —
  :class:`~repro.errors.CommitInDoubtError`, deliberately not
  retryable.

One client owns one socket and one session; the session scopes at most
one open transaction, enforced on both ends.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
import socket
import time
import zlib
from typing import Any, Callable, Dict, List, Optional

from repro.errors import (
    AuthRequiredError,
    CommitInDoubtError,
    LockTimeoutError,
    ProtocolError,
    ServerBusyError,
    ServerError,
    SessionStateError,
    TDBError,
    TransientStoreError,
)
from repro.platform.resilient import RetryPolicy
from repro.server import protocol

__all__ = ["TdbClient", "RemoteTransaction"]

#: How many stale (id-mismatched) responses a client skips before it
#: declares the stream corrupt.  Stale responses are the residue of a
#: duplicated request frame: the server replays its cached response for
#: the duplicate, leaving one extra response in the pipe.
_MAX_STALE_RESPONSES = 8


class _TransportLost(Exception):
    """Internal: the request/response exchange died at the transport
    level (as opposed to the server answering with an error).  Carries
    the public exception to surface if recovery fails."""

    def __init__(self, error: Exception) -> None:
        super().__init__(str(error))
        self.error = error


class TdbClient:
    """A connection to a :class:`~repro.server.server.TdbServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        connect_retries: int = 3,
        retry_delay: float = 0.05,
        timeout: float = 30.0,
        retry_policy: Optional[RetryPolicy] = None,
        resume_sessions: bool = True,
        resolve_timeout: float = 5.0,
    ) -> None:
        if connect_retries < 0:
            raise ValueError("connect_retries cannot be negative")
        if resolve_timeout <= 0:
            raise ValueError("resolve_timeout must be positive")
        self.host = host
        self.port = port
        self.connect_retries = connect_retries
        self.retry_delay = retry_delay
        self.timeout = timeout
        self.resume_sessions = resume_sessions
        self.resolve_timeout = resolve_timeout
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=max(2, connect_retries + 1),
            base_delay=retry_delay,
            max_delay=1.0,
            jitter=0.25,
            seed=zlib.crc32(f"{host}:{port}".encode("utf-8")),
        )
        self._sock: Optional[socket.socket] = None
        self._next_id = 1
        self._in_txn = False
        self._closed = False
        self._ever_connected = False
        self._session_token: Optional[str] = None
        self._session_epoch: Optional[str] = None
        self._server_info: Optional[Dict[str, Any]] = None
        self._op_counter = 0
        #: Client-side resilience counters (mirrors the server's view).
        self.counters: Dict[str, int] = {
            "reconnects": 0,
            "session_resumes": 0,
            "resume_failures": 0,
            "indoubt_queries": 0,
            "indoubt_committed": 0,
            "indoubt_failed": 0,
            "stale_responses_skipped": 0,
            "reauths": 0,
        }
        #: Multi-tenant hub credentials, remembered by authenticate();
        #: used to transparently re-authenticate after a reconnect whose
        #: session resume did not carry the identity over.
        self._credentials: Optional[tuple] = None
        self._reauthing = False

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------

    def connect(self) -> "TdbClient":
        """Connect (capped exponential backoff on transient errors)."""
        if self._sock is not None:
            return self
        if self._closed:
            raise ServerError("client is closed")
        attempts = self.connect_retries + 1
        self._op_counter += 1
        op_id = self._op_counter
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                self._sock = sock
                if self._ever_connected:
                    self.counters["reconnects"] += 1
                self._ever_connected = True
                return self
            except OSError as exc:
                last_error = exc
                if attempt + 1 < attempts:
                    time.sleep(self.retry_policy.delay(attempt + 1, op_id))
        raise TransientStoreError(
            f"cannot connect to {self.host}:{self.port} after {attempts} "
            f"attempts: {last_error}"
        ) from last_error

    def close(self) -> None:
        """Close the connection.  Idempotent."""
        self._closed = True
        self._drop_connection()

    def _drop_connection(self) -> None:
        sock, self._sock = self._sock, None
        self._in_txn = False
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "TdbClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Multi-tenant authentication
    # ------------------------------------------------------------------

    def authenticate(
        self, tenant: str, principal: str, secret: str
    ) -> Dict[str, Any]:
        """Bind this session to ``(tenant, principal)`` on a hub.

        Runs the two-phase challenge–response: fetch a single-use
        challenge, answer with ``HMAC-SHA256(secret, challenge)``.
        ``secret`` is the hex string ``tenant create`` / ``tenant
        grant`` printed.  Credentials are remembered so a reconnect that
        could not resume its session re-authenticates transparently.
        """
        secret_bytes = bytes.fromhex(secret)
        self._credentials = (tenant, principal, secret_bytes)
        return self._authenticate_now()

    def _authenticate_now(self) -> Dict[str, Any]:
        tenant, principal, secret_bytes = self._credentials
        challenge = self._call_once(
            "auth", tenant=tenant, principal=principal
        )["challenge"]
        proof = hmac.new(
            secret_bytes, bytes.fromhex(challenge), hashlib.sha256
        ).hexdigest()
        return self._call_once(
            "auth", tenant=tenant, principal=principal, proof=proof
        )

    # ------------------------------------------------------------------
    # The RPC core
    # ------------------------------------------------------------------

    def call(self, op: str, **params: Any) -> Dict[str, Any]:
        """Send one request, wait for its response, unwrap errors.

        Connection-level failures surface as
        :class:`~repro.errors.TransientStoreError` — but first, if the
        client holds a session resume token, it reconnects, resumes the
        parked session, and re-sends the request with its original id
        (the server replays its cached response if the request already
        executed, so nothing runs twice).  Only when resume is disabled,
        impossible, or refused does the transient error escape; the
        connection is dropped and an open transaction not covered by a
        resume is gone — retrying is then only safe from a transaction
        boundary, which is what :meth:`run_transaction` implements.

        On a multi-tenant hub, a session that lost its identity (the
        resume grace window expired) answers with ``AuthRequiredError``;
        when :meth:`authenticate` stored credentials the client re-runs
        the challenge-response once and retries the request.
        """
        try:
            return self._call_once(op, **params)
        except AuthRequiredError:
            if self._credentials is None or self._reauthing or op == "auth":
                raise
            self._reauthing = True
            try:
                self._authenticate_now()
            finally:
                self._reauthing = False
            self.counters["reauths"] += 1
            return self._call_once(op, **params)

    def _call_once(self, op: str, **params: Any) -> Dict[str, Any]:
        request = {"id": self._next_id, "op": op}
        request.update(params)
        self._next_id += 1
        try:
            return self._roundtrip(request)
        except _TransportLost as lost:
            recovered = self._resume_and_replay(request)
            if recovered is not None:
                return recovered[0]
            raise lost.error from lost

    def _roundtrip(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response exchange on the current connection.

        Transport failures raise :class:`_TransportLost` (internal);
        server-reported errors raise the reconstructed exception class.
        """
        op = request["op"]
        self.connect()
        try:
            protocol.write_frame(self._sock, request)
            response = self._read_matching(request["id"])
        except socket.timeout as exc:
            self._drop_connection()
            raise _TransportLost(
                TransientStoreError(
                    f"server did not answer {op!r} within {self.timeout}s"
                )
            ) from exc
        except ProtocolError as exc:
            self._drop_connection()
            raise _TransportLost(exc) from exc
        except OSError as exc:
            self._drop_connection()
            raise _TransportLost(
                TransientStoreError(f"connection lost during {op!r}: {exc}")
            ) from exc
        if response is None:
            self._drop_connection()
            raise _TransportLost(
                TransientStoreError(f"server closed the connection on {op!r}")
            )
        if not response.get("ok") and response.get("id") is None:
            # A session-level rejection (admission control answers before
            # reading any request, so it cannot echo an id).
            self._drop_connection()
            raise protocol.exception_from_payload(response)
        if response.get("ok"):
            result = response.get("result")
            return result if isinstance(result, dict) else {}
        raise protocol.exception_from_payload(response)

    def _read_matching(self, want: Any) -> Optional[Dict[str, Any]]:
        """Read responses until one matches the request id.

        A duplicated request frame (hostile network) makes the server
        emit one extra response; skipping id-mismatched responses keeps
        the stream in sync instead of failing every later call.
        """
        for _ in range(_MAX_STALE_RESPONSES + 1):
            response = protocol.read_frame(self._sock)
            if response is None:
                return None
            if response.get("id") == want or response.get("id") is None:
                return response
            self.counters["stale_responses_skipped"] += 1
        raise ProtocolError(
            f"no response matching request id {want!r} within "
            f"{_MAX_STALE_RESPONSES} frames"
        )

    def _resume_and_replay(
        self, request: Dict[str, Any]
    ) -> Optional[tuple]:
        """Reconnect, resume the parked session, re-send ``request``.

        Returns a 1-tuple with the replayed result, or ``None`` when the
        session cannot be resumed (caller surfaces the original error).
        A legitimate server-side error from the replayed request
        propagates — the exchange itself succeeded.
        """
        if (
            not self.resume_sessions
            or self._closed
            or self._session_token is None
            or request["op"] in ("begin", "session.resume")
        ):
            return None
        token = self._session_token
        self._op_counter += 1
        op_id = self._op_counter
        unknown_token_retries = 0
        for attempt in range(1, 4):
            resume_request = {
                "id": self._next_id,
                "op": "session.resume",
                "session": token,
            }
            self._next_id += 1
            try:
                self._roundtrip(resume_request)
            except _TransportLost:
                time.sleep(
                    self.retry_policy.delay(
                        min(attempt, self.retry_policy.max_attempts), op_id
                    )
                )
                continue
            except SessionStateError:
                # Unknown token — but possibly only *not yet parked*: the
                # server parks a session when the dead socket surfaces on
                # its side, and a fast reconnect can outrun that.  Give
                # it one backoff tick before declaring the grace window
                # closed.
                unknown_token_retries += 1
                if unknown_token_retries <= 1:
                    time.sleep(
                        self.retry_policy.delay(
                            min(attempt, self.retry_policy.max_attempts), op_id
                        )
                    )
                    continue
                self._session_token = None
                self.counters["resume_failures"] += 1
                return None
            self.counters["session_resumes"] += 1
            try:
                return (self._roundtrip(request),)
            except _TransportLost:
                # Dropped again mid-replay; go around and resume again.
                continue
        self.counters["resume_failures"] += 1
        return None

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def transaction(self, mode: str = "object") -> "RemoteTransaction":
        """Open a remote transaction as a context manager.

        Commits on clean exit, aborts on exception — the same contract
        as the embedded :meth:`~repro.db.Database.transaction`.
        """
        return RemoteTransaction(self, mode)

    def run_transaction(
        self,
        fn: Callable[["RemoteTransaction"], Any],
        mode: str = "object",
        attempts: int = 5,
        retry_delay: Optional[float] = None,
    ) -> Any:
        """Run ``fn(txn)`` in a transaction, retrying transient failures.

        Retries cover connection loss, :class:`ServerBusyError`
        admission rejections, and lock-timeout aborts — each attempt is
        a fresh transaction, so ``fn`` must be safe to re-run.  Tokened
        commits make "connection died during commit" safe to classify:
        a commit whose outcome resolves to *committed* returns normally,
        one that provably never ran retries, and an irresolvable one
        raises :class:`~repro.errors.CommitInDoubtError` — which is
        **not** retried, because re-running could double-apply.  Backoff
        between attempts is capped exponential with deterministic
        jitter; the last error is re-raised once the budget is spent.
        """
        if attempts < 1:
            raise ValueError("attempts must be at least 1")
        policy = self.retry_policy
        if retry_delay is not None:
            # Legacy knob: honored as the backoff base, still capped.
            policy = RetryPolicy(
                max_attempts=policy.max_attempts,
                base_delay=retry_delay,
                max_delay=policy.max_delay,
                jitter=policy.jitter,
                seed=policy.seed,
            )
        self._op_counter += 1
        op_id = self._op_counter
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            try:
                with self.transaction(mode) as txn:
                    return fn(txn)
            except TDBError as exc:
                retryable = isinstance(
                    exc, (TransientStoreError, ServerBusyError, LockTimeoutError)
                ) and not isinstance(exc, CommitInDoubtError)
                if not retryable:
                    raise
                last_error = exc
                if attempt + 1 < attempts:
                    time.sleep(
                        policy.delay(
                            min(attempt + 1, policy.max_attempts), op_id
                        )
                    )
        raise last_error

    # ------------------------------------------------------------------
    # Commit-token resolution
    # ------------------------------------------------------------------

    def resolve_commit(self, token: str) -> Dict[str, Any]:
        """Query the authoritative outcome of a tokened commit."""
        self.counters["indoubt_queries"] += 1
        return self.call("commit.result", token=token)

    def _settle_commit(
        self, token: str, epoch: Optional[str], cause: Exception
    ) -> Dict[str, Any]:
        """The connection died during a tokened commit: find the truth.

        Polls ``commit.result`` until the resolution deadline.  Returns
        the commit result on *committed*; re-raises the server's
        recorded error on *failed*; raises
        :class:`~repro.errors.TransientStoreError` when the commit
        provably never ran (same server epoch, token unknown — safe to
        retry the transaction); raises
        :class:`~repro.errors.CommitInDoubtError` when the server
        restarted (epoch changed, token cache lost) or stayed
        unreachable or *pending* past the deadline.
        """
        deadline = time.monotonic() + self.resolve_timeout
        self._op_counter += 1
        op_id = self._op_counter
        attempt = 0
        while True:
            attempt += 1
            try:
                payload = self.resolve_commit(token)
            except (TransientStoreError, ProtocolError) as exc:
                if time.monotonic() >= deadline:
                    raise CommitInDoubtError(
                        f"commit outcome unknown: server unreachable within "
                        f"{self.resolve_timeout}s of the connection dying "
                        f"({cause})"
                    ) from exc
                time.sleep(
                    self.retry_policy.delay(
                        min(attempt, self.retry_policy.max_attempts), op_id
                    )
                )
                continue
            status = payload.get("status")
            if status == "committed":
                self.counters["indoubt_committed"] += 1
                return {"durable": payload.get("durable", True), "resolved": True}
            if status == "failed":
                self.counters["indoubt_failed"] += 1
                raise protocol.exception_from_payload(
                    {
                        "error": payload.get("error", "ServerError"),
                        "message": payload.get("message", "commit failed"),
                        "transient": bool(payload.get("transient")),
                    }
                )
            if status == "unknown":
                if epoch is not None and payload.get("epoch") != epoch:
                    raise CommitInDoubtError(
                        "server restarted and lost its commit-token cache; "
                        "reconcile against database state before retrying"
                    ) from cause
                raise TransientStoreError(
                    "commit never reached the server (token unknown, same "
                    "server epoch); safe to retry the transaction"
                ) from cause
            # status == "pending": the commit is still in flight.
            if time.monotonic() >= deadline:
                raise CommitInDoubtError(
                    f"commit still in flight after {self.resolve_timeout}s; "
                    "query commit.result again or reconcile state"
                ) from cause
            time.sleep(
                self.retry_policy.delay(
                    min(attempt, self.retry_policy.max_attempts), op_id
                )
            )

    # ------------------------------------------------------------------
    # Admin
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """The server's composite stats payload (admin verb)."""
        return self.call("stats")

    def hello(self) -> Dict[str, Any]:
        """Negotiate protocol version and capabilities (cached).

        Version-1 servers predate the ``hello`` verb and answer it with
        a :class:`~repro.errors.ProtocolError`; that is mapped to a
        synthetic ``{"protocol": 1}`` payload so new clients work
        against old servers without special-casing.
        """
        if self._server_info is None:
            try:
                self._server_info = self.call("hello")
            except ProtocolError:
                self._server_info = {
                    "protocol": 1,
                    "server": "tdb",
                    "sharded": False,
                    "shards": 1,
                    "features": [],
                }
        return self._server_info


class RemoteTransaction:
    """One open transaction on the server, driven from the client."""

    def __init__(self, client: TdbClient, mode: str) -> None:
        self.client = client
        self.mode = mode
        self._open = False

    # -- lifecycle ---------------------------------------------------------

    def begin(self) -> "RemoteTransaction":
        if self._open:
            raise SessionStateError("transaction already begun")
        result = self.client.call("begin", mode=self.mode)
        self.client._session_token = result.get("session")
        self.client._session_epoch = result.get("epoch")
        self.client._in_txn = True
        self._open = True
        return self

    def commit(self, durable: bool = True) -> None:
        """Commit with a fresh commit token: exactly-once over the wire.

        If the connection dies mid-commit (and a session resume cannot
        settle it), the client polls ``commit.result`` with the token —
        so a durably committed transaction is reported committed, a
        failed one re-raises the recorded error, and one that never ran
        surfaces as a retryable transient error.
        """
        if not self._open:
            raise SessionStateError("no open transaction to commit")
        token = secrets.token_hex(16)
        epoch = self.client._session_epoch
        self._open = False
        self.client._in_txn = False
        try:
            self.client.call("commit", durable=durable, token=token)
        except (TransientStoreError, ProtocolError) as exc:
            self.client._settle_commit(token, epoch, exc)

    def abort(self) -> None:
        self._finish("abort")

    def _finish(self, op: str, **params: Any) -> None:
        if not self._open:
            raise SessionStateError(f"no open transaction to {op}")
        self._open = False
        self.client._in_txn = False
        self.client.call(op, **params)

    def __enter__(self) -> "RemoteTransaction":
        return self.begin()

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self._open:
            return
        if exc_type is None:
            self.commit()
            return
        try:
            self.abort()
        except TDBError:
            pass  # the original exception matters more

    # -- object verbs ------------------------------------------------------

    def put(self, value: Any, oid: Optional[int] = None) -> int:
        """Insert (``oid=None``) or overwrite a JSON value; returns oid."""
        return self.client.call("obj.put", oid=oid, value=value)["oid"]

    def get(self, oid: int) -> Any:
        return self.client.call("obj.get", oid=oid)["value"]

    def remove(self, oid: int) -> None:
        self.client.call("obj.remove", oid=oid)

    def bind(self, name: str, oid: int) -> None:
        self.client.call("name.bind", name=name, oid=oid)

    def lookup(self, name: str) -> Optional[int]:
        return self.client.call("name.lookup", name=name)["oid"]

    # -- collection verbs --------------------------------------------------

    def create_collection(
        self,
        name: str,
        field: str,
        kind: str = "btree",
        unique: bool = False,
    ) -> None:
        self.client.call(
            "col.create", name=name, field=field, kind=kind, unique=unique
        )

    def insert(self, collection: str, value: Dict[str, Any]) -> int:
        return self.client.call("col.insert", name=collection, value=value)["oid"]

    def get_match(
        self, collection: str, key: Any, field: Optional[str] = None
    ) -> List[Any]:
        return self.client.call(
            "col.get", name=collection, key=key, field=field
        )["values"]

    def remove_match(
        self, collection: str, key: Any, field: Optional[str] = None
    ) -> int:
        return self.client.call(
            "col.remove", name=collection, key=key, field=field
        )["removed"]

    def iterate(
        self,
        collection: str,
        field: Optional[str] = None,
        lo: Any = None,
        hi: Any = None,
        limit: Optional[int] = None,
    ) -> List[Any]:
        params: Dict[str, Any] = {"name": collection, "field": field}
        if lo is not None:
            params["lo"] = lo
        if hi is not None:
            params["hi"] = hi
        if limit is not None:
            params["limit"] = limit
        return self.client.call("col.iterate", **params)["values"]
