"""Remote TDB client: context-managed transactions over the wire protocol.

A :class:`TdbClient` speaks :mod:`repro.server.protocol` to one
:class:`~repro.server.server.TdbServer`.  The API mirrors the embedded
:class:`~repro.db.Database` surface so applications can switch between
embedded and remote use::

    with TdbClient(host, port) as client:
        with client.transaction() as txn:
            oid = txn.put({"balance": 10})
            txn.bind("account", oid)

Error handling reuses the :class:`~repro.errors.TransientStoreError`
taxonomy: connection failures and transient server rejections
(:class:`~repro.errors.ServerBusyError`, admission refusals) surface as
transient errors, and :meth:`TdbClient.run_transaction` retries them a
bounded number of times — the same discipline the chunk store applies
to its own flaky untrusted store.  Non-transient errors (lock timeouts,
tamper detection, schema violations) are re-raised as the exception
class the server named and are never retried silently.

One client owns one socket and one session; the session scopes at most
one open transaction, enforced on both ends.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Callable, Dict, List, Optional

from repro.errors import (
    LockTimeoutError,
    ProtocolError,
    ServerBusyError,
    ServerError,
    SessionStateError,
    TDBError,
    TransientStoreError,
)
from repro.server import protocol

__all__ = ["TdbClient", "RemoteTransaction"]


class TdbClient:
    """A connection to a :class:`~repro.server.server.TdbServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        connect_retries: int = 3,
        retry_delay: float = 0.05,
        timeout: float = 30.0,
    ) -> None:
        if connect_retries < 0:
            raise ValueError("connect_retries cannot be negative")
        self.host = host
        self.port = port
        self.connect_retries = connect_retries
        self.retry_delay = retry_delay
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._next_id = 1
        self._in_txn = False
        self._closed = False

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------

    def connect(self) -> "TdbClient":
        """Connect (with bounded retries on transient socket errors)."""
        if self._sock is not None:
            return self
        if self._closed:
            raise ServerError("client is closed")
        attempts = self.connect_retries + 1
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                self._sock = sock
                return self
            except OSError as exc:
                last_error = exc
                if attempt + 1 < attempts:
                    time.sleep(self.retry_delay * (attempt + 1))
        raise TransientStoreError(
            f"cannot connect to {self.host}:{self.port} after {attempts} "
            f"attempts: {last_error}"
        ) from last_error

    def close(self) -> None:
        """Close the connection.  Idempotent."""
        self._closed = True
        self._drop_connection()

    def _drop_connection(self) -> None:
        sock, self._sock = self._sock, None
        self._in_txn = False
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "TdbClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # The RPC core
    # ------------------------------------------------------------------

    def call(self, op: str, **params: Any) -> Dict[str, Any]:
        """Send one request, wait for its response, unwrap errors.

        Connection-level failures surface as
        :class:`~repro.errors.TransientStoreError`; the connection is
        dropped (a fresh :meth:`connect` happens on the next call).  An
        open transaction is gone with the connection — the server aborts
        it — so retrying is only safe from a transaction boundary, which
        is what :meth:`run_transaction` implements.
        """
        self.connect()
        request = {"id": self._next_id, "op": op}
        request.update(params)
        self._next_id += 1
        try:
            protocol.write_frame(self._sock, request)
            response = protocol.read_frame(self._sock)
        except socket.timeout as exc:
            self._drop_connection()
            raise TransientStoreError(
                f"server did not answer {op!r} within {self.timeout}s"
            ) from exc
        except ProtocolError:
            self._drop_connection()
            raise
        except OSError as exc:
            self._drop_connection()
            raise TransientStoreError(
                f"connection lost during {op!r}: {exc}"
            ) from exc
        if response is None:
            self._drop_connection()
            raise TransientStoreError(f"server closed the connection on {op!r}")
        if not response.get("ok") and response.get("id") is None:
            # A session-level rejection (admission control answers before
            # reading any request, so it cannot echo an id).
            self._drop_connection()
            raise protocol.exception_from_payload(response)
        if response.get("id") != request["id"]:
            self._drop_connection()
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match request "
                f"id {request['id']!r}"
            )
        if response.get("ok"):
            result = response.get("result")
            return result if isinstance(result, dict) else {}
        raise protocol.exception_from_payload(response)

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def transaction(self, mode: str = "object") -> "RemoteTransaction":
        """Open a remote transaction as a context manager.

        Commits on clean exit, aborts on exception — the same contract
        as the embedded :meth:`~repro.db.Database.transaction`.
        """
        return RemoteTransaction(self, mode)

    def run_transaction(
        self,
        fn: Callable[["RemoteTransaction"], Any],
        mode: str = "object",
        attempts: int = 5,
        retry_delay: float = 0.02,
    ) -> Any:
        """Run ``fn(txn)`` in a transaction, retrying transient failures.

        Retries cover connection loss, :class:`ServerBusyError`
        admission rejections, and lock-timeout aborts — each attempt is
        a fresh transaction, so ``fn`` must be safe to re-run.  The last
        error is re-raised once the attempt budget is exhausted.
        """
        if attempts < 1:
            raise ValueError("attempts must be at least 1")
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            try:
                with self.transaction(mode) as txn:
                    return fn(txn)
            except TDBError as exc:
                retryable = isinstance(
                    exc, (TransientStoreError, ServerBusyError, LockTimeoutError)
                )
                if not retryable:
                    raise
                last_error = exc
                if attempt + 1 < attempts:
                    time.sleep(retry_delay * (attempt + 1))
        raise last_error

    # ------------------------------------------------------------------
    # Admin
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """The server's composite stats payload (admin verb)."""
        return self.call("stats")


class RemoteTransaction:
    """One open transaction on the server, driven from the client."""

    def __init__(self, client: TdbClient, mode: str) -> None:
        self.client = client
        self.mode = mode
        self._open = False

    # -- lifecycle ---------------------------------------------------------

    def begin(self) -> "RemoteTransaction":
        if self._open:
            raise SessionStateError("transaction already begun")
        self.client.call("begin", mode=self.mode)
        self.client._in_txn = True
        self._open = True
        return self

    def commit(self, durable: bool = True) -> None:
        self._finish("commit", durable=durable)

    def abort(self) -> None:
        self._finish("abort")

    def _finish(self, op: str, **params: Any) -> None:
        if not self._open:
            raise SessionStateError(f"no open transaction to {op}")
        self._open = False
        self.client._in_txn = False
        self.client.call(op, **params)

    def __enter__(self) -> "RemoteTransaction":
        return self.begin()

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self._open:
            return
        if exc_type is None:
            self.commit()
            return
        try:
            self.abort()
        except TDBError:
            pass  # the original exception matters more

    # -- object verbs ------------------------------------------------------

    def put(self, value: Any, oid: Optional[int] = None) -> int:
        """Insert (``oid=None``) or overwrite a JSON value; returns oid."""
        return self.client.call("obj.put", oid=oid, value=value)["oid"]

    def get(self, oid: int) -> Any:
        return self.client.call("obj.get", oid=oid)["value"]

    def remove(self, oid: int) -> None:
        self.client.call("obj.remove", oid=oid)

    def bind(self, name: str, oid: int) -> None:
        self.client.call("name.bind", name=name, oid=oid)

    def lookup(self, name: str) -> Optional[int]:
        return self.client.call("name.lookup", name=name)["oid"]

    # -- collection verbs --------------------------------------------------

    def create_collection(
        self,
        name: str,
        field: str,
        kind: str = "btree",
        unique: bool = False,
    ) -> None:
        self.client.call(
            "col.create", name=name, field=field, kind=kind, unique=unique
        )

    def insert(self, collection: str, value: Dict[str, Any]) -> int:
        return self.client.call("col.insert", name=collection, value=value)["oid"]

    def get_match(
        self, collection: str, key: Any, field: Optional[str] = None
    ) -> List[Any]:
        return self.client.call(
            "col.get", name=collection, key=key, field=field
        )["values"]

    def remove_match(
        self, collection: str, key: Any, field: Optional[str] = None
    ) -> int:
        return self.client.call(
            "col.remove", name=collection, key=key, field=field
        )["removed"]

    def iterate(
        self,
        collection: str,
        field: Optional[str] = None,
        lo: Any = None,
        hi: Any = None,
        limit: Optional[int] = None,
    ) -> List[Any]:
        params: Dict[str, Any] = {"name": collection, "field": field}
        if lo is not None:
            params["lo"] = lo
        if hi is not None:
            params["hi"] = hi
        if limit is not None:
            params["limit"] = limit
        return self.client.call("col.iterate", **params)["values"]
