"""The remote data model and the data-verb executor.

Both server frontends — the threaded :mod:`repro.server.server` and the
sharded :mod:`repro.server.sharded` worker processes — speak the same
JSON data model: values live in :class:`RemoteRecord` persistent
objects, collections are indexed by record fields, and the ``obj.*`` /
``name.*`` / ``col.*`` verbs map onto ``Database.transaction()`` /
``ctransaction()``.  This module holds that shared core so a shard
worker executes *exactly* the code path the threaded server does; the
frontends differ only in transaction lifecycle and routing.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.collectionstore import Indexer
from repro.errors import ProtocolError, SchemaError, SessionStateError
from repro.objectstore import BufferReader, BufferWriter, Persistent

__all__ = [
    "RemoteRecord",
    "VerbExecutor",
    "field_indexer",
    "DATA_VERBS",
    "MUTATING_DATA_VERBS",
]


class RemoteRecord(Persistent):
    """A JSON value as a persistent object (the service's data model)."""

    class_id = "server.record"

    def __init__(self, value: Any = None) -> None:
        self.value = value

    def pickle(self) -> bytes:
        body = json.dumps(self.value, separators=(",", ":")).encode("utf-8")
        return BufferWriter().write_bytes(body).getvalue()

    @classmethod
    def unpickle(cls, data: bytes) -> "RemoteRecord":
        reader = BufferReader(data)
        value = json.loads(reader.read_bytes().decode("utf-8"))
        reader.expect_end()
        return cls(value)

    def cache_charge(self) -> int:
        return 96 + 8 * len(json.dumps(self.value, separators=(",", ":")))


class _FieldKey:
    """Pure extractor pulling one field out of a RemoteRecord value."""

    __slots__ = ("field",)

    def __init__(self, field: str) -> None:
        self.field = field

    def __call__(self, record: RemoteRecord) -> Any:
        value = record.value
        if not isinstance(value, dict) or self.field not in value:
            raise SchemaError(
                f"record value must be an object with field {self.field!r}"
            )
        return value[self.field]


def _index_name(collection: str, field: str) -> str:
    return f"field:{collection}:{field}"


def field_indexer(
    collection: str, field: str, kind: str = "btree", unique: bool = False
) -> Indexer:
    """Indexer over ``RemoteRecord`` keyed by one field of the value."""
    if ":" in field:
        raise SchemaError("field names must not contain ':'")
    return Indexer(
        name=_index_name(collection, field),
        schema_class=RemoteRecord,
        extractor=_FieldKey(field),
        unique=unique,
        kind=kind,
    )


#: Every data verb the executor handles.  Frontends use this set to
#: route: anything here needs an open transaction (and, in the sharded
#: server, a shard decision).
DATA_VERBS = frozenset(
    {
        "obj.put",
        "obj.get",
        "obj.remove",
        "name.bind",
        "name.lookup",
        "col.create",
        "col.insert",
        "col.get",
        "col.remove",
        "col.iterate",
    }
)

#: Data verbs refused on a read-only replica.
MUTATING_DATA_VERBS = frozenset(
    {
        "obj.put",
        "obj.remove",
        "name.bind",
        "col.create",
        "col.insert",
        "col.remove",
    }
)


def param(request: Dict[str, Any], name: str, required: bool = True, default=None):
    """Pull one named parameter out of a request frame."""
    if name not in request:
        if required:
            raise ProtocolError(f"missing parameter {name!r}")
        return default
    return request[name]


class VerbExecutor:
    """Executes data verbs against an open transaction.

    Stateless apart from the result cap: the database and transaction
    are passed per call, so one executor serves every session of a
    frontend (and survives a replica applier swapping the database).
    """

    def __init__(self, max_results: int = 1000) -> None:
        self.max_results = max_results

    def execute(
        self, db, request: Dict[str, Any], txn, mode: Optional[str]
    ) -> Dict[str, Any]:
        op = request.get("op")
        handler = self._HANDLERS.get(op)
        if handler is None:
            raise ProtocolError(f"unknown data verb {op!r}")
        return handler(self, db, request, txn, mode)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _require_txn(txn, mode: Optional[str], needed: str):
        if txn is None:
            raise SessionStateError(
                f"no open transaction; send begin(mode={needed!r}) first"
            )
        if mode != needed:
            raise SessionStateError(
                f"verb needs a {needed} transaction, session has {mode}"
            )
        return txn

    def _collection_handle(self, db, txn, mode, name: str, writable: bool):
        ct = self._require_txn(txn, mode, "collection")
        handle = (
            ct.write_collection(name) if writable else ct.read_collection(name)
        )
        # Re-register field indexers for descriptors created in earlier
        # server lifetimes: the descriptor name encodes the field, so
        # the extractor can always be reconstructed.
        store = db.collection_store
        for descriptor in handle.collection.indexes:
            parts = descriptor.name.split(":", 2)
            if len(parts) == 3 and parts[0] == "field":
                store.register_indexer(
                    field_indexer(
                        parts[1], parts[2],
                        kind=descriptor.kind, unique=descriptor.unique,
                    )
                )
        return handle

    @staticmethod
    def _indexer_for(db, handle, field: Optional[str]) -> Indexer:
        store = db.collection_store
        if field is not None:
            name = _index_name(handle.name, field)
            if handle.collection.descriptor(name) is None:
                raise SchemaError(
                    f"collection {handle.name!r} has no index on field "
                    f"{field!r}"
                )
            return store.indexer(name)
        if not handle.collection.indexes:
            raise SchemaError(f"collection {handle.name!r} has no indexes")
        return store.indexer(handle.collection.indexes[0].name)

    @staticmethod
    def _drain(iterator, limit: int) -> List[Any]:
        values = []
        try:
            while not iterator.end() and len(values) < limit:
                values.append(iterator.read().deref().value)
                iterator.next()
        finally:
            iterator.close()
        return values

    # ------------------------------------------------------------------
    # Object verbs
    # ------------------------------------------------------------------

    def _op_obj_put(self, db, request, txn, mode) -> Dict[str, Any]:
        txn = self._require_txn(txn, mode, "object")
        value = param(request, "value")
        oid = param(request, "oid", required=False)
        if oid is None:
            oid = txn.insert(RemoteRecord(value))
        else:
            ref = txn.open_writable(int(oid), RemoteRecord)
            ref.deref().value = value
        return {"oid": oid}

    def _op_obj_get(self, db, request, txn, mode) -> Dict[str, Any]:
        txn = self._require_txn(txn, mode, "object")
        oid = int(param(request, "oid"))
        ref = txn.open_readonly(oid, RemoteRecord)
        return {"oid": oid, "value": ref.deref().value}

    def _op_obj_remove(self, db, request, txn, mode) -> Dict[str, Any]:
        txn = self._require_txn(txn, mode, "object")
        oid = int(param(request, "oid"))
        txn.remove(oid)
        return {"oid": oid}

    def _op_name_bind(self, db, request, txn, mode) -> Dict[str, Any]:
        txn = self._require_txn(txn, mode, "object")
        name = str(param(request, "name"))
        oid = int(param(request, "oid"))
        txn.bind_name(name, oid)
        return {"name": name, "oid": oid}

    def _op_name_lookup(self, db, request, txn, mode) -> Dict[str, Any]:
        txn = self._require_txn(txn, mode, "object")
        name = str(param(request, "name"))
        return {"name": name, "oid": txn.lookup_name(name)}

    # ------------------------------------------------------------------
    # Collection verbs
    # ------------------------------------------------------------------

    def _op_col_create(self, db, request, txn, mode) -> Dict[str, Any]:
        ct = self._require_txn(txn, mode, "collection")
        name = str(param(request, "name"))
        field = str(param(request, "field"))
        kind = str(param(request, "kind", required=False, default="btree"))
        unique = bool(param(request, "unique", required=False, default=False))
        indexer = field_indexer(name, field, kind=kind, unique=unique)
        ct.create_collection(name, indexer)
        return {"name": name, "index": indexer.name}

    def _op_col_insert(self, db, request, txn, mode) -> Dict[str, Any]:
        handle = self._collection_handle(
            db, txn, mode, str(param(request, "name")), writable=True
        )
        value = param(request, "value")
        oid = handle.insert(RemoteRecord(value))
        return {"oid": oid, "count": handle.count}

    def _op_col_get(self, db, request, txn, mode) -> Dict[str, Any]:
        handle = self._collection_handle(
            db, txn, mode, str(param(request, "name")), writable=False
        )
        key = param(request, "key")
        field = param(request, "field", required=False)
        indexer = self._indexer_for(db, handle, field)
        iterator = handle.query_match(indexer, key)
        values = self._drain(iterator, self.max_results)
        return {"values": values}

    def _op_col_remove(self, db, request, txn, mode) -> Dict[str, Any]:
        handle = self._collection_handle(
            db, txn, mode, str(param(request, "name")), writable=True
        )
        key = param(request, "key")
        field = param(request, "field", required=False)
        indexer = self._indexer_for(db, handle, field)
        iterator = handle.query_match(indexer, key)
        removed = 0
        try:
            while not iterator.end():
                iterator.delete()
                removed += 1
                iterator.next()
        finally:
            iterator.close()
        return {"removed": removed, "count": handle.count}

    def _op_col_iterate(self, db, request, txn, mode) -> Dict[str, Any]:
        handle = self._collection_handle(
            db, txn, mode, str(param(request, "name")), writable=False
        )
        field = param(request, "field", required=False)
        lo = param(request, "lo", required=False)
        hi = param(request, "hi", required=False)
        limit = int(
            param(request, "limit", required=False, default=self.max_results)
        )
        limit = min(limit, self.max_results)
        indexer = self._indexer_for(db, handle, field)
        if lo is not None or hi is not None:
            iterator = handle.query_range(indexer, lo, hi)
        else:
            iterator = handle.query(indexer)
        values = self._drain(iterator, limit)
        return {"values": values, "count": handle.count}

    _HANDLERS = {
        "obj.put": _op_obj_put,
        "obj.get": _op_obj_get,
        "obj.remove": _op_obj_remove,
        "name.bind": _op_name_bind,
        "name.lookup": _op_name_lookup,
        "col.create": _op_col_create,
        "col.insert": _op_col_insert,
        "col.get": _op_col_get,
        "col.remove": _op_col_remove,
        "col.iterate": _op_col_iterate,
    }
