"""One shard worker process of the sharded TDB service.

A worker owns one :class:`~repro.db.Database` under
``<root>/shard-<k>/`` — its own segments, location map, one-way
counter, and group-commit coordinator — and serves the front door over
a single loopback connection using the same length-prefixed JSON
framing as the public protocol (:mod:`repro.server.protocol`).  It is
launched as ``python -m repro.server.shardworker`` with a JSON
bootstrap blob in the ``TDB_SHARD_BOOTSTRAP`` environment variable and
*connects back* to the front door's private worker port, authenticating
with the boot nonce.

Internal wire ops (never exposed to clients)::

    w.hello     worker -> front door: shard, nonce, pid, prepared tokens
    s.begin     open a session-scoped transaction   {sid, mode}
    s.exec      run one data verb in a session      {sid, req}
    s.commit    single-shard commit                 {sid, durable, token?}
    s.prepare   2PC phase one                       {sid, token}
    s.decide    2PC phase two                       {token, verdict}
    s.abort     abort the session transaction       {sid}
    w.stats     per-shard stats payload
    w.token.query  ledger/prepared state of a token {token}
    w.fault     arm a crash fault (tests only)      {mode}
    w.shutdown  clean exit

Threading: the main thread reads frames.  ``s.begin`` spawns one thread
per session (data verbs block on strict-2PL lock waits, so sessions
must not share the reader thread); subsequent ``s.*`` frames for that
session are queued to it, and responses are serialized by a writer
lock.  ``w.*`` ops and recovery-path decides run inline.

Durable commit tokens (the exactly-once contract): every commit token
is recorded in a small persistent *ledger* — a fixed set of slot
objects, one slot per token hash — and the ledger append always rides
*inside* the recording transaction's write set, so "the token is in
its ledger slot" and "the transaction committed" are one atomic fact.
Tokened single-shard commits (``s.commit`` with ``token``) use this so
the front door can ask a respawned worker, via ``w.token.query``,
whether a commit that was in flight when the worker died actually
reached the log.  Slotting keeps concurrent committers off each
other's locks: only tokens hashing to the same slot serialize.

Crash recovery (the 2PC participant contract):

* **prepare** appends the commit token to its ledger slot (same-slot
  prepares serialize per shard; the front door acquires shards in
  ascending id order, so equal-slot rounds cannot deadlock), captures
  the transaction's chunk-level write set via
  ``Transaction.materialize()``, and fsyncs it as a redo record under
  ``prepared/``.
* **decide commit** on the live transaction just commits it (group
  commit batches it like any other) and unlinks the redo record.
* a worker that restarts reports its surviving redo records in
  ``w.hello``; the front door re-drives each from its decision log
  (presumed abort when unlogged).  A decided-commit redo whose token is
  already in the ledger is discarded; otherwise the worker re-adopts
  the chunk ids and applies the batch directly to the chunk store —
  byte-identical to the commit that was lost — and evicts the applied
  object ids from the object cache (the catalog is cached from startup
  and must not shadow a recovered ``name.bind``).
"""

from __future__ import annotations

import base64
import dataclasses
import hashlib
import json
import os
import queue
import socket
import sys
import threading
from typing import Any, Dict, List, Optional

from repro.db import Database
from repro.errors import (
    ProtocolError,
    ServerError,
    SessionStateError,
    TDBError,
)
from repro.server import protocol
from repro.server.sharding import BOOTSTRAP_ENV, config_from_dict
from repro.server.verbs import RemoteRecord, VerbExecutor

__all__ = ["ShardWorker", "LEDGER_NAME", "BOOTSTRAP_ENV", "main"]

#: Catalog-name prefix of the per-shard token-ledger slot objects
#: (``__2pc:ledger:<slot>``).
LEDGER_NAME = "__2pc:ledger"

#: Number of ledger slot objects per shard.  A token lives in the slot
#: its hash picks, so two concurrent tokened commits only contend on a
#: lock when their tokens collide — one shared object would serialize
#: every tokened commit and defeat group-commit batching.
LEDGER_SLOTS = 32

#: Tokens kept per slot before pruning (bounds the object's size; a
#: token only needs to survive the crash-settlement window — until its
#: redo record is unlinked or the front door's in-doubt query lands).
LEDGER_KEEP = 64

def prepared_path(directory: str, token: str) -> str:
    """Redo-record path for a token (hashed: tokens are client strings)."""
    digest = hashlib.sha256(token.encode("utf-8")).hexdigest()[:32]
    return os.path.join(directory, f"{digest}.json")


class _WorkerSession:
    __slots__ = ("sid", "mode", "txn", "queue", "thread", "prepared_token",
                 "readonly_prepared")

    def __init__(self, sid: int, mode: str, txn) -> None:
        self.sid = sid
        self.mode = mode
        self.txn = txn
        self.queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self.thread: Optional[threading.Thread] = None
        self.prepared_token: Optional[str] = None
        self.readonly_prepared = False


class ShardWorker:
    """The worker process body (see module docstring)."""

    def __init__(self, bootstrap: Dict[str, Any]) -> None:
        self.shard = int(bootstrap["shard"])
        self.shards = int(bootstrap["shards"])
        self.directory = bootstrap["directory"]
        self.nonce = bootstrap["nonce"]
        self.connect_host, self.connect_port = bootstrap["connect"]
        self.chunk_config = config_from_dict(bootstrap.get("config"))
        gc = bootstrap.get("group_commit") or {}
        self.gc_max_batch = int(gc.get("max_batch", 32))
        self.gc_max_delay = float(gc.get("max_delay", 0.005))
        self.gc_max_pending = int(gc.get("max_pending", 256))
        self.gc_quorum_seal = bool(gc.get("quorum_seal", True))
        self.executor = VerbExecutor(
            max_results=int(bootstrap.get("max_results", 1000))
        )
        self.db: Optional[Database] = None
        self.ledger_oids: List[int] = []
        self.coordinator = None
        self._fault_mode = ""
        self.sock: Optional[socket.socket] = None
        self._write_lock = threading.Lock()
        self._sessions: Dict[int, _WorkerSession] = {}
        self._sessions_lock = threading.Lock()
        self._prepared_dir = os.path.join(self.directory, "prepared")
        self._stop = False
        self._counters = {
            "commits": 0,
            "prepares": 0,
            "decided_commits": 0,
            "decided_aborts": 0,
            "recovered_applies": 0,
            "recovered_discards": 0,
        }
        self._counters_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Startup
    # ------------------------------------------------------------------

    def run(self) -> int:
        self._open_database()
        prepared = self._scan_prepared()
        self.sock = socket.create_connection(
            (self.connect_host, self.connect_port), timeout=10.0
        )
        self.sock.settimeout(None)
        protocol.write_frame(
            self.sock,
            {
                "op": "w.hello",
                "shard": self.shard,
                "shards": self.shards,
                "nonce": self.nonce,
                "pid": os.getpid(),
                "prepared": prepared,
            },
        )
        ack = protocol.read_frame(self.sock)
        if ack is None or not ack.get("ok"):
            raise ServerError(f"front door refused worker handshake: {ack!r}")
        try:
            self._serve()
        finally:
            self._shutdown()
        return 0

    def _open_database(self) -> None:
        os.makedirs(self.directory, exist_ok=True)
        os.makedirs(self._prepared_dir, exist_ok=True)
        if os.path.exists(os.path.join(self.directory, "data")):
            self.db = Database.open_existing(self.directory, self.chunk_config)
        else:
            self.db = Database.create(self.directory, self.chunk_config)
        self.db.object_store.registry.register(RemoteRecord)
        self.ledger_oids = []
        with self.db.transaction() as txn:
            for slot in range(LEDGER_SLOTS):
                name = f"{LEDGER_NAME}:{slot}"
                oid = txn.lookup_name(name)
                if oid is None:
                    oid = txn.insert(RemoteRecord({"tokens": []}))
                    txn.bind_name(name, oid)
                self.ledger_oids.append(oid)
        self.coordinator = self.db.enable_group_commit(
            max_batch=self.gc_max_batch,
            max_delay=self.gc_max_delay,
            max_pending=self.gc_max_pending,
            quorum_seal=self.gc_quorum_seal,
        )

    def _scan_prepared(self) -> List[str]:
        tokens = []
        for entry in sorted(os.listdir(self._prepared_dir)):
            if not entry.endswith(".json"):
                continue
            try:
                with open(os.path.join(self._prepared_dir, entry), "rb") as fh:
                    record = json.loads(fh.read().decode("utf-8"))
                tokens.append(record["token"])
            except (OSError, ValueError, KeyError):
                # A torn redo record means prepare's fsync never finished,
                # so no decision can reference it: drop it (presumed abort).
                os.unlink(os.path.join(self._prepared_dir, entry))
        return tokens

    def _slot_oid(self, token: str) -> int:
        """Ledger slot object owning ``token``."""
        digest = hashlib.sha256(token.encode("utf-8")).digest()
        return self.ledger_oids[int.from_bytes(digest[:8], "big") % LEDGER_SLOTS]

    def _ledger_tokens(self, token: str) -> List[str]:
        """Committed state of ``token``'s slot, read off the chunk store."""
        payload = self.db.chunk_store.read(self._slot_oid(token))
        # The stored form carries the registry's class-id header, so it
        # must be decoded by the registry, not RemoteRecord.unpickle.
        record = self.db.object_store.registry.unpickle_object(payload)
        return list(record.value.get("tokens", []))

    # ------------------------------------------------------------------
    # Frame loop
    # ------------------------------------------------------------------

    def _serve(self) -> None:
        while not self._stop:
            try:
                request = protocol.read_frame(self.sock)
            except (OSError, ProtocolError):
                break
            if request is None:
                break  # front door went away; its restart respawns us
            self._route(request)

    def _route(self, request: Dict[str, Any]) -> None:
        op = request.get("op")
        rid = request.get("id")
        try:
            if op == "s.begin":
                self._respond(rid, self._op_begin(request))
                return
            if op in ("s.exec", "s.commit", "s.prepare", "s.abort"):
                session = self._session_for(request)
                session.queue.put(request)
                return
            if op == "s.decide":
                token = str(request.get("token"))
                session = self._session_for_token(token)
                if session is not None:
                    session.queue.put(request)
                else:
                    self._respond(rid, self._recovery_decide(request))
                return
            if op == "w.stats":
                self._respond(rid, self._op_stats())
                return
            if op == "w.token.query":
                self._respond(rid, self._op_token_query(request))
                return
            if op == "w.fault":
                # Test-only crash injection, driven by the chaos suites
                # through ShardedTdbServer.inject_worker_fault.
                self._fault_mode = str(request.get("mode") or "")
                self._respond(rid, {"armed": self._fault_mode})
                return
            if op == "w.shutdown":
                self._stop = True
                self._respond(rid, {"stopping": True})
                return
            raise ProtocolError(f"unknown worker op {op!r}")
        except TDBError as exc:
            self._respond_error(rid, exc)
        except Exception as exc:  # never kill the frame loop on one frame
            self._respond_error(rid, ServerError(f"worker fault: {exc}"))

    def _respond(self, rid, result: Dict[str, Any]) -> None:
        with self._write_lock:
            protocol.write_frame(
                self.sock, {"id": rid, "ok": True, "result": result}
            )

    def _respond_error(self, rid, exc: TDBError) -> None:
        with self._write_lock:
            protocol.write_frame(self.sock, protocol.error_payload(rid, exc))

    def _count(self, name: str) -> None:
        with self._counters_lock:
            self._counters[name] = self._counters.get(name, 0) + 1

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------

    def _session_for(self, request) -> _WorkerSession:
        sid = int(request.get("sid", -1))
        with self._sessions_lock:
            session = self._sessions.get(sid)
        if session is None:
            raise SessionStateError(f"worker has no session {sid}")
        return session

    def _session_for_token(self, token: str) -> Optional[_WorkerSession]:
        with self._sessions_lock:
            for session in self._sessions.values():
                if session.prepared_token == token:
                    return session
        return None

    def _op_begin(self, request) -> Dict[str, Any]:
        sid = int(request.get("sid", -1))
        mode = request.get("mode", "object")
        if mode not in ("object", "collection"):
            raise ProtocolError(f"unknown transaction mode {mode!r}")
        with self._sessions_lock:
            if sid in self._sessions:
                raise SessionStateError(f"worker session {sid} already open")
            txn = (
                self.db.transaction() if mode == "object"
                else self.db.ctransaction()
            )
            session = _WorkerSession(sid, mode, txn)
            self._sessions[sid] = session
            if self.coordinator is not None:
                # Open sessions are this worker's committer population;
                # without the hint quorum sealing assumes a lone client
                # and group commit never batches.
                self.coordinator.concurrency_hint = len(self._sessions)
        session.thread = threading.Thread(
            target=self._session_loop,
            args=(session,),
            name=f"shard{self.shard}-s{sid}",
            daemon=True,
        )
        session.thread.start()
        return {"sid": sid, "mode": mode}

    def _finish_session(self, session: _WorkerSession) -> None:
        with self._sessions_lock:
            self._sessions.pop(session.sid, None)
            if self.coordinator is not None:
                self.coordinator.concurrency_hint = len(self._sessions)

    def _session_loop(self, session: _WorkerSession) -> None:
        """Per-session executor: drains frames until the txn terminates."""
        while True:
            request = session.queue.get()
            if request is None:
                break
            rid = request.get("id")
            op = request.get("op")
            done = False
            try:
                if op == "s.exec":
                    result = self.executor.execute(
                        self.db, request.get("req") or {}, session.txn,
                        session.mode,
                    )
                elif op == "s.commit":
                    result = self._session_commit(session, request)
                    done = True
                elif op == "s.prepare":
                    result = self._session_prepare(session, request)
                elif op == "s.decide":
                    result = self._session_decide(session, request)
                    done = True
                elif op == "s.abort":
                    result = self._session_abort(session)
                    done = True
                else:
                    raise ProtocolError(f"op {op!r} not valid inside a session")
                # Unregister *before* responding: the front door may send
                # the next s.begin the instant it sees this response.
                if done:
                    self._finish_session(session)
                self._respond(rid, result)
            except TDBError as exc:
                if op == "s.commit":
                    done = True  # _session_commit aborted on failure
                if done:
                    self._finish_session(session)
                self._respond_error(rid, exc)
            except Exception as exc:
                if done:
                    self._finish_session(session)
                self._respond_error(rid, ServerError(f"worker fault: {exc}"))
            if done:
                return

    # -- commit paths ----------------------------------------------------

    def _session_commit(self, session: _WorkerSession, request) -> Dict[str, Any]:
        """Single-shard fast path: a plain group-committed commit.

        A tokened write commit first appends its token to the ledger
        slot *inside* the transaction's write set, making "did this
        commit reach the log?" durably answerable (``w.token.query``)
        after a crash.  Read-only transactions skip the append — they
        have no effects to duplicate, so a retry is always safe.
        """
        durable = bool(request.get("durable", True))
        token = request.get("token")
        txn = session.txn
        try:
            recorded = False
            if isinstance(token, str) and token:
                writes, deallocs = txn.materialize()
                if writes or deallocs:
                    self._append_ledger_token(session, token)
                    recorded = True
            txn.commit(durable=durable)
        except TDBError:
            if getattr(txn, "active", False):
                try:
                    txn.abort()
                except TDBError:
                    pass
            raise
        if self._fault_mode == "exit_after_commit":
            os._exit(42)  # the commit is durable, the ack is lost
        self._count("commits")
        return {"durable": durable, "token_recorded": recorded}

    def _inner_txn(self, session: _WorkerSession):
        if session.mode == "collection":
            return session.txn.object_transaction
        return session.txn

    def _append_ledger_token(self, session: _WorkerSession, token: str) -> None:
        """Append ``token`` to its ledger slot inside the session's
        transaction, so the append commits (or vanishes) atomically with
        the transaction's own effects."""
        ref = self._inner_txn(session).open_writable(
            self._slot_oid(token), RemoteRecord
        )
        tokens = ref.deref().value.setdefault("tokens", [])
        tokens.append(token)
        del tokens[:-LEDGER_KEEP]

    def _session_prepare(self, session: _WorkerSession, request) -> Dict[str, Any]:
        token = request.get("token")
        if not isinstance(token, str) or not token:
            raise ProtocolError("prepare needs a string commit token")
        if session.prepared_token is not None:
            raise SessionStateError("session is already prepared")
        writes, deallocs = session.txn.materialize()
        if not writes and not deallocs:
            # Read-only participant: nothing to redo, no ledger entry —
            # decide(commit) simply releases its locks.
            session.prepared_token = token
            session.readonly_prepared = True
            return {"prepared": True, "readonly": True}
        # The ledger append rides inside this transaction's write set:
        # the slot's exclusive lock serializes equal-slot commits on
        # this shard, and commit atomically records "token applied".
        self._append_ledger_token(session, token)
        writes, deallocs = session.txn.materialize()
        path = prepared_path(self._prepared_dir, token)
        blob = json.dumps(
            {
                "token": token,
                "shard": self.shard,
                "writes": {
                    str(oid): base64.b64encode(data).decode("ascii")
                    for oid, data in writes.items()
                },
                "deallocs": deallocs,
            },
            separators=(",", ":"),
        ).encode("utf-8")
        with open(path, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        dir_fd = os.open(self._prepared_dir, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
        session.prepared_token = token
        self._count("prepares")
        return {"prepared": True, "readonly": False}

    def _session_decide(self, session: _WorkerSession, request) -> Dict[str, Any]:
        verdict = request.get("verdict")
        if session.prepared_token is None:
            raise SessionStateError("decide on an unprepared session")
        token = session.prepared_token
        if verdict == "commit":
            if session.readonly_prepared:
                session.txn.abort()  # nothing to write; releases locks
            else:
                session.txn.commit(durable=True)
                self._unlink_prepared(token)
            self._count("decided_commits")
            return {"decided": "commit"}
        if verdict == "abort":
            session.txn.abort()
            if not session.readonly_prepared:
                self._unlink_prepared(token)
            self._count("decided_aborts")
            return {"decided": "abort"}
        raise ProtocolError(f"unknown verdict {verdict!r}")

    def _session_abort(self, session: _WorkerSession) -> Dict[str, Any]:
        if session.prepared_token is not None and not session.readonly_prepared:
            self._unlink_prepared(session.prepared_token)
        if getattr(session.txn, "active", True):
            session.txn.abort()
        return {}

    def _unlink_prepared(self, token: str) -> None:
        try:
            os.unlink(prepared_path(self._prepared_dir, token))
        except OSError:
            pass

    # -- recovery-path decide --------------------------------------------

    def _recovery_decide(self, request) -> Dict[str, Any]:
        """Decide a token that has no live session: redo or discard.

        Runs inline on the reader thread before the front door routes
        any traffic at us, so the direct chunk-store apply cannot race a
        live commit.
        """
        token = str(request.get("token"))
        verdict = request.get("verdict")
        path = prepared_path(self._prepared_dir, token)
        if not os.path.exists(path):
            return {"decided": verdict, "recovered": False}
        if verdict == "abort":
            os.unlink(path)
            self._count("decided_aborts")
            return {"decided": "abort", "recovered": True}
        if verdict != "commit":
            raise ProtocolError(f"unknown verdict {verdict!r}")
        with open(path, "rb") as fh:
            record = json.loads(fh.read().decode("utf-8"))
        if token in self._ledger_tokens(token):
            # The commit landed before the crash; only the unlink was lost.
            self._count("recovered_discards")
        else:
            writes = {
                int(oid): base64.b64decode(data)
                for oid, data in record["writes"].items()
            }
            deallocs = [int(oid) for oid in record["deallocs"]]
            for oid in writes:
                if not self.db.chunk_store.contains(oid):
                    self.db.chunk_store.adopt_chunk_id(oid)
            self.db.chunk_store.commit(writes, deallocs, durable=True)
            # The apply bypassed the object layer, whose cache may hold
            # stale unpickled instances of these ids — the catalog in
            # particular is cached by _open_database, and serving reads
            # (or re-committing it) from the stale copy would silently
            # erase a recovered name.bind/set_root.
            for oid in writes:
                self.db.object_store.evict(oid)
            for oid in deallocs:
                self.db.object_store.evict(oid)
            self._count("recovered_applies")
        os.unlink(path)
        self._count("decided_commits")
        return {"decided": "commit", "recovered": True}

    # ------------------------------------------------------------------
    # Admin ops
    # ------------------------------------------------------------------

    def _op_stats(self) -> Dict[str, Any]:
        with self._counters_lock:
            counters = dict(self._counters)
        with self._sessions_lock:
            counters["open_sessions"] = len(self._sessions)
        return {
            "shard": self.shard,
            "pid": os.getpid(),
            "chunk_store": dataclasses.asdict(self.db.stats()),
            "io": self.db.io_stats().as_dict(),
            "group_commit": (
                self.coordinator.stats_snapshot().as_dict()
                if self.coordinator is not None
                else None
            ),
            "counters": counters,
        }

    def _op_token_query(self, request) -> Dict[str, Any]:
        token = str(request.get("token"))
        return {
            "token": token,
            "in_ledger": token in self._ledger_tokens(token),
            "prepared": os.path.exists(
                prepared_path(self._prepared_dir, token)
            ),
        }

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def _shutdown(self) -> None:
        with self._sessions_lock:
            sessions = list(self._sessions.values())
        for session in sessions:
            session.queue.put(None)
        for session in sessions:
            if session.thread is not None:
                session.thread.join(timeout=2.0)
            try:
                if getattr(session.txn, "active", False):
                    session.txn.abort()
            except TDBError:
                pass
        try:
            if self.db is not None:
                self.db.close()
        except TDBError:
            pass
        try:
            if self.sock is not None:
                self.sock.close()
        except OSError:
            pass


def main(argv=None) -> int:
    blob = os.environ.get(BOOTSTRAP_ENV)
    if not blob:
        print(f"{BOOTSTRAP_ENV} is not set; this process is launched by "
              "the sharded front door", file=sys.stderr)
        return 2
    bootstrap = json.loads(blob)
    return ShardWorker(bootstrap).run()


if __name__ == "__main__":
    raise SystemExit(main())
