"""The TDB service wire protocol: length-prefixed JSON frames.

One frame is a 4-byte big-endian length followed by that many bytes of
UTF-8 JSON.  Requests carry ``{"id": n, "op": "<verb>", ...params}``;
responses echo the id as ``{"id": n, "ok": true, "result": {...}}`` or
``{"id": n, "ok": false, "error": "<class>", "message": "...",
"transient": bool}``.  The ``error`` field names the
:class:`~repro.errors.TDBError` subclass the server raised; the client
re-raises the same class so remote and embedded use look identical to
the application.  ``transient`` marks faults worth retrying (admission
rejections, transient store faults) even for clients that do not know
the class name.

Verbs
-----

==================  ============================================  ===========
verb                parameters                                    txn mode
==================  ============================================  ===========
``hello``           —                                             admin, any
``auth``            ``tenant``, ``principal``, ``proof`` (opt.)   none open
``begin``           ``mode`` ("object" | "collection")            none open
``commit``          ``durable`` (default true), ``token``         any
``commit.result``   ``token``                                     admin, any
``session.resume``  ``session``                                   none open
``abort``           —                                             any
``obj.put``         ``oid`` (null inserts), ``value``             object
``obj.get``         ``oid``                                       object
``obj.remove``      ``oid``                                       object
``name.bind``       ``name``, ``oid``                             object
``name.lookup``     ``name``                                      object
``col.create``      ``name``, ``field``, ``kind``, ``unique``     collection
``col.insert``      ``name``, ``value`` (object with ``field``)   collection
``col.get``         ``name``, ``key``, ``field`` (optional)       collection
``col.remove``      ``name``, ``key``, ``field`` (optional)       collection
``col.iterate``     ``name``, ``field``/``lo``/``hi``/``limit``   collection
``stats``           —                                             admin, any
``tenant.grant``    ``principal``, ``scope``, ``right``           admin, none
``tenant.revoke``   ``principal``, ``scope``, ``right``           admin, none
``tenant.meter``    —                                             admin, none
``repl.subscribe``  ``last_generation``/``last_seqno`` (optional) admin, none
``repl.segments``   ``segment``, ``offset``, ``length``           admin, none
``repl.master``     —                                             admin, none
``proof.read``      ``chunk_id``                                  admin, none
``proof.absent``    ``chunk_id``                                  admin, none
``log.head``        —                                             admin, none
``log.consistency`` ``from_index``, ``to_index``                  admin, none
==================  ============================================  ===========

Exactly-once commits: ``begin`` returns a ``session`` resume token and
the server's boot ``epoch``.  A client that loses its connection
mid-transaction reconnects and issues ``session.resume`` to adopt the
parked session — open transaction, locks, and the last cached response
(re-sending the in-flight request id replays that response without
re-execution).  A ``commit`` carrying a ``token`` records its outcome
in a bounded result cache; ``commit.result`` returns the authoritative
outcome (``committed`` / ``failed`` / ``pending`` / ``unknown``) plus
the current ``epoch`` so clients can tell a fresh token from one lost
to a server restart.

The ``repl.*`` verbs implement verified log shipping
(:mod:`repro.replication`).  ``repl.subscribe`` checkpoints, pins every
live segment in a snapshot, and returns the shipment manifest (database
uuid, generation, commit seqno, expected counter, master-record file
name and length, per-segment sizes and content digests) — or
``{"up_to_date": true}`` when the primary has not committed past
``last_generation``/``last_seqno``.  ``repl.segments`` returns raw
segment bytes (base64, clipped to the manifest's recorded size) and
``repl.master`` the sealed master-record blob captured at subscribe
time.  Re-subscribing acknowledges the previous shipment and releases
its pins.

The ``proof.*`` / ``log.*`` verbs expose client-verifiable proofs
(:mod:`repro.proofs`): Merkle inclusion / non-membership proofs for a
chunk id against a signed commit head, the newest signed head, and
hash-chained head-log ranges (consistency proofs).  They are read-only,
served by primaries and replicas alike, and everything they return is
authenticated end to end — the server is untrusted.

On a multi-tenant hub (:mod:`repro.tenancy`) the ``auth`` verb binds
the session to a ``(tenant, principal)`` identity: the first call
(without ``proof``) returns a single-use ``challenge`` nonce, the
second carries ``proof`` = HMAC-SHA256(principal secret, challenge
bytes) as hex.  ``tenant.grant`` / ``tenant.revoke`` mutate DDH-style
policy records (admin right required) and ``tenant.meter`` reports the
tenant's quota usage and audit-trail length.

The payload model is JSON values: the server stores them in
:class:`~repro.server.server.RemoteRecord` persistent objects, so a
remote client needs no Python class registry.
"""

from __future__ import annotations

import json
import socket
import struct
import time
from typing import Any, Dict, Optional, Type

from repro import errors as _errors
from repro.errors import ProtocolError, ServerBusyError, TransientStoreError

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "encode_frame",
    "read_frame",
    "write_frame",
    "recv_exact",
    "error_payload",
    "exception_from_payload",
    "VERBS",
]

_LENGTH = struct.Struct(">I")

#: Upper bound on one frame's body; a peer announcing more is treated as
#: a protocol violation, not an allocation request.
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Wire protocol version announced by the ``hello`` verb.  Version 1
#: servers predate ``hello`` and answer it with a ProtocolError; clients
#: treat that as ``{"protocol": 1}`` so both directions interoperate.
PROTOCOL_VERSION = 2

VERBS = (
    "hello",
    "auth",
    "begin",
    "commit",
    "commit.result",
    "session.resume",
    "abort",
    "obj.put",
    "obj.get",
    "obj.remove",
    "name.bind",
    "name.lookup",
    "col.create",
    "col.insert",
    "col.get",
    "col.remove",
    "col.iterate",
    "stats",
    "tenant.grant",
    "tenant.revoke",
    "tenant.meter",
    "repl.subscribe",
    "repl.segments",
    "repl.master",
    "proof.read",
    "proof.absent",
    "log.head",
    "log.consistency",
)


def encode_frame(message: Dict[str, Any]) -> bytes:
    """Serialize one message to its on-wire form (length + JSON body)."""
    try:
        body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"message is not JSON-serializable: {exc}") from exc
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES} limit"
        )
    return _LENGTH.pack(len(body)) + body


def recv_exact(
    sock: socket.socket,
    nbytes: int,
    deadline: Optional[float] = None,
) -> Optional[bytes]:
    """Read exactly ``nbytes`` from ``sock``.

    Returns ``None`` on a clean EOF *before the first byte* (peer went
    away between frames); raises :class:`ProtocolError` on EOF inside a
    frame.  With ``deadline`` (a ``time.monotonic()`` instant) the
    *whole* read must finish by that moment: each recv gets only the
    remaining budget, so a peer trickling one byte per call cannot
    reset the clock and hold the slot forever.  Socket timeouts and OS
    errors propagate to the caller, which owns the reconnect/abort
    policy.
    """
    chunks = []
    remaining = nbytes
    while remaining > 0:
        if deadline is not None:
            budget = deadline - time.monotonic()
            if budget <= 0:
                raise socket.timeout(
                    f"frame read deadline exceeded ({nbytes - remaining}/{nbytes}"
                    " bytes received)"
                )
            sock.settimeout(budget)
        chunk = sock.recv(min(remaining, 65536))
        if not chunk:
            if remaining == nbytes:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({nbytes - remaining}/{nbytes}"
                " bytes received)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(
    sock: socket.socket,
    idle_timeout: Optional[float] = None,
    body_timeout: Optional[float] = None,
) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF between frames.

    With timeouts given, ``idle_timeout`` bounds the wait for the first
    byte of the frame header (the time a peer may sit idle) and
    ``body_timeout`` bounds the arrival of the rest of the frame once
    started — enforced as an absolute deadline across partial reads, so
    a slow-loris peer dribbling bytes cannot stretch it.
    ``socket.timeout`` propagates to the caller.
    """
    if idle_timeout is not None:
        sock.settimeout(idle_timeout)
    first = recv_exact(sock, 1)
    if first is None:
        return None
    deadline = None
    if body_timeout is not None:
        deadline = time.monotonic() + body_timeout
    rest = recv_exact(sock, _LENGTH.size - 1, deadline)
    if rest is None:
        raise ProtocolError("connection closed inside frame header")
    (length,) = _LENGTH.unpack(first + rest)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"peer announced a {length}-byte frame (limit {MAX_FRAME_BYTES})"
        )
    body = recv_exact(sock, length, deadline)
    if body is None:
        raise ProtocolError("connection closed between frame header and body")
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame body must be a JSON object")
    return message


def write_frame(sock: socket.socket, message: Dict[str, Any]) -> None:
    sock.sendall(encode_frame(message))


# ---------------------------------------------------------------------------
# Error marshalling
# ---------------------------------------------------------------------------

def _is_transient(exc: BaseException) -> bool:
    return isinstance(exc, (TransientStoreError, ServerBusyError))


def error_payload(request_id: Any, exc: BaseException) -> Dict[str, Any]:
    """Build the error-response message for an exception."""
    return {
        "id": request_id,
        "ok": False,
        "error": type(exc).__name__,
        "message": str(exc),
        "transient": _is_transient(exc),
    }


def _error_classes() -> Dict[str, Type[BaseException]]:
    classes: Dict[str, Type[BaseException]] = {}
    for name in _errors.__all__:
        obj = getattr(_errors, name, None)
        if isinstance(obj, type) and issubclass(obj, BaseException):
            classes[name] = obj
    return classes


_ERROR_CLASSES = _error_classes()


def exception_from_payload(payload: Dict[str, Any]) -> BaseException:
    """Reconstruct the server-side exception from an error response."""
    name = payload.get("error", "ServerError")
    message = payload.get("message", "remote error")
    cls = _ERROR_CLASSES.get(name)
    if cls is None:
        if payload.get("transient"):
            return TransientStoreError(f"{name}: {message}")
        return _errors.ServerError(f"{name}: {message}")
    try:
        return cls(message)
    except TypeError:
        # Classes with mandatory extra arguments degrade to the base.
        return _errors.ServerError(f"{name}: {message}")
