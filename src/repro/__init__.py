"""TDB: a trusted database system for Digital Rights Management.

A from-scratch reproduction of *TDB: A Database System for Digital Rights
Management* (Vingralek, Maheshwari, Shapiro — EDBT 2002).  The stack,
bottom to top:

* :mod:`repro.platform` — the substrates the paper assumes a device
  provides: untrusted store, secret store, one-way counter, archival
  store (plus an attacker toolkit for exercising the threat model),
* :mod:`repro.crypto` — SHA-1 / DES / 3DES / AES / HMAC, from scratch,
* :mod:`repro.chunkstore` — the log-structured trusted chunk store with
  the Merkle tree embedded in its location map,
* :mod:`repro.backupstore` — validated full/incremental backups,
* :mod:`repro.objectstore` — typed persistent objects, transactions,
  strict two-phase locking, the shared object cache,
* :mod:`repro.collectionstore` — collections with functional indexes
  (B+tree / linear hash / list) and insensitive iterators,
* :mod:`repro.baseline` — a Berkeley-DB-style page/WAL engine used as the
  performance baseline,
* :mod:`repro.bench` — the TPC-B harness reproducing the paper's
  evaluation (Figures 8-11).

Quick start::

    from repro import Database, Persistent, Indexer

    db = Database.in_memory()
    ...

See ``examples/`` for runnable programs and ``DESIGN.md`` for the full
architecture map.
"""

from repro.config import (
    BaselineConfig,
    ChunkStoreConfig,
    CollectionStoreConfig,
    ObjectStoreConfig,
    SecurityProfile,
)
from repro.db import Database
from repro.errors import TDBError, TamperDetectedError, ReplayDetectedError
from repro.objectstore import (
    BufferReader,
    BufferWriter,
    ClassRegistry,
    Persistent,
    Transaction,
)
from repro.collectionstore import CTransaction, Indexer

__version__ = "1.0.0"

__all__ = [
    "Database",
    "Persistent",
    "Indexer",
    "Transaction",
    "CTransaction",
    "ClassRegistry",
    "BufferReader",
    "BufferWriter",
    "ChunkStoreConfig",
    "ObjectStoreConfig",
    "CollectionStoreConfig",
    "BaselineConfig",
    "SecurityProfile",
    "TDBError",
    "TamperDetectedError",
    "ReplayDetectedError",
    "__version__",
]
