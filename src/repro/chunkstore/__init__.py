"""The chunk store: TDB's log-structured trusted storage layer.

The chunk store stores a set of named, variable-sized byte sequences
(*chunks*) on untrusted storage with secrecy and tamper detection
(section 3 of the paper):

* the **log is the only storage** — committed chunks are appended to the
  tail of a segmented log; there are no copies outside the log,
* a hierarchical **location map** finds the current version of each chunk;
  the Merkle hash tree is embedded in the map, so validating a chunk and
  locating it are the same tree walk,
* multiple chunk writes commit **atomically**; commits may be durable
  (fsync + one-way-counter bump) or nondurable (guaranteed *not* to
  survive a crash until a later durable commit),
* the **master record** authenticates the map root, the residual-log hash
  chain and the expected one-way-counter value with a MAC under the
  secret key; replaying an old database image trips the counter check,
* a **cleaner** reclaims obsolete chunk versions, growing the store
  instead when the configured maximum utilization is reached,
* **snapshots** freeze the map root copy-on-write for fast full and
  incremental backups.
"""

from repro.chunkstore.store import (
    ChunkStore,
    ChunkStoreStats,
    SalvageInfo,
    SegmentExportInfo,
    ShipmentAnchor,
)
from repro.chunkstore.scrub import DamagedChunk, DamagedNode, DamageReport
from repro.chunkstore.snapshot import Snapshot

__all__ = [
    "ChunkStore",
    "ChunkStoreStats",
    "SalvageInfo",
    "SegmentExportInfo",
    "ShipmentAnchor",
    "DamagedChunk",
    "DamagedNode",
    "DamageReport",
    "Snapshot",
]
