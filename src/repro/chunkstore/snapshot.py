"""Database snapshots: frozen copy-on-write views of the location map.

A snapshot freezes the map root produced by a checkpoint.  Because the
log never overwrites data in place, the frozen tree keeps describing a
consistent past state as long as the cleaner does not recycle the
segments it references — so a snapshot pins the set of segments that
existed when it was taken (the cleaner skips them).

Snapshots are how the backup store works (section 3.2.1 of the paper):

* a **full backup** streams every chunk reachable from one snapshot,
* an **incremental backup** streams only the chunks that differ between
  two snapshots, found by comparing the two Merkle trees and pruning
  every subtree whose child locators (and digests) are identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Set, Tuple

from repro.chunkstore.format import Locator
from repro.chunkstore.locmap import LocationMap, MapNode
from repro.errors import ChunkNotFoundError, SnapshotError

__all__ = ["Snapshot", "SnapshotDiff"]


@dataclass
class SnapshotDiff:
    """Result of comparing two snapshots (``new`` relative to ``base``)."""

    changed: List[int] = field(default_factory=list)  # added or rewritten
    removed: List[int] = field(default_factory=list)  # deallocated since base

    def is_empty(self) -> bool:
        return not self.changed and not self.removed


class Snapshot:
    """A read-only view of the database at one commit point."""

    def __init__(
        self,
        store,
        snapshot_id: int,
        root: Optional[Locator],
        depth: int,
        pinned_segments: Set[int],
        commit_seqno: int,
    ) -> None:
        self._store = store
        self.snapshot_id = snapshot_id
        self.commit_seqno = commit_seqno
        self.pinned_segments = set(pinned_segments)
        self.released = False
        self.map = LocationMap(
            node_io=store.node_io,
            fanout=store.config.map_fanout,
            hash_size=store.hash_size,
            cache=store.cache,
            namespace=f"snap-{snapshot_id}",
            depth=depth,
            root_locator=root,
            frozen=True,
        )

    # -- reads ----------------------------------------------------------------

    def _check_live(self) -> None:
        if self.released:
            raise SnapshotError(f"snapshot {self.snapshot_id} was released")

    def read(self, chunk_id: int) -> bytes:
        """Return the chunk state as of this snapshot."""
        self._check_live()
        locator = self.map.lookup(chunk_id)
        if locator is None:
            raise ChunkNotFoundError(
                f"chunk {chunk_id} not present in snapshot {self.snapshot_id}"
            )
        return self._store.read_payload(locator)

    def contains(self, chunk_id: int) -> bool:
        self._check_live()
        return self.map.lookup(chunk_id) is not None

    def chunk_ids(self) -> Iterator[int]:
        """Iterate all chunk ids captured by this snapshot, in order."""
        self._check_live()
        for chunk_id, _locator in self.map.iterate():
            yield chunk_id

    def items(self) -> Iterator[Tuple[int, Locator]]:
        self._check_live()
        yield from self.map.iterate()

    def count(self) -> int:
        self._check_live()
        return self.map.count()

    # -- lifecycle --------------------------------------------------------------

    def release(self) -> None:
        """Unpin the snapshot; its segments become cleanable again."""
        if not self.released:
            self._store.release_snapshot(self)

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    # -- diffing -----------------------------------------------------------------

    def diff_from(self, base: "Snapshot") -> SnapshotDiff:
        """Return the chunk-level differences of ``self`` relative to ``base``.

        Subtrees whose locators (including Merkle digests) are identical
        in both trees are pruned without being visited, which is what
        makes frequent incremental backups cheap.
        """
        self._check_live()
        base._check_live()
        if base._store is not self._store:
            raise SnapshotError("snapshots belong to different stores")
        if base.commit_seqno > self.commit_seqno:
            raise SnapshotError(
                "diff base must be the older snapshot "
                f"(base seq {base.commit_seqno} > new seq {self.commit_seqno})"
            )
        if base.map.depth > self.map.depth:
            raise SnapshotError("map depth shrank between snapshots")
        diff = SnapshotDiff()
        new_root = self.map._require_root_loaded()
        base_root = base.map._require_root_loaded()
        # Descend the new tree until its node covers the same id range as
        # the base root; every sibling passed on the way holds ids beyond
        # the base tree's capacity, i.e. chunks added since the base.
        level = self.map.depth - 1
        node_new = new_root
        while level > base.map.depth - 1:
            if node_new is None:
                break
            for slot in sorted(node_new.children):
                if slot == 0:
                    continue
                sibling = self.map.load_child(node_new, slot)
                self._collect_ids(self.map, sibling, diff.changed)
            node_new = self.map.load_child(node_new, 0)
            level -= 1
        self._diff_nodes(base.map, node_new, base_root, level, diff)
        diff.changed.sort()
        diff.removed.sort()
        return diff

    def _diff_nodes(
        self,
        base_map: LocationMap,
        node_new: Optional[MapNode],
        node_base: Optional[MapNode],
        level: int,
        diff: SnapshotDiff,
    ) -> None:
        if node_new is None and node_base is None:
            return
        if node_base is None:
            self._collect_ids(self.map, node_new, diff.changed)
            return
        if node_new is None:
            self._collect_ids(base_map, node_base, diff.removed)
            return
        for slot in sorted(set(node_new.children) | set(node_base.children)):
            loc_new = node_new.children.get(slot)
            loc_base = node_base.children.get(slot)
            if loc_new == loc_base:
                continue  # identical subtree or identical chunk version
            if level == 0:
                chunk_id = node_new.index * self.map.fanout + slot
                if loc_new is None:
                    diff.removed.append(chunk_id)
                elif self._chunk_changed(loc_new, loc_base):
                    diff.changed.append(chunk_id)
                continue
            child_new = (
                self.map.load_child(node_new, slot) if loc_new is not None else None
            )
            child_base = (
                base_map.load_child(node_base, slot) if loc_base is not None else None
            )
            self._diff_nodes(base_map, child_new, child_base, level - 1, diff)

    @staticmethod
    def _chunk_changed(loc_new: Locator, loc_base: Optional[Locator]) -> bool:
        if loc_base is None:
            return True
        if loc_new.hash_value and loc_base.hash_value:
            # Content comparison by digest: a chunk the cleaner merely
            # relocated keeps its hash and is correctly not reported.
            return loc_new.hash_value != loc_base.hash_value
        return loc_new != loc_base

    @staticmethod
    def _collect_ids(
        source_map: LocationMap, node: Optional[MapNode], into: List[int]
    ) -> None:
        if node is None:
            return
        for chunk_id, _locator in source_map._iterate_node(node):
            into.append(chunk_id)
