"""The log cleaner: reclaims segments holding mostly obsolete data.

When a chunk is rewritten or deallocated, its previous version in the log
becomes dead.  The cleaner picks the non-tail segments with the fewest
live bytes, copies their surviving payloads to the log tail, and recycles
them.  Per the paper (section 3.2.1), cleaning work per pass is bounded;
if bounded cleaning cannot free space, the store simply grows instead,
which keeps per-commit latency predictable at the cost of database size.

Key mechanics:

* Live chunk payloads are detected by structural parsing of the victim
  segment plus a location-map probe: a payload is live iff the map still
  points exactly at it.  Relocated ciphertext is copied verbatim (its
  digest, and hence the Merkle tree, does not change) inside a durable
  *cleaner commit*, so a crash can never lose relocated data.
* Live location-map nodes found in a victim are marked dirty instead;
  the checkpoint that follows rewrites them at the tail.
* A victim is only recycled once its accounted live bytes reach zero —
  if an attacker corrupted the segment so badly that live data became
  unreachable, the mismatch leaves the segment in place rather than
  destroying data silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, Tuple

from repro.chunkstore.format import (
    CommitBody,
    MapNodeBody,
    RecordKind,
)
from repro.chunkstore.segments import SegmentInfo, segment_file_name
from repro.errors import ChunkStoreError

__all__ = ["Cleaner", "CleanerStats"]


@dataclass
class CleanerStats:
    """Counters exposed through the store's stats()."""

    passes: int = 0
    segments_freed: int = 0
    bytes_copied: int = 0
    chunks_relocated: int = 0
    map_nodes_relocated: int = 0
    victims_skipped: int = 0


@dataclass
class _VictimScan:
    live_chunks: List[Tuple[int, bytes]] = field(default_factory=list)
    live_map_nodes: int = 0
    parse_complete: bool = True


class Cleaner:
    """Bounded-cost cleaning passes over a chunk store's segments."""

    def __init__(self, store) -> None:
        self.store = store
        self.stats = CleanerStats()

    def clean_pass(self, max_segments: int) -> int:
        """Attempt to recycle up to ``max_segments`` victims; return count freed."""
        if max_segments <= 0:
            return 0
        self.stats.passes += 1
        victims = self._select_victims(max_segments)
        if not victims:
            return 0

        relocated: List[Tuple[int, bytes]] = []
        map_nodes_dirtied = 0
        for info in victims:
            scan = self._scan_victim(info)
            relocated.extend(scan.live_chunks)
            map_nodes_dirtied += scan.live_map_nodes

        if relocated:
            self.store.commit_raw_payloads(relocated)
            self.stats.chunks_relocated += len(relocated)
            self.stats.bytes_copied += sum(len(payload) for _, payload in relocated)
        if map_nodes_dirtied:
            self.stats.map_nodes_relocated += map_nodes_dirtied
            self.store.checkpoint()

        freed = 0
        for info in victims:
            current = self.store.segments.segments.get(info.number)
            if current is None or current.is_free:
                continue
            if current.live_bytes == 0 and not current.is_tail:
                self.store.segments.free_segment(info.number)
                freed += 1
            else:
                # Deferred dead bytes (snapshots, pending nondurable
                # retirements) or unreachable "live" data: leave the
                # segment for a later pass rather than risk data loss.
                self.stats.victims_skipped += 1
        self.stats.segments_freed += freed
        return freed

    # -- victim selection ----------------------------------------------------------

    def _select_victims(self, max_segments: int) -> List[SegmentInfo]:
        pinned: Set[int] = set()
        for snapshot in self.store.active_snapshots():
            pinned.update(snapshot.pinned_segments)
        victims = []
        for info in self.store.segments.cleanable_segments():
            if info.number in pinned:
                continue
            if info.dead_bytes == 0 and info.live_bytes > 0:
                # Fully live segments gain nothing; with the victim list
                # sorted by live bytes everything after is fully live too.
                break
            victims.append(info)
            if len(victims) >= max_segments:
                break
        return victims

    # -- victim scanning -------------------------------------------------------------

    def _scan_victim(self, info: SegmentInfo) -> _VictimScan:
        """Structurally parse a victim segment and find its live payloads.

        No chain verification is possible mid-log; safety comes from the
        map probe (only payloads the Merkle-backed map points at are
        copied) and from the live-bytes cross-check before recycling.
        """
        store = self.store
        codec = store.codec
        result = _VictimScan()
        try:
            data = store.untrusted.read(segment_file_name(info.number))
        except Exception as exc:  # file vanished: nothing live can be saved
            raise ChunkStoreError(
                f"victim segment {info.number} is unreadable: {exc}"
            ) from exc
        offset = 0
        while offset + codec.header_size <= len(data):
            try:
                kind, body_len = codec.parse_header(
                    data[offset:offset + codec.header_size]
                )
            except ChunkStoreError:
                result.parse_complete = False
                break
            total = codec.record_size(body_len)
            if offset + total > len(data):
                result.parse_complete = False
                break
            body = data[offset + codec.header_size:offset + codec.header_size + body_len]
            if kind == RecordKind.COMMIT:
                self._scan_commit(info.number, offset, body, result)
            elif kind == RecordKind.MAP_NODE:
                self._scan_map_node(info.number, offset, body, result)
            offset += total
        return result

    def _scan_commit(
        self, segment: int, record_offset: int, body: bytes, result: _VictimScan
    ) -> None:
        try:
            commit = CommitBody.decode(body, self.store.codec.header_size)
        except ChunkStoreError:
            result.parse_complete = False
            return
        for item, rel_offset in zip(commit.writes, commit.payload_offsets):
            absolute = record_offset + rel_offset
            current = self.store.location_map.lookup(item.chunk_id)
            if (
                current is not None
                and current.segment == segment
                and current.offset == absolute
                and current.length == len(item.payload)
            ):
                result.live_chunks.append((item.chunk_id, item.payload))

    def _scan_map_node(
        self, segment: int, record_offset: int, body: bytes, result: _VictimScan
    ) -> None:
        try:
            node_body = MapNodeBody.decode(body, self.store.codec.header_size)
        except ChunkStoreError:
            result.parse_complete = False
            return
        absolute = record_offset + node_body.payload_offset
        dirtied = self.store.location_map.relocate_node_if_current(
            node_body.level,
            node_body.index,
            segment,
            absolute,
            len(node_body.payload),
        )
        if dirtied:
            result.live_map_nodes += 1
