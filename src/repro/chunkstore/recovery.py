"""Residual-log scanning for crash recovery.

After the master record is loaded, everything the master does not already
describe lives in the *residual log*: the records appended since the last
checkpoint.  The scanner walks them in order, re-deriving the hash chain
from the master's anchor, and classifies how the log ends:

* a record that extends past the end of its segment file is a **torn
  tail** — an interrupted append; scanning stops and the tail is
  discarded (this is the expected shape of a crash),
* a complete record whose tag fails to verify is **tampering** (with the
  security profile on) and recovery refuses to proceed,
* otherwise the log simply ends at the end of the tail segment file.

The store then applies the scanned commits *up to the last durable one*;
everything after it — nondurable commits, a half-finished checkpoint — is
discarded and physically truncated, which is exactly the paper's
nondurable-commit guarantee (section 3.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Union

from repro.chunkstore.format import (
    CheckpointBody,
    CommitBody,
    LinkBody,
    MapNodeBody,
    RecordCodec,
    RecordKind,
    SegHeaderBody,
)
from repro.chunkstore.segments import segment_file_name
from repro.errors import ChunkStoreError, TamperDetectedError
from repro.platform.untrusted import UntrustedStore

__all__ = ["ScannedRecord", "ScanResult", "scan_residual_log"]

Body = Union[CommitBody, MapNodeBody, CheckpointBody, SegHeaderBody, LinkBody]


@dataclass
class ScannedRecord:
    """One chain-valid record found in the residual log."""

    kind: int
    body: Body
    segment: int
    offset: int
    total_size: int
    chain_after: bytes

    @property
    def end_offset(self) -> int:
        return self.offset + self.total_size


@dataclass
class ScanResult:
    """Everything learned from one pass over the residual log."""

    records: List[ScannedRecord]
    segments_opened: List[int]  # segment numbers whose SEG_HEADER we saw
    end_segment: int
    end_offset: int
    stop_reason: Optional[str] = None  # tolerant scans: why scanning stopped


def scan_residual_log(
    untrusted: UntrustedStore,
    codec: RecordCodec,
    start_segment: int,
    start_offset: int,
    hash_size: int,
    tolerant: bool = False,
) -> ScanResult:
    """Scan and verify the residual log starting at the anchor.

    ``codec`` must be primed with the master's chain anchor; it is
    advanced record by record.  Raises :class:`TamperDetectedError` on a
    complete-but-invalid record under the secure profile — unless
    ``tolerant`` is set (the salvage path), in which case scanning stops
    at the first invalid record and the chain-valid prefix is returned
    with ``stop_reason`` describing what ended it.
    """
    records: List[ScannedRecord] = []
    segments_opened: List[int] = []
    visited: Set[int] = set()
    segment = start_segment
    offset = start_offset

    def stopped(reason: str) -> ScanResult:
        return ScanResult(
            records=records,
            segments_opened=segments_opened,
            end_segment=segment,
            end_offset=offset,
            stop_reason=reason,
        )

    file_name = segment_file_name(segment)
    if not untrusted.exists(file_name):
        if tolerant:
            return stopped(f"anchor segment {segment} is missing")
        raise TamperDetectedError(f"anchor segment {segment} is missing")
    visited.add(segment)
    data = untrusted.read(file_name)
    if start_offset > len(data):
        # The master was written after the log bytes it anchors were
        # forced to disk; a file shorter than the anchor means the log
        # was truncated behind the master's back.
        if tolerant:
            return stopped(
                f"anchor segment {segment} shorter than the master's anchor"
            )
        raise TamperDetectedError(
            f"anchor segment {segment} is shorter ({len(data)} bytes) than "
            f"the master's log anchor ({start_offset}): log truncated"
        )

    while True:
        if offset >= len(data):
            break
        remaining = len(data) - offset
        if remaining < codec.header_size:
            break  # torn header at the tail
        try:
            kind, body_len = codec.parse_header(data[offset:offset + codec.header_size])
        except ChunkStoreError as exc:
            if codec.secure:
                if tolerant:
                    return stopped(
                        f"unparseable record header in segment {segment} at {offset}"
                    )
                raise TamperDetectedError(
                    f"unparseable record header in segment {segment} at {offset}"
                ) from exc
            break
        total = codec.record_size(body_len)
        if offset + total > len(data):
            break  # torn record at the tail: the append was interrupted
        record_bytes = data[offset:offset + total]
        try:
            kind, body_bytes = codec.verify_and_advance(record_bytes)
        except TamperDetectedError:
            if codec.secure:
                if tolerant:
                    return stopped(
                        f"record in segment {segment} at {offset} failed validation"
                    )
                raise
            break  # CRC failure without an attacker model: treat as torn
        body = _decode_body(kind, body_bytes, codec.header_size, hash_size)
        records.append(
            ScannedRecord(
                kind=kind,
                body=body,
                segment=segment,
                offset=offset,
                total_size=total,
                chain_after=codec.chain,
            )
        )
        offset += total
        if kind == RecordKind.SEG_HEADER:
            if body.segment != segment:
                if tolerant:
                    return stopped(
                        f"segment {segment} carries a header for "
                        f"segment {body.segment}"
                    )
                raise TamperDetectedError(
                    f"segment {segment} carries a header for segment {body.segment}"
                )
            segments_opened.append(segment)
        if kind == RecordKind.LINK:
            next_segment = body.next_segment
            if next_segment in visited:
                if tolerant:
                    return stopped(
                        f"log links back to already-visited segment {next_segment}"
                    )
                raise TamperDetectedError(
                    f"log links back to already-visited segment {next_segment}"
                )
            next_name = segment_file_name(next_segment)
            if not untrusted.exists(next_name):
                # The link was written but the crash hit before the next
                # segment's header landed; the log effectively ends here.
                break
            visited.add(next_segment)
            segment = next_segment
            offset = 0
            data = untrusted.read(next_name)

    return ScanResult(
        records=records,
        segments_opened=segments_opened,
        end_segment=segment,
        end_offset=offset,
    )


def _decode_body(kind: int, body: bytes, header_size: int, hash_size: int) -> Body:
    if kind == RecordKind.COMMIT:
        return CommitBody.decode(body, header_size)
    if kind == RecordKind.MAP_NODE:
        return MapNodeBody.decode(body, header_size)
    if kind == RecordKind.CHECKPOINT:
        return CheckpointBody.decode(body, hash_size)
    if kind == RecordKind.SEG_HEADER:
        return SegHeaderBody.decode(body)
    if kind == RecordKind.LINK:
        return LinkBody.decode(body)
    raise ChunkStoreError(f"unhandled record kind {kind}")
