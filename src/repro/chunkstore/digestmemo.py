"""Chunk-digest memo: remember which payload versions already verified.

Every payload the store reads from untrusted media is hashed and
compared against the digest its Merkle parent holds.  That is the right
default — the media is untrusted — but it makes repeated integrity
walks (scrub after scrub, checkpoint-time re-verification) re-hash the
entire database even when nothing changed.  The memo records, per chunk
id and per map-node coordinate, the exact :class:`Locator` (segment,
offset, length, digest) whose bytes were last verified — either because
the store hashed what it read, or because the store itself produced the
bytes and their digest on a write.

A memo entry is valid only while the chunk's *current* locator equals
the remembered one: any rewrite moves the chunk in the log (a
log-structured store never overwrites in place), so stale entries
simply stop matching.  Repair and salvage drop the memo wholesale —
after media damage, nothing remembered about the old image can be
trusted.

Incremental scrub (``deep=False``) consults the memo; the default deep
scrub ignores it and re-verifies from media, because the memo cannot
know about bytes an attacker flipped *after* the last verification.
The trade-off is spelled out in DESIGN.md.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.chunkstore.format import Locator
from repro.perf import PerfStats

__all__ = ["DigestMemo"]


class DigestMemo:
    """Verified-digest cache keyed by chunk version.

    ``max_entries`` bounds memory: when full, new notes are dropped
    (they become misses on the next probe) rather than evicting —
    scrub repopulates in id order anyway, so partial coverage still
    skips that prefix of the tree.
    """

    def __init__(
        self, perf: Optional[PerfStats] = None, max_entries: int = 262144
    ) -> None:
        self._perf = perf
        self._max_entries = max_entries
        self._chunks: Dict[int, Locator] = {}
        self._nodes: Dict[Tuple[int, int], Locator] = {}

    def __len__(self) -> int:
        return len(self._chunks) + len(self._nodes)

    def _room(self) -> bool:
        return len(self._chunks) + len(self._nodes) < self._max_entries

    # -- chunks --------------------------------------------------------

    def note_chunk(self, chunk_id: int, locator: Locator) -> None:
        """Record that ``locator``'s bytes verified for ``chunk_id``."""
        if chunk_id in self._chunks or self._room():
            self._chunks[chunk_id] = locator

    def chunk_verified(self, chunk_id: int, locator: Locator) -> bool:
        """Whether the current version of ``chunk_id`` already verified."""
        hit = self._chunks.get(chunk_id) == locator
        if self._perf is not None:
            self._perf.record_memo(hit)
        return hit

    def invalidate_chunk(self, chunk_id: int) -> None:
        if self._chunks.pop(chunk_id, None) is not None and self._perf is not None:
            self._perf.record_memo_invalidation()

    # -- map nodes -----------------------------------------------------

    def note_node(self, level: int, index: int, locator: Locator) -> None:
        key = (level, index)
        if key in self._nodes or self._room():
            self._nodes[key] = locator

    def node_verified(self, level: int, index: int, locator: Locator) -> bool:
        hit = self._nodes.get((level, index)) == locator
        if self._perf is not None:
            self._perf.record_memo(hit)
        return hit

    def invalidate_node(self, level: int, index: int) -> None:
        if self._nodes.pop((level, index), None) is not None and self._perf is not None:
            self._perf.record_memo_invalidation()

    # -- wholesale -----------------------------------------------------

    def clear(self) -> None:
        """Forget everything (repair / salvage entry point)."""
        dropped = len(self)
        self._chunks.clear()
        self._nodes.clear()
        if dropped and self._perf is not None:
            self._perf.record_memo_invalidation(dropped)
