"""The master record: the trusted root of the whole database.

The master record lives at a known location in the untrusted store and
authenticates everything else: the location-map root locator (and hence,
transitively, every chunk), the hash-chain anchor of the residual log,
and the expected one-way counter value.  It is MACed with a key derived
from the secret store, so an attacker can neither forge one nor swap in
a stale one without tripping either the MAC or the counter check.

Updates are made atomic with two alternating files (``master-a`` /
``master-b``) carrying a generation number: the loader picks the valid
record with the highest generation, so a crash mid-write leaves the
previous master intact.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.chunkstore.format import FORMAT_VERSION, Locator
from repro.chunkstore.segments import SegmentInfo
from repro.errors import ChunkStoreError, RecoveryError, TamperDetectedError
from repro.platform.untrusted import UntrustedStore

__all__ = ["MasterRecord", "MasterIO", "MASTER_FILES"]

MASTER_FILES = ("master-a", "master-b")

_MAGIC = b"TDBMASTR"
_HEAD = struct.Struct(">8sHQ")          # magic, version, generation
_CONFIG = struct.Struct(">IHBB16s")     # segment_size, fanout, hash_size, secure, uuid
_STATE = struct.Struct(">BBQQQQ")       # depth, has_root, next_cid, seqno, counter, next_seg
_ANCHOR = struct.Struct(">IQ")          # anchor segment, anchor offset
_SEG = struct.Struct(">IQQQQB")         # number, accountable, dead, overhead, file_bytes, state
_CRC = struct.Struct(">I")


@dataclass
class MasterRecord:
    """Decoded master record contents."""

    generation: int
    db_uuid: bytes
    segment_size: int
    map_fanout: int
    hash_size: int
    secure: bool
    depth: int
    root: Optional[Locator]
    next_chunk_id: int
    commit_seqno: int
    expected_counter: int
    next_segment_number: int
    anchor_segment: int
    anchor_offset: int
    chain_anchor: bytes
    segments: List[SegmentInfo] = field(default_factory=list)

    def encode(self) -> bytes:
        parts = [
            _HEAD.pack(_MAGIC, FORMAT_VERSION, self.generation),
            _CONFIG.pack(
                self.segment_size,
                self.map_fanout,
                self.hash_size,
                1 if self.secure else 0,
                self.db_uuid,
            ),
            _STATE.pack(
                self.depth,
                1 if self.root is not None else 0,
                self.next_chunk_id,
                self.commit_seqno,
                self.expected_counter,
                self.next_segment_number,
            ),
        ]
        if self.root is not None:
            parts.append(self.root.encode(self.hash_size))
        parts.append(_ANCHOR.pack(self.anchor_segment, self.anchor_offset))
        parts.append(struct.pack(">H", len(self.chain_anchor)))
        parts.append(self.chain_anchor)
        parts.append(struct.pack(">I", len(self.segments)))
        for info in self.segments:
            parts.append(
                _SEG.pack(
                    info.number,
                    info.accountable_bytes,
                    info.dead_bytes,
                    info.overhead_bytes,
                    info.file_bytes,
                    info.state,
                )
            )
        return b"".join(parts)

    @classmethod
    def decode(cls, data: bytes) -> "MasterRecord":
        try:
            magic, version, generation = _HEAD.unpack_from(data, 0)
            if magic != _MAGIC:
                raise ChunkStoreError("bad master record magic")
            if version != FORMAT_VERSION:
                raise ChunkStoreError(f"unsupported master format version {version}")
            offset = _HEAD.size
            segment_size, fanout, hash_size, secure, db_uuid = _CONFIG.unpack_from(
                data, offset
            )
            offset += _CONFIG.size
            depth, has_root, next_cid, seqno, counter, next_seg = _STATE.unpack_from(
                data, offset
            )
            offset += _STATE.size
            root = None
            if has_root:
                root, offset = Locator.decode(data, offset, hash_size)
            anchor_segment, anchor_offset = _ANCHOR.unpack_from(data, offset)
            offset += _ANCHOR.size
            (chain_len,) = struct.unpack_from(">H", data, offset)
            offset += 2
            chain_anchor = bytes(data[offset:offset + chain_len])
            if len(chain_anchor) != chain_len:
                raise ChunkStoreError("truncated master chain anchor")
            offset += chain_len
            (n_segments,) = struct.unpack_from(">I", data, offset)
            offset += 4
            segments = []
            for _ in range(n_segments):
                (
                    number,
                    accountable,
                    dead,
                    overhead,
                    file_bytes,
                    state,
                ) = _SEG.unpack_from(data, offset)
                offset += _SEG.size
                segments.append(
                    SegmentInfo.with_state(
                        number, accountable, dead, overhead, file_bytes, state
                    )
                )
        except struct.error as exc:
            raise ChunkStoreError(f"malformed master record: {exc}") from exc
        return cls(
            generation=generation,
            db_uuid=db_uuid,
            segment_size=segment_size,
            map_fanout=fanout,
            hash_size=hash_size,
            secure=bool(secure),
            depth=depth,
            root=root,
            next_chunk_id=next_cid,
            commit_seqno=seqno,
            expected_counter=counter,
            next_segment_number=next_seg,
            anchor_segment=anchor_segment,
            anchor_offset=anchor_offset,
            chain_anchor=chain_anchor,
            segments=segments,
        )


class MasterIO:
    """Reads and writes the two master files with authentication."""

    def __init__(self, untrusted: UntrustedStore, mac=None) -> None:
        self.untrusted = untrusted
        self._mac = mac  # None => insecure profile, CRC only

    def _seal(self, body: bytes) -> bytes:
        if self._mac is not None:
            tag = self._mac.tag(body)
        else:
            tag = _CRC.pack(zlib.crc32(body) & 0xFFFFFFFF)
        return struct.pack(">I", len(body)) + body + tag

    def _unseal(self, blob: bytes) -> bytes:
        if len(blob) < 4:
            raise ChunkStoreError("master file too short")
        (body_len,) = struct.unpack_from(">I", blob, 0)
        body = blob[4:4 + body_len]
        if len(body) != body_len:
            raise ChunkStoreError("master file truncated")
        tag = blob[4 + body_len:]
        if self._mac is not None:
            if not self._mac.verify(body, tag[:self._mac.tag_size]):
                raise TamperDetectedError("master record authentication failed")
        else:
            if tag[:_CRC.size] != _CRC.pack(zlib.crc32(body) & 0xFFFFFFFF):
                raise TamperDetectedError("master record checksum failed")
        return body

    def write(self, record: MasterRecord, sync: bool = True) -> None:
        """Write ``record`` to the slot its generation selects."""
        name = MASTER_FILES[record.generation % 2]
        blob = self._seal(record.encode())
        if self.untrusted.exists(name):
            self.untrusted.truncate(name, 0)
        self.untrusted.write(name, 0, blob)
        if sync:
            self.untrusted.sync(name)

    def load_latest(self) -> MasterRecord:
        """Return the valid master record with the highest generation.

        A single unreadable slot is tolerated (it may be a torn write of
        the newer generation); if both slots are bad the database is
        unrecoverable and the error distinguishes tampering from absence.
        """
        candidates: List[Tuple[int, MasterRecord]] = []
        tamper_evidence: Optional[TamperDetectedError] = None
        found_any = False
        for name in MASTER_FILES:
            if not self.untrusted.exists(name):
                continue
            found_any = True
            try:
                record = MasterRecord.decode(self._unseal(self.untrusted.read(name)))
            except TamperDetectedError as exc:
                tamper_evidence = exc
                continue
            except ChunkStoreError:
                continue
            candidates.append((record.generation, record))
        if not found_any:
            raise RecoveryError(
                "no master record found; the store was never formatted here"
            )
        if not candidates:
            if tamper_evidence is not None:
                raise TamperDetectedError(
                    "both master records failed validation"
                ) from tamper_evidence
            raise RecoveryError("both master records are unreadable")
        candidates.sort(key=lambda pair: pair[0])
        return candidates[-1][1]
