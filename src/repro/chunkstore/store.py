"""The :class:`ChunkStore` facade (Figure 2 of the paper, and then some).

Public operations::

    store = ChunkStore.format(untrusted, secret, counter, config)   # new db
    store = ChunkStore.open(untrusted, secret, counter, config)     # recover

    cid = store.allocate_chunk_id()
    store.write(cid, b"state")            # single-op durable commit
    store.commit({cid: b"new"}, deallocs=[old_cid], durable=False)  # batch
    data = store.read(cid)
    store.deallocate(cid)

    snap = store.snapshot()               # copy-on-write backup view
    store.checkpoint()                    # flush location map + master
    store.clean()                         # explicit cleaner pass
    store.close()

Security behaviour: with the secure profile every payload is encrypted,
every record is covered by the residual-log hash chain and MACed, the
master record binds the Merkle root to the one-way counter, and
``open()`` raises :class:`TamperDetectedError` / :class:`ReplayDetectedError`
when the untrusted store does not check out.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.cache import SharedLruCache
from repro.chunkstore.cleaner import Cleaner, CleanerStats
from repro.chunkstore.format import (
    CheckpointBody,
    CommitBody,
    CommitItem,
    Locator,
    MapNodeBody,
    RecordCodec,
    RecordKind,
)
from repro.chunkstore.locmap import LocationMap, MapNode, NodeIO
from repro.chunkstore.master import MasterIO, MasterRecord, MASTER_FILES
from repro.chunkstore.recovery import scan_residual_log
from repro.chunkstore.scrub import DamageReport, scrub_store
from repro.chunkstore.segments import SegmentInfo, SegmentManager, segment_file_name
from repro.chunkstore.digestmemo import DigestMemo
from repro.chunkstore.snapshot import Snapshot
from repro.config import ChunkStoreConfig
from repro.crypto import (
    DigestPool,
    InstrumentedHashEngine,
    InstrumentedPayloadCipher,
    create_hash_engine,
    create_mac,
    create_payload_cipher,
)
from repro.errors import (
    ChunkNotFoundError,
    ChunkStoreError,
    ReadOnlyStoreError,
    RecoveryError,
    ReplayDetectedError,
    SalvageReadOnlyError,
    TamperDetectedError,
    TDBError,
)
from repro.perf import PerfStats
from repro.platform.counter import OneWayCounter
from repro.platform.secret import SecretStore
from repro.platform.untrusted import UntrustedStore
from repro.proofs.headlog import TransparencyLog

__all__ = [
    "ChunkStore",
    "ChunkStoreStats",
    "SalvageInfo",
    "SegmentExportInfo",
    "ShipmentAnchor",
]


@dataclass(frozen=True)
class SegmentExportInfo:
    """One live segment's shippable extent at shipment-anchor time."""

    number: int
    file_bytes: int
    is_tail: bool


@dataclass
class ShipmentAnchor:
    """Everything a replication shipment needs, captured atomically.

    ``snapshot`` pins every listed segment against the cleaner until the
    holder releases it; ``segments`` records each segment's size as of
    the anchoring checkpoint — bytes below that size are immutable
    (sealed segments never change, the tail only grows past it), so they
    can be streamed without further locking.
    """

    snapshot: "Snapshot"
    db_uuid: bytes
    generation: int
    commit_seqno: int
    expected_counter: int
    master_name: str
    master_blob: bytes
    segments: List[SegmentExportInfo]


@dataclass
class ChunkStoreStats:
    """Point-in-time statistics reported by :meth:`ChunkStore.stats`."""

    live_bytes: int
    capacity_bytes: int
    utilization: float
    db_file_bytes: int
    segment_count: int
    free_slots: int
    residual_bytes: int
    commit_seqno: int
    counter_value: int
    next_chunk_id: int
    commits_total: int
    durable_commits_total: int
    checkpoints_total: int
    cleaner: CleanerStats = field(default_factory=CleanerStats)
    possible_lost_commit: bool = False


@dataclass
class SalvageInfo:
    """What a read-only salvage open managed to reconstruct.

    Salvage never raises for damage it can route around; instead the
    anomalies land here so an exporting application can judge how much
    to trust what it reads.
    """

    counter_expected: int
    counter_actual: int
    commits_applied: int
    commits_discarded: int
    scan_stop_reason: Optional[str] = None
    apply_stop_reason: Optional[str] = None

    @property
    def counter_skew(self) -> int:
        return self.counter_actual - self.counter_expected

    @property
    def replay_suspected(self) -> bool:
        """The image is older than the hardware counter says it should be."""
        return self.counter_actual > self.counter_expected

    @property
    def degraded(self) -> bool:
        return bool(
            self.scan_stop_reason
            or self.apply_stop_reason
            or self.counter_skew
            or self.commits_discarded
        )


class _RetireEvent:
    """A dead-space credit waiting on snapshot releases / durability."""

    __slots__ = ("segment", "nbytes", "refs")

    def __init__(self, segment: int, nbytes: int, refs: int) -> None:
        self.segment = segment
        self.nbytes = nbytes
        self.refs = refs


class _StoreNodeIO(NodeIO):
    """Loads and appends location-map nodes on behalf of the map."""

    def __init__(self, store: "ChunkStore") -> None:
        self.store = store

    def load_node(self, locator: Locator, level: int, index: int) -> MapNode:
        plaintext = self.store.read_payload(locator)
        node = MapNode.deserialize(plaintext, self.store.hash_size)
        if (node.level, node.index) != (level, index):
            raise TamperDetectedError(
                f"map node identity mismatch: stored ({node.level}, {node.index}),"
                f" expected ({level}, {index})"
            )
        if self.store.digest_memo is not None:
            self.store.digest_memo.note_node(level, index, locator)
        return node

    def append_node(self, level: int, index: int, plaintext: bytes) -> Locator:
        return self.store._append_map_node(level, index, plaintext)


class ChunkStore:
    """Trusted storage for named chunks over an untrusted store."""

    def __init__(self, *args, **kwargs) -> None:
        raise ChunkStoreError(
            "use ChunkStore.format(...) or ChunkStore.open(...) to construct"
        )

    @classmethod
    def _new(
        cls,
        untrusted: UntrustedStore,
        secret_store: SecretStore,
        counter: OneWayCounter,
        config: ChunkStoreConfig,
        cache: Optional[SharedLruCache],
    ) -> "ChunkStore":
        self = object.__new__(cls)
        self.untrusted = untrusted
        self.secret_store = secret_store
        self.counter = counter
        self.config = config
        self.secure = config.security.enabled
        self.perf = PerfStats()
        if self.secure:
            self.hash_engine = InstrumentedHashEngine(
                create_hash_engine(config.security.hash_name), self.perf
            )
            self.hash_size = self.hash_engine.digest_size
            self._cipher_key = secret_store.derive_key("tdb-chunk-encryption", 32)
            self._cipher_kernel = config.security.resolved_kernel
            self.cipher = InstrumentedPayloadCipher(
                create_payload_cipher(
                    config.security.cipher_name,
                    self._cipher_key,
                    kernel=self._cipher_kernel,
                ),
                self.perf,
            )
            self._record_mac = create_mac(
                secret_store.derive_key("tdb-log-mac", 32), config.security.hash_name
                if config.security.hash_name in ("sha1", "sha256") else "sha1"
            )
            self._master_mac = create_mac(
                secret_store.derive_key("tdb-master-mac", 32), "sha256"
            )
        else:
            self.hash_engine = None
            self.hash_size = 0
            self._cipher_key = b""
            self._cipher_kernel = config.security.resolved_kernel
            self.cipher = create_payload_cipher("null", b"")
            self._record_mac = None
            self._master_mac = None
        self.digest_pool = DigestPool(
            max_workers=config.security.pool_workers, perf=self.perf
        )
        self.digest_memo: Optional[DigestMemo] = (
            DigestMemo(self.perf)
            if self.secure and config.security.digest_memo
            else None
        )
        untrusted.stats.attach_section("perf", self.perf.as_dict)
        self.cache = cache or SharedLruCache(config.map_cache_entries * 4096)
        self.node_io = _StoreNodeIO(self)
        self.master_io = MasterIO(untrusted, self._master_mac)
        self.cleaner = Cleaner(self)
        self._lock = threading.RLock()
        self._closed = False
        self._seqno = 0
        self._counter_value = 0
        self._next_cid = 0
        self._free_cids: List[int] = []
        self._pending_cids: set = set()
        self._generation = 0
        self._db_uuid = b"\x00" * 16
        self._residual_bytes = 0
        self._snapshots: Dict[int, Snapshot] = {}
        self._snapshot_pending: Dict[int, List[_RetireEvent]] = {}
        self._nondurable_pending: List[_RetireEvent] = []
        self._next_snapshot_id = 1
        self._commits_total = 0
        self._durable_commits_total = 0
        self._checkpoints_total = 0
        self._app_payload_bytes = 0
        self._compaction_mark = 0
        self.possible_lost_commit = False
        self._salvage = False
        self._read_only = False
        self.salvage_info: Optional[SalvageInfo] = None
        self.transparency: Optional[TransparencyLog] = None
        return self

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def format(
        cls,
        untrusted: UntrustedStore,
        secret_store: SecretStore,
        counter: OneWayCounter,
        config: Optional[ChunkStoreConfig] = None,
        cache: Optional[SharedLruCache] = None,
    ) -> "ChunkStore":
        """Create a fresh database; the untrusted store must be empty."""
        config = config or ChunkStoreConfig()
        leftovers = [
            name
            for name in untrusted.list_files()
            if name in MASTER_FILES or name.startswith("seg-")
        ]
        if leftovers:
            raise ChunkStoreError(
                f"untrusted store already holds a database: {leftovers[:4]}"
            )
        self = cls._new(untrusted, secret_store, counter, config, cache)
        self._db_uuid = os.urandom(16)
        genesis = (
            self.hash_engine.digest(b"tdb-genesis" + self._db_uuid)
            if self.secure
            else b""
        )
        self.codec = RecordCodec(self.hash_engine, self._record_mac, chain=genesis)
        self.segments = SegmentManager(untrusted, self.codec, config.segment_size)
        self.segments.sync_enabled = config.fsync
        self.location_map = LocationMap(
            node_io=self.node_io,
            fanout=config.map_fanout,
            hash_size=self.hash_size,
            cache=self.cache,
        )
        self.segments.create_first_segment()
        if config.initial_segments > 1:
            self.segments.preallocate_free_slots(config.initial_segments - 1)
        self._counter_value = counter.read() if self.secure else 0
        if self.secure:
            self.transparency = TransparencyLog.create(
                untrusted, secret_store, self._db_uuid, self.hash_size
            )
        self.checkpoint(force=True)
        return self

    @classmethod
    def open(
        cls,
        untrusted: UntrustedStore,
        secret_store: SecretStore,
        counter: OneWayCounter,
        config: Optional[ChunkStoreConfig] = None,
        cache: Optional[SharedLruCache] = None,
        read_only: bool = False,
    ) -> "ChunkStore":
        """Open an existing database, recovering from the residual log.

        With ``read_only=True`` (replication: serving a verified shipped
        image) the open performs the *same* full-trust recovery and
        counter check as a writable open — a checkpoint-anchored image
        replays nothing and touches no media — but afterwards every
        mutating operation raises :class:`ReadOnlyStoreError` and
        ``close()``/``scrub()`` write no checkpoint, so the image stays
        byte-identical to what was verified.
        """
        config = config or ChunkStoreConfig()
        self = cls._new(untrusted, secret_store, counter, config, cache)
        master = self.master_io.load_latest()
        self._validate_master_config(master)
        self._db_uuid = master.db_uuid
        self._generation = master.generation
        self.codec = RecordCodec(
            self.hash_engine, self._record_mac, chain=master.chain_anchor
        )
        self.segments = SegmentManager(untrusted, self.codec, config.segment_size)
        self.segments.sync_enabled = config.fsync
        self.location_map = LocationMap(
            node_io=self.node_io,
            fanout=config.map_fanout,
            hash_size=self.hash_size,
            cache=self.cache,
            depth=master.depth,
            root_locator=master.root,
        )
        self._replay(master)
        # Replay/counter checks first: a stale whole-image replay must
        # surface as ReplayDetectedError, not as a head-log anomaly.
        self._attach_transparency(master, read_only)
        self._read_only = read_only
        return self

    @classmethod
    def open_salvage(
        cls,
        untrusted: UntrustedStore,
        secret_store: SecretStore,
        counter: OneWayCounter,
        config: Optional[ChunkStoreConfig] = None,
        cache: Optional[SharedLruCache] = None,
    ) -> "ChunkStore":
        """Open a possibly damaged database read-only, best effort.

        Unlike :meth:`open`, salvage never mutates the media (no tail
        truncation, no segment reconciliation, no counter resync) and
        never raises for damage it can route around: a bad residual-log
        record degrades to the chain-valid prefix, a counter mismatch is
        recorded in :attr:`salvage_info` instead of raising.  Every chunk
        whose Merkle path still verifies is readable; damaged ones keep
        raising on access and are enumerated by :meth:`scrub`.

        Only a usable master record is required — with both master
        copies gone there is no root of trust left to serve anything
        from, and :class:`RecoveryError`/:class:`TamperDetectedError`
        propagates.
        """
        config = config or ChunkStoreConfig()
        self = cls._new(untrusted, secret_store, counter, config, cache)
        self._salvage = True
        # Salvage trusts nothing it has not just re-verified: no memo,
        # every scrub is a deep scrub.
        self.digest_memo = None
        master = self.master_io.load_latest()
        self._validate_master_config(master)
        self._db_uuid = master.db_uuid
        self._generation = master.generation
        self.codec = RecordCodec(
            self.hash_engine, self._record_mac, chain=master.chain_anchor
        )
        self.segments = SegmentManager(untrusted, self.codec, config.segment_size)
        self.segments.sync_enabled = False
        self.location_map = LocationMap(
            node_io=self.node_io,
            fanout=config.map_fanout,
            hash_size=self.hash_size,
            cache=self.cache,
            depth=master.depth,
            root_locator=master.root,
        )
        self._replay_readonly(master)
        return self

    def _validate_master_config(self, master: MasterRecord) -> None:
        if master.segment_size != self.config.segment_size:
            raise ChunkStoreError(
                f"segment size mismatch: store {master.segment_size}, "
                f"config {self.config.segment_size}"
            )
        if master.map_fanout != self.config.map_fanout:
            raise ChunkStoreError(
                f"map fanout mismatch: store {master.map_fanout}, "
                f"config {self.config.map_fanout}"
            )
        if master.secure != self.secure:
            raise ChunkStoreError(
                "security profile mismatch between store and configuration"
            )
        if master.hash_size != self.hash_size:
            raise ChunkStoreError(
                f"hash size mismatch: store {master.hash_size}, "
                f"config {self.hash_size}"
            )

    def _attach_transparency(self, master: MasterRecord, read_only: bool) -> None:
        """Load, verify, and catch up the signed head log at open.

        The head is appended *after* the master reaches the media, so a
        crash can only leave the log lagging (or with a torn tail) —
        never ahead.  A writable open therefore treats a tip newer than
        the master as a rolled-back database image, and a same-
        generation tip must match the master exactly.  Read-only opens
        (replicas serving verified shipped images) only load: the
        applier mirrors the primary's log and cross-checks it itself,
        and a replica image staged without a log is still trustworthy
        through the sidecar checks.
        """
        if not self.secure:
            return
        if not TransparencyLog.exists(self.untrusted):
            if read_only:
                return
            # Upgrade path: a database formatted before head logging.
            self.transparency = TransparencyLog.create(
                self.untrusted, self.secret_store, self._db_uuid, self.hash_size
            )
            self._append_head(master)
            return
        log = TransparencyLog.load(
            self.untrusted,
            self.secret_store,
            self._db_uuid,
            self.hash_size,
            writable=not read_only,
        )
        self.transparency = log
        tip = log.tip()
        if read_only:
            return
        if tip is not None and tip.generation > master.generation:
            # Two ways the log can lead the master: the image was rolled
            # back (tampering), or the newest master copy was lost and
            # the dual-master fallback engaged.  The counter check above
            # already ruled out lost commits, so if this exact master is
            # on the signed history the fallback is benign — drop the
            # orphaned newer heads and re-sign from here.
            anchor = log.entry_for_generation(master.generation)
            expected_root = (
                master.root.hash_value
                if master.root is not None
                else bytes(self.hash_size)
            )
            if (
                anchor is None
                or anchor.seqno != master.commit_seqno
                or anchor.depth != master.depth
                or anchor.root_digest != expected_root
                or anchor.empty_root != (master.root is None)
            ):
                raise TamperDetectedError(
                    f"head log tip is generation {tip.generation} but the "
                    f"master record is generation {master.generation}: the "
                    "database image was rolled back"
                )
            log.truncate_to(anchor.index)
            return
        if tip is not None and tip.generation == master.generation:
            expected_root = (
                master.root.hash_value
                if master.root is not None
                else bytes(self.hash_size)
            )
            if (
                tip.seqno != master.commit_seqno
                or tip.depth != master.depth
                or tip.root_digest != expected_root
                or tip.empty_root != (master.root is None)
            ):
                raise TamperDetectedError(
                    f"head log tip for generation {tip.generation} does "
                    "not match the master record it claims to sign"
                )
            return
        # The log lags (crash between master write and head append, or
        # a torn head append): catch up from the authenticated master.
        self._append_head(master)

    def _append_head(self, master: MasterRecord) -> None:
        self.transparency.append(
            generation=master.generation,
            seqno=master.commit_seqno,
            counter=master.expected_counter,
            depth=master.depth,
            root_digest=(
                master.root.hash_value if master.root is not None else None
            ),
        )

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def _replay(self, master: MasterRecord) -> None:
        # Adopt the segment table as of the last checkpoint; files are
        # reconciled against it after the residual log is applied.
        self.segments.segments = {
            info.number: SegmentInfo(
                number=info.number,
                accountable_bytes=info.accountable_bytes,
                dead_bytes=info.dead_bytes,
                overhead_bytes=info.overhead_bytes,
                file_bytes=info.file_bytes,
                is_tail=info.is_tail,
                is_free=info.is_free,
            )
            for info in master.segments
        }
        scan = scan_residual_log(
            self.untrusted,
            self.codec,
            master.anchor_segment,
            master.anchor_offset,
            self.hash_size,
        )
        # Find the last durable commit: everything after it is discarded,
        # which implements the nondurable-commit guarantee.
        cutoff = -1
        for idx, record in enumerate(scan.records):
            if record.kind == RecordKind.COMMIT and record.body.durable:
                cutoff = idx
        applied = scan.records[:cutoff + 1]

        self._seqno = master.commit_seqno
        self._counter_value = master.expected_counter
        self._next_cid = master.next_chunk_id
        tail_segment = master.anchor_segment
        tail_offset = master.anchor_offset
        chain_at_cutoff = master.chain_anchor
        residual = {master.anchor_segment}

        for record in applied:
            info = self.segments.segments.get(record.segment)
            if record.kind == RecordKind.SEG_HEADER:
                if info is None:
                    info = SegmentInfo(number=record.segment)
                    self.segments.segments[record.segment] = info
                else:
                    info.reset_for_reuse()
            if info is None:
                raise RecoveryError(
                    f"residual log touches unknown segment {record.segment}"
                )
            info.file_bytes = max(info.file_bytes, record.end_offset)
            payload_bytes = 0
            if record.kind == RecordKind.COMMIT:
                payload_bytes = sum(len(item.payload) for item in record.body.writes)
                self._apply_commit(record)
                self._seqno = max(self._seqno, record.body.seqno)
                self._counter_value = max(
                    self._counter_value, record.body.expected_counter
                )
                self._next_cid = max(self._next_cid, record.body.next_chunk_id)
            info.overhead_bytes += record.total_size - payload_bytes
            residual.add(record.segment)
            tail_segment = record.segment
            tail_offset = record.end_offset
            chain_at_cutoff = record.chain_after

        # Discard segments opened after the cutoff (their headers belong
        # to records we are dropping).
        applied_set = {id(record) for record in applied}
        for record in scan.records[cutoff + 1:]:
            if record.kind == RecordKind.SEG_HEADER:
                number = record.body.segment
                info = self.segments.segments.get(number)
                name = segment_file_name(number)
                if info is not None and not info.is_tail:
                    # It was a recycled free slot before the crash.
                    info.reset_for_reuse()
                    info.is_free = True
                    if self.untrusted.exists(name):
                        self.untrusted.truncate(name, 0)
                elif info is None and self.untrusted.exists(name):
                    self.untrusted.delete(name)

        self.codec.chain = chain_at_cutoff
        next_number = max(
            [master.next_segment_number]
            + [number + 1 for number in self.segments.segments]
        )
        self.segments.restore(
            list(self.segments.segments.values()),
            tail_segment,
            tail_offset,
            next_number,
            residual,
        )
        self._reconcile_segments()
        self._check_counter()

    def _digest_payload(self, data: bytes) -> bytes:
        """Content digest of a chunk or map-node payload.

        Every call re-hashes payload bytes, so the ``payload_digests``
        counter is exactly the store's "chunk re-hash" count — the
        number the digest memo exists to drive to zero on clean
        subtrees.
        """
        self.perf.incr("payload_digests")
        return self.hash_engine.digest(data)

    def _apply_commit(self, record) -> None:
        body: CommitBody = record.body
        for item, rel_offset in zip(body.writes, body.payload_offsets):
            locator = Locator(
                segment=record.segment,
                offset=record.offset + rel_offset,
                length=len(item.payload),
                hash_value=(
                    self._digest_payload(item.payload) if self.secure else b""
                ),
            )
            info = self.segments.segments[record.segment]
            info.accountable_bytes += len(item.payload)
            old = self.location_map.set(item.chunk_id, locator)
            if old is not None:
                self.segments.mark_dead(old.segment, old.length)
            if self.digest_memo is not None:
                # The payload came out of the chain-authenticated
                # residual log, so its digest is trustworthy.
                self.digest_memo.note_chunk(item.chunk_id, locator)
        for chunk_id in body.deallocs:
            old = self.location_map.remove(chunk_id)
            if old is not None:
                self.segments.mark_dead(old.segment, old.length)
            if self.digest_memo is not None:
                self.digest_memo.invalidate_chunk(chunk_id)

    def _replay_readonly(self, master: MasterRecord) -> None:
        """Salvage-mode replay: best-effort, never touches the media.

        Applies the chain-valid residual-log prefix up to the last
        durable commit, stopping (not raising) at the first record the
        damaged map cannot absorb, and records every anomaly — including
        one-way-counter skew — in :attr:`salvage_info`.
        """
        self.segments.segments = {
            info.number: SegmentInfo(
                number=info.number,
                accountable_bytes=info.accountable_bytes,
                dead_bytes=info.dead_bytes,
                overhead_bytes=info.overhead_bytes,
                file_bytes=info.file_bytes,
                is_tail=info.is_tail,
                is_free=info.is_free,
            )
            for info in master.segments
        }
        scan = scan_residual_log(
            self.untrusted,
            self.codec,
            master.anchor_segment,
            master.anchor_offset,
            self.hash_size,
            tolerant=True,
        )
        cutoff = -1
        for idx, record in enumerate(scan.records):
            if record.kind == RecordKind.COMMIT and record.body.durable:
                cutoff = idx
        applied = scan.records[:cutoff + 1]

        self._seqno = master.commit_seqno
        self._counter_value = master.expected_counter
        self._next_cid = master.next_chunk_id
        tail_segment = master.anchor_segment
        tail_offset = master.anchor_offset
        residual = {master.anchor_segment}
        commits_applied = 0
        apply_stop: Optional[str] = None

        for position, record in enumerate(applied):
            info = self.segments.segments.get(record.segment)
            if record.kind == RecordKind.SEG_HEADER:
                if info is None:
                    info = SegmentInfo(number=record.segment)
                    self.segments.segments[record.segment] = info
                else:
                    info.reset_for_reuse()
            if info is None:
                apply_stop = (
                    f"residual log touches unknown segment {record.segment}"
                )
                break
            if record.kind == RecordKind.COMMIT:
                try:
                    self._apply_commit_readonly(record)
                except TDBError as exc:
                    apply_stop = (
                        f"commit seqno {record.body.seqno} not applicable: "
                        f"{type(exc).__name__}: {exc}"
                    )
                    break
                commits_applied += 1
                self._seqno = max(self._seqno, record.body.seqno)
                self._counter_value = max(
                    self._counter_value, record.body.expected_counter
                )
                self._next_cid = max(self._next_cid, record.body.next_chunk_id)
            info.file_bytes = max(info.file_bytes, record.end_offset)
            residual.add(record.segment)
            tail_segment = record.segment
            tail_offset = record.end_offset

        commits_discarded = sum(
            1
            for record in scan.records
            if record.kind == RecordKind.COMMIT
        ) - commits_applied

        # Adopt the recovered cursor without segments.restore(): restore
        # truncates the discarded tail, and salvage must not write.
        for info in self.segments.segments.values():
            info.is_tail = info.number == tail_segment
            if info.is_tail:
                info.is_free = False
        self.segments.tail_segment = tail_segment
        self.segments.tail_offset = tail_offset
        self.segments.next_segment_number = max(
            [master.next_segment_number]
            + [number + 1 for number in self.segments.segments]
        )
        self.segments.residual_segments = residual

        actual = self.counter.read() if self.secure else self._counter_value
        self.salvage_info = SalvageInfo(
            counter_expected=self._counter_value,
            counter_actual=actual,
            commits_applied=commits_applied,
            commits_discarded=commits_discarded,
            scan_stop_reason=scan.stop_reason,
            apply_stop_reason=apply_stop,
        )

    def _apply_commit_readonly(self, record) -> None:
        """Map-only commit application for salvage (no space accounting)."""
        body: CommitBody = record.body
        for item, rel_offset in zip(body.writes, body.payload_offsets):
            locator = Locator(
                segment=record.segment,
                offset=record.offset + rel_offset,
                length=len(item.payload),
                hash_value=(
                    self._digest_payload(item.payload) if self.secure else b""
                ),
            )
            self.location_map.set(item.chunk_id, locator)
        for chunk_id in body.deallocs:
            self.location_map.remove(chunk_id)

    def _reconcile_segments(self) -> None:
        """Compare the segment table against the actual files.

        A segment the cleaner freed after the last checkpoint has a
        truncated (or missing) file but zero live bytes after replay —
        convert it to a free slot.  A short file with live bytes means
        the attacker destroyed data: tamper detected.
        """
        for info in list(self.segments.segments.values()):
            if info.is_tail or info.is_free:
                continue
            name = segment_file_name(info.number)
            actual = self.untrusted.size(name) if self.untrusted.exists(name) else -1
            if actual == info.file_bytes:
                continue
            if info.live_bytes == 0:
                info.reset_for_reuse()
                info.is_free = True
                if actual > 0:
                    self.untrusted.truncate(name, 0)
                elif actual < 0:
                    self.untrusted.write(name, 0, b"")
            else:
                raise TamperDetectedError(
                    f"segment {info.number} is truncated or missing "
                    f"({actual} bytes on disk, {info.file_bytes} recorded) "
                    f"with {info.live_bytes} live bytes"
                )

    def _check_counter(self) -> None:
        """The replay-attack check (paper section 3)."""
        if not self.secure:
            return
        expected = self._counter_value
        actual = self.counter.read()
        if actual == expected:
            return
        if actual == expected - 1:
            # The crash hit between the commit record reaching the log and
            # the counter bump; resync the counter.  The commit itself had
            # not reported success, so no acknowledged state is lost.
            self.counter.increment()
            self.possible_lost_commit = True
            return
        if actual > expected:
            raise ReplayDetectedError(
                f"one-way counter is at {actual} but the newest durable state "
                f"expects {expected}: an old database image was replayed"
            )
        raise TamperDetectedError(
            f"one-way counter regressed ({actual} < {expected - 1}); "
            "the platform counter was tampered with"
        )

    # ------------------------------------------------------------------
    # Chunk operations (Figure 2 interface)
    # ------------------------------------------------------------------

    def allocate_chunk_id(self) -> int:
        """Return an unallocated chunk id (reuses deallocated ids)."""
        with self._lock:
            self._check_open()
            self._check_writable()
            if self._free_cids:
                cid = self._free_cids.pop()
            else:
                cid = self._next_cid
                self._next_cid += 1
            self._pending_cids.add(cid)
            return cid

    def release_chunk_id(self, chunk_id: int) -> None:
        """Return an allocated-but-never-written id to the free pool.

        Used when a transaction that inserted objects aborts: the chunk
        ids it allocated were never committed, so they can be reused
        immediately (paper section 4.2.3).
        """
        with self._lock:
            self._check_open()
            if chunk_id in self._pending_cids:
                self._pending_cids.discard(chunk_id)
                self._free_cids.append(chunk_id)

    def adopt_chunk_id(self, chunk_id: int) -> None:
        """Mark a specific id as allocated (backup-restore entry point).

        Restoring a backup must recreate chunks under their original ids
        so that inter-chunk references (object ids) stay valid.
        """
        with self._lock:
            self._check_open()
            self._check_writable()
            if chunk_id < 0:
                raise ChunkStoreError("chunk ids are non-negative")
            self._pending_cids.add(chunk_id)
            self._next_cid = max(self._next_cid, chunk_id + 1)

    def read(self, chunk_id: int) -> bytes:
        """Return the last committed state of ``chunk_id``."""
        with self._lock:
            self._check_open()
            locator = self.location_map.lookup(chunk_id)
            if locator is None:
                raise ChunkNotFoundError(f"chunk {chunk_id} is not written")
            data = self.read_payload(locator)
            # read_payload raised unless the media bytes matched the
            # locator's digest, so this version is now known-verified.
            if self.digest_memo is not None:
                self.digest_memo.note_chunk(chunk_id, locator)
            return data

    def write(self, chunk_id: int, data: bytes, durable: bool = True) -> None:
        """Single-chunk commit (see :meth:`commit` for batches)."""
        self.commit({chunk_id: data}, durable=durable)

    def deallocate(self, chunk_id: int, durable: bool = True) -> None:
        """Deallocate one chunk id along with its state."""
        self.commit({}, deallocs=[chunk_id], durable=durable)

    def contains(self, chunk_id: int) -> bool:
        with self._lock:
            self._check_open()
            return self.location_map.lookup(chunk_id) is not None

    def chunk_ids(self) -> List[int]:
        """All written chunk ids, ascending."""
        with self._lock:
            self._check_open()
            return [cid for cid, _ in self.location_map.iterate()]

    def commit(
        self,
        writes: Mapping[int, bytes],
        deallocs: Iterable[int] = (),
        durable: bool = True,
    ) -> None:
        """Atomically apply a batch of chunk writes and deallocations."""
        with self._lock:
            self._check_open()
            self._check_writable()
            deallocs = list(deallocs)
            if not writes and not deallocs:
                return
            self._validate_commit_ids(writes, deallocs)
            items = [
                CommitItem(chunk_id, self.cipher.encrypt(bytes(data)))
                for chunk_id, data in sorted(writes.items())
            ]
            self._commit_items(items, deallocs, durable, from_cleaner=False)
            for chunk_id in writes:
                self._pending_cids.discard(chunk_id)
            for chunk_id in deallocs:
                self._pending_cids.discard(chunk_id)
                self._free_cids.append(chunk_id)
            self._after_commit()

    def commit_raw_payloads(self, items: List[Tuple[int, bytes]]) -> None:
        """Cleaner entry point: relocate already-encrypted payloads."""
        with self._lock:
            self._check_open()
            self._check_writable()
            commit_items = [CommitItem(cid, payload) for cid, payload in items]
            self._commit_items(commit_items, [], durable=True, from_cleaner=True)

    def _validate_commit_ids(self, writes: Mapping[int, bytes], deallocs) -> None:
        for chunk_id in writes:
            if chunk_id in self._pending_cids:
                continue
            if self.location_map.lookup(chunk_id) is None:
                raise ChunkStoreError(
                    f"write to unallocated chunk id {chunk_id}"
                )
        seen = set(writes)
        for chunk_id in deallocs:
            if chunk_id in seen:
                raise ChunkStoreError(
                    f"chunk {chunk_id} both written and deallocated in one commit"
                )
            seen.add(chunk_id)
            if (
                chunk_id not in self._pending_cids
                and self.location_map.lookup(chunk_id) is None
            ):
                raise ChunkStoreError(
                    f"deallocate of unallocated chunk id {chunk_id}"
                )

    def _commit_items(
        self,
        items: List[CommitItem],
        deallocs: List[int],
        durable: bool,
        from_cleaner: bool,
    ) -> None:
        self._seqno += 1
        bump_counter = durable and self.secure
        expected = self._counter_value + (1 if bump_counter else 0)
        body_obj = CommitBody(
            seqno=self._seqno,
            durable=durable,
            from_cleaner=from_cleaner,
            expected_counter=expected,
            next_chunk_id=self._next_cid,
            writes=items,
            deallocs=deallocs,
        )
        body = body_obj.encode()
        accountable = sum(len(item.payload) for item in items)
        if not from_cleaner:
            self._app_payload_bytes += accountable
        segment, offset = self.segments.append_record(
            RecordKind.COMMIT, body, accountable
        )
        self._residual_bytes += self.codec.record_size(len(body))
        rel_offsets = body_obj.encoded_payload_offsets(self.codec.header_size)
        for item, rel in zip(items, rel_offsets):
            locator = Locator(
                segment=segment,
                offset=offset + rel,
                length=len(item.payload),
                hash_value=(
                    self._digest_payload(item.payload) if self.secure else b""
                ),
            )
            old = self.location_map.set(item.chunk_id, locator)
            if old is not None:
                self._retire(old, commit_durable=durable)
            if self.digest_memo is not None:
                # We produced both the bytes and the digest ourselves;
                # the new version starts out verified.
                self.digest_memo.note_chunk(item.chunk_id, locator)
        for chunk_id in deallocs:
            old = self.location_map.remove(chunk_id)
            if old is not None:
                self._retire(old, commit_durable=durable)
            if self.digest_memo is not None:
                self.digest_memo.invalidate_chunk(chunk_id)
        self._commits_total += 1
        if durable:
            self._durable_commits_total += 1
            self.segments.sync_dirty()
            if bump_counter:
                self.counter.increment()
                self._counter_value += 1
            self._flush_nondurable_pending()

    def _after_commit(self) -> None:
        if self._residual_bytes >= self.config.checkpoint_residual_bytes:
            self.checkpoint()
        self._space_policy()

    # ------------------------------------------------------------------
    # Reads (shared with snapshots and the map)
    # ------------------------------------------------------------------

    @property
    def verify_spec(self):
        """Picklable recipe for pool workers to rebuild this store's crypto.

        Matches the arguments of :func:`create_payload_cipher` and
        :func:`create_hash_engine`, so a worker's digest-then-decrypt
        verification is exactly :meth:`read_payload` minus the metering.
        """
        return (
            self.config.security.cipher_name,
            self._cipher_key,
            self._cipher_kernel,
            self.config.security.hash_name,
        )

    def read_payload(self, locator: Locator) -> bytes:
        """Fetch, validate, and decrypt the payload a locator points at.

        Always verifies from media — the memo never short-circuits a
        read, it only lets *scrub* skip re-hashing versions a read or
        write already verified.
        """
        data = self.segments.read(locator.segment, locator.offset, locator.length)
        if self.secure:
            if self._digest_payload(data) != locator.hash_value:
                raise TamperDetectedError(
                    f"chunk payload at segment {locator.segment} offset "
                    f"{locator.offset} failed hash validation"
                )
        return self.cipher.decrypt(data)

    def read_payload_raw(self, locator: Locator) -> bytes:
        """Digest-verified *ciphertext* bytes a locator points at.

        The proof service's read: lock-free by the same argument as
        :meth:`read_segment_bytes` — proofs are only built against
        pinned checkpointed state, whose locators reference sealed
        bytes that concurrent commits never rewrite in place.
        """
        data = self.untrusted.read(
            segment_file_name(locator.segment), locator.offset, locator.length
        )
        if self.secure and self._digest_payload(data) != locator.hash_value:
            raise TamperDetectedError(
                f"chunk payload at segment {locator.segment} offset "
                f"{locator.offset} failed hash validation"
            )
        return data

    # ------------------------------------------------------------------
    # Scrubbing (Merkle-tree verification with damage localization)
    # ------------------------------------------------------------------

    def scrub(self, deep: bool = True) -> DamageReport:
        """Verify every reachable map node and chunk payload.

        A writable store is checkpointed first so the on-disk tree equals
        the logical tree; a salvage store is walked as reconstructed.
        Damage is *reported*, never raised: the returned
        :class:`~repro.chunkstore.scrub.DamageReport` lists damaged chunk
        ids, map-node coordinates with the chunk-id ranges they covered,
        and the segments involved.

        ``deep=True`` (the default) re-reads and re-hashes everything
        from media — the tamper-detection walk.  ``deep=False`` runs an
        *incremental* scrub that skips payload versions the digest memo
        already saw verified, re-hashing only what changed since; it
        checks the tree's shape but cannot notice media bytes flipped
        after their last verification.  Salvage stores always scrub
        deep (they carry no memo).
        """
        with self._lock:
            self._check_open()
            if not self._salvage and not self._read_only:
                self.checkpoint(force=True)
            report, _ = scrub_store(self, collect=False, deep=deep)
            return report

    def reset_digest_memo(self) -> None:
        """Forget every remembered verification.

        The repair engine calls this once damage is confirmed: after
        media corruption nothing remembered about the image is evidence
        any more.
        """
        with self._lock:
            if self.digest_memo is not None:
                self.digest_memo.clear()

    def export_surviving(self) -> Tuple[DamageReport, Dict[int, bytes]]:
        """Scrub and return the plaintext of every chunk that verifies.

        The salvage-export path: an embedding application gets whatever
        state the damage spared (meters, balances) plus the report of
        what was lost.
        """
        with self._lock:
            self._check_open()
            if not self._salvage and not self._read_only:
                self.checkpoint(force=True)
            return scrub_store(self, collect=True)

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------

    def checkpoint(self, force: bool = False) -> None:
        """Write dirty map nodes and a fresh master record.

        Runs as the paper's "opportunistic" map flush: recovery afterwards
        replays only the log written after this point.
        """
        with self._lock:
            self._check_open()
            self._check_writable()
            if (
                not force
                and not self.location_map.has_dirty_nodes()
                and self._residual_bytes == 0
            ):
                return
            root, retired = self.location_map.checkpoint(self.node_io.append_node)
            for locator in retired:
                self._retire(locator, commit_durable=True)
            self._seqno += 1
            checkpoint_body = CheckpointBody(
                seqno=self._seqno,
                expected_counter=self._counter_value,
                next_chunk_id=self._next_cid,
                depth=self.location_map.depth,
                root=root,
            )
            self.segments.append_record(
                RecordKind.CHECKPOINT, checkpoint_body.encode(self.hash_size)
            )
            self.segments.sync_dirty()
            # The checkpoint is a durability barrier: nondurable commits
            # captured by the flushed map can no longer roll back, so
            # their deferred retirements must land *before* the segment
            # table is snapshotted into the master.  Flushing after the
            # master write under-counts dead bytes on disk, and replay
            # then mistakes a legitimately recycled segment for one the
            # attacker truncated (a false TamperDetectedError).
            self._flush_nondurable_pending()
            self._generation += 1
            master = MasterRecord(
                generation=self._generation,
                db_uuid=self._db_uuid,
                segment_size=self.config.segment_size,
                map_fanout=self.config.map_fanout,
                hash_size=self.hash_size,
                secure=self.secure,
                depth=self.location_map.depth,
                root=root,
                next_chunk_id=self._next_cid,
                commit_seqno=self._seqno,
                expected_counter=self._counter_value,
                next_segment_number=self.segments.next_segment_number,
                anchor_segment=self.segments.tail_segment,
                anchor_offset=self.segments.tail_offset,
                chain_anchor=self.codec.chain,
                segments=self.segments.snapshot_infos(),
            )
            self.master_io.write(master, sync=self.config.fsync)
            # The head goes to the log only after the master is on the
            # media: a crash between the two leaves the log *lagging*,
            # which the next open heals by catching up from the master —
            # a log ahead of the master can then only mean rollback.
            if self.transparency is not None:
                self._append_head(master)
            self.segments.end_checkpoint()
            self._residual_bytes = 0
            self._checkpoints_total += 1

    def _append_map_node(self, level: int, index: int, plaintext: bytes) -> Locator:
        payload = self.cipher.encrypt(plaintext)
        body = MapNodeBody(level=level, index=index, payload=payload).encode()
        segment, offset = self.segments.append_record(
            RecordKind.MAP_NODE, body, accountable_bytes=len(payload)
        )
        self._residual_bytes += self.codec.record_size(len(body))
        payload_offset = offset + MapNodeBody.payload_offset_in_record(
            self.codec.header_size
        )
        locator = Locator(
            segment=segment,
            offset=payload_offset,
            length=len(payload),
            hash_value=self._digest_payload(payload) if self.secure else b"",
        )
        if self.digest_memo is not None:
            self.digest_memo.note_node(level, index, locator)
        return locator

    # ------------------------------------------------------------------
    # Space management
    # ------------------------------------------------------------------

    def _space_policy(self) -> None:
        """The grow-or-clean decision of section 3.2.1.

        Keep at least one free slot ready for the next tail switch.  When
        utilization is below the configured maximum, bounded cleaning
        recycles dead space; when it is above, the store grows instead
        (a new slot is allocated implicitly at the next tail switch),
        which bounds per-commit cleaning cost.
        """
        if self.segments.free_slot_count() == 0:
            if self.segments.utilization() < self.config.max_utilization:
                self.cleaner.clean_pass(self.config.cleaner_segments_per_pass)
            return
        # Compaction: while utilization sits below the bound there is
        # reclaimable dead space; bounded cleaning squeezes it out so the
        # database size tracks live / max_utilization (Figure 11).  The
        # work is rate-limited by the classic LFS write-amplification
        # budget: packing segments to density u costs about u/(1-u) bytes
        # of copying per byte of application data, so that is the copy
        # allowance the target utilization earns.  Targets the workload's
        # hot/cold mix cannot reach simply exhaust their allowance instead
        # of thrashing.
        if self.segments.utilization() < self.config.max_utilization * 0.95:
            target = min(self.config.max_utilization, 0.95)
            amplification = target / max(0.05, 1.0 - target)
            allowance = amplification * self._app_payload_bytes
            if self.cleaner.stats.bytes_copied >= allowance:
                return
            victims = self.segments.cleanable_segments()
            best_dead = max(
                (info.dead_bytes for info in victims), default=0
            )
            if best_dead >= self.config.segment_size // 4:
                self.cleaner.clean_pass(self.config.cleaner_segments_per_pass)
        self._shrink_free_slots()

    def clean(self, max_segments: Optional[int] = None) -> int:
        """Run one explicit cleaning pass; return segments recycled."""
        with self._lock:
            self._check_open()
            self._check_writable()
            return self.cleaner.clean_pass(
                max_segments or self.config.cleaner_segments_per_pass
            )

    def idle_maintenance(self, max_passes: int = 16) -> dict:
        """Run deferred reorganization during an idle period.

        The paper leans on DRM workloads' long idle times: "some of the
        database reorganization (such as log checkpointing) can be
        deferred until idle time" (section 1).  This entry point
        checkpoints the location map and runs cleaning passes until the
        utilization bound is met, nothing is reclaimable, or the pass
        budget runs out.  Returns a small report dict.
        """
        with self._lock:
            self._check_open()
            self._check_writable()
            report = {"checkpointed": False, "segments_freed": 0, "passes": 0}
            if self.location_map.has_dirty_nodes() or self._residual_bytes:
                self.checkpoint()
                report["checkpointed"] = True
            for _ in range(max_passes):
                if self.segments.utilization() >= self.config.max_utilization:
                    break
                victims = self.segments.cleanable_segments()
                if not any(info.dead_bytes > 0 for info in victims):
                    break
                freed = self.cleaner.clean_pass(self.config.cleaner_segments_per_pass)
                report["passes"] += 1
                report["segments_freed"] += freed
                self._shrink_free_slots()
                if freed == 0:
                    break
            self._shrink_free_slots()
            return report

    def _shrink_free_slots(self) -> None:
        """Return excess free slots while the database would stay within
        its utilization bound, so total size tracks
        live / max_utilization (the trade-off Figure 11 sweeps)."""
        live = self.segments.live_bytes()
        while self.segments.free_slot_count() > 1:
            capacity_after = self.segments.capacity_bytes() - self.config.segment_size
            if capacity_after <= 0 or live / capacity_after > self.config.max_utilization:
                break
            if len(self.segments.segments) <= max(2, self.config.initial_segments):
                break
            free_numbers = [
                info.number
                for info in self.segments.segments.values()
                if info.is_free
            ]
            self.segments.drop_slot(max(free_numbers))

    def _retire(self, locator: Locator, commit_durable: bool) -> None:
        """Account an obsolete payload, honouring deferral rules.

        Space obsoleted by a nondurable commit stays unreclaimable until
        a durable commit (section 3.2.2); space a snapshot can still
        reach stays unreclaimable until the snapshot is released.
        """
        pinning = [
            snap
            for snap in self._snapshots.values()
            if locator.segment in snap.pinned_segments
        ]
        refs = len(pinning) + (0 if commit_durable else 1)
        if refs == 0:
            self.segments.mark_dead(locator.segment, locator.length)
            return
        event = _RetireEvent(locator.segment, locator.length, refs)
        if not commit_durable:
            self._nondurable_pending.append(event)
        for snap in pinning:
            self._snapshot_pending[snap.snapshot_id].append(event)

    def _release_event(self, event: _RetireEvent) -> None:
        event.refs -= 1
        if event.refs == 0:
            self.segments.mark_dead(event.segment, event.nbytes)

    def _flush_nondurable_pending(self) -> None:
        pending, self._nondurable_pending = self._nondurable_pending, []
        for event in pending:
            self._release_event(event)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def snapshot(self) -> Snapshot:
        """Freeze the current state for backup (copy-on-write)."""
        with self._lock:
            self._check_open()
            self._check_writable()
            self.checkpoint(force=True)
            snapshot_id = self._next_snapshot_id
            self._next_snapshot_id += 1
            pinned = {
                info.number
                for info in self.segments.segments.values()
                if not info.is_free
            }
            snap = Snapshot(
                store=self,
                snapshot_id=snapshot_id,
                root=self.location_map.root_locator,
                depth=self.location_map.depth,
                pinned_segments=pinned,
                commit_seqno=self._seqno,
            )
            self._snapshots[snapshot_id] = snap
            self._snapshot_pending[snapshot_id] = []
            return snap

    def release_snapshot(self, snap: Snapshot) -> None:
        with self._lock:
            if snap.snapshot_id not in self._snapshots:
                return
            del self._snapshots[snap.snapshot_id]
            for event in self._snapshot_pending.pop(snap.snapshot_id, []):
                self._release_event(event)
            self.cache.clear_namespace(f"snap-{snap.snapshot_id}")
            snap.released = True

    def active_snapshots(self) -> List[Snapshot]:
        return list(self._snapshots.values())

    # ------------------------------------------------------------------
    # Introspection & lifecycle
    # ------------------------------------------------------------------

    def stats(self) -> ChunkStoreStats:
        with self._lock:
            self._check_open()
            return ChunkStoreStats(
                live_bytes=self.segments.live_bytes(),
                capacity_bytes=self.segments.capacity_bytes(),
                utilization=self.segments.utilization(),
                db_file_bytes=self.untrusted.total_bytes(),
                segment_count=len(self.segments.segments),
                free_slots=self.segments.free_slot_count(),
                residual_bytes=self._residual_bytes,
                commit_seqno=self._seqno,
                counter_value=self._counter_value,
                next_chunk_id=self._next_cid,
                commits_total=self._commits_total,
                durable_commits_total=self._durable_commits_total,
                checkpoints_total=self._checkpoints_total,
                cleaner=self.cleaner.stats,
                possible_lost_commit=self.possible_lost_commit,
            )

    def close(self) -> None:
        """Checkpoint and shut down; further operations raise."""
        with self._lock:
            if self._closed:
                return
            for snap in list(self._snapshots.values()):
                self.release_snapshot(snap)
            if not self._salvage and not self._read_only:
                self.checkpoint()
                self.segments.sync_dirty()
            self.digest_pool.close()
            self._closed = True

    def __enter__(self) -> "ChunkStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ChunkStoreError("chunk store is closed")

    def _check_writable(self) -> None:
        if self._salvage:
            raise SalvageReadOnlyError(
                "store was opened in read-only salvage mode"
            )
        if self._read_only:
            raise ReadOnlyStoreError(
                "store was opened read-only (replica mode)"
            )

    @property
    def salvage(self) -> bool:
        """Whether this store was opened read-only via :meth:`open_salvage`."""
        return self._salvage

    @property
    def read_only(self) -> bool:
        """Whether this store was opened with ``read_only=True``."""
        return self._read_only

    @property
    def db_uuid(self) -> bytes:
        """The immutable identity this store was formatted with."""
        return self._db_uuid

    @property
    def generation(self) -> int:
        """Generation of the newest durable master record."""
        with self._lock:
            return self._generation

    @property
    def commit_seqno(self) -> int:
        """Sequence number of the newest commit."""
        with self._lock:
            return self._seqno

    # ------------------------------------------------------------------
    # Replication export hooks
    # ------------------------------------------------------------------

    def read_segment_bytes(self, number: int, offset: int, length: int) -> bytes:
        """Raw media bytes of a segment prefix, for replication shipping.

        The shipper only asks for ranges below the ``file_bytes`` a
        pinned snapshot's master record recorded for the segment: sealed
        segments are immutable and the tail only *grows* past that
        point, so the range is stable under concurrent commits.
        """
        name = segment_file_name(number)
        return self.untrusted.read(name, offset, length)

    def export_master_blob(self) -> Tuple[str, bytes]:
        """``(file name, raw sealed bytes)`` of the current master slot.

        Must be captured in the same locked region as the snapshot that
        anchors a shipment: two checkpoints later the alternating slot
        scheme overwrites the same file.
        """
        with self._lock:
            self._check_open()
            name = MASTER_FILES[self._generation % 2]
            return name, self.untrusted.read(name)

    def begin_shipment(
        self,
        last_generation: Optional[int] = None,
        last_seqno: Optional[int] = None,
    ) -> Optional["ShipmentAnchor"]:
        """Atomically anchor a replication shipment.

        Checkpoints, takes a pinned snapshot, and captures — all under
        one lock acquisition, so they describe the same instant — the
        master blob, identity/counter state, and the per-segment sizes
        the just-written master recorded.  The caller owns the returned
        anchor's snapshot and must release it.

        If the subscriber already holds ``(last_generation, last_seqno)``
        and no commit has happened since, returns ``None`` instead of
        burning a checkpoint per poll (a forced checkpoint always
        advances the generation, so re-anchoring an unchanged store
        would churn forever).
        """
        with self._lock:
            self._check_open()
            if (
                last_generation is not None
                and last_generation == self._generation
                and last_seqno == self._seqno
            ):
                return None
            snap = self.snapshot()  # checkpoint(force=True) + pin
            master_name = MASTER_FILES[self._generation % 2]
            master_blob = self.untrusted.read(master_name)
            segments = [
                SegmentExportInfo(
                    number=info.number,
                    file_bytes=info.file_bytes,
                    is_tail=info.is_tail,
                )
                for info in self.segments.segments.values()
                if not info.is_free
            ]
            return ShipmentAnchor(
                snapshot=snap,
                db_uuid=self._db_uuid,
                generation=self._generation,
                commit_seqno=self._seqno,
                expected_counter=self._counter_value,
                master_name=master_name,
                master_blob=master_blob,
                segments=segments,
            )
