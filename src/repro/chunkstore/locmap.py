"""The hierarchical location map with the embedded Merkle hash tree.

The map is a radix tree over chunk ids with configurable fanout ``F``:
leaf node ``(0, i)`` holds locators for chunk ids ``[i*F, (i+1)*F)``, and
internal node ``(L, i)`` holds locators of its child nodes.  Because each
locator carries the digest of the bytes it points at, the map *is* the
Merkle tree: walking from the root to a leaf validates a chunk, and the
root locator's digest authenticates the entire database (section 3 of the
paper — "the hash tree can be embedded in the location map ... no extra
performance overhead for maintaining the location map").

Map nodes are themselves stored in the log as chunks; dirty nodes are kept
pinned in the shared cache and written out at checkpoints, not on every
commit.  The tree grows a level when chunk ids outgrow its capacity.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.cache import SharedLruCache
from repro.chunkstore.format import Locator
from repro.errors import ChunkStoreError, TamperDetectedError

__all__ = ["MapNode", "NodeIO", "LocationMap"]

_NODE_MAGIC = b"MN"  # rejects zero-filled or foreign buffers in insecure mode
_NODE_HEAD = struct.Struct(">2sBQH")
_SLOT = struct.Struct(">H")


class MapNode:
    """One node of the location map.

    ``children`` maps slot number to a :class:`Locator`: for a leaf the
    locator points at a chunk payload; for an internal node it points at
    the serialized child map node.
    """

    __slots__ = ("level", "index", "children", "disk_locator", "dirty")

    def __init__(self, level: int, index: int) -> None:
        self.level = level
        self.index = index
        self.children: Dict[int, Locator] = {}
        self.disk_locator: Optional[Locator] = None
        self.dirty = False

    def serialize(self, hash_size: int) -> bytes:
        parts = [
            _NODE_HEAD.pack(_NODE_MAGIC, self.level, self.index, len(self.children))
        ]
        for slot in sorted(self.children):
            parts.append(_SLOT.pack(slot))
            parts.append(self.children[slot].encode(hash_size))
        return b"".join(parts)

    @classmethod
    def deserialize(cls, data: bytes, hash_size: int) -> "MapNode":
        try:
            magic, level, index, count = _NODE_HEAD.unpack_from(data, 0)
        except struct.error as exc:
            raise ChunkStoreError(f"malformed map node: {exc}") from exc
        if magic != _NODE_MAGIC:
            raise ChunkStoreError("bad map node magic (corrupt or foreign data)")
        node = cls(level, index)
        offset = _NODE_HEAD.size
        for _ in range(count):
            try:
                (slot,) = _SLOT.unpack_from(data, offset)
            except struct.error as exc:
                raise ChunkStoreError(f"malformed map node slot: {exc}") from exc
            offset += _SLOT.size
            locator, offset = Locator.decode(data, offset, hash_size)
            node.children[slot] = locator
        return node

    def charge_estimate(self) -> int:
        """Approximate in-memory size for cache accounting."""
        return 64 + 48 * len(self.children)


class NodeIO:
    """How the map loads and stores its nodes (implemented by the store)."""

    def load_node(self, locator: Locator, level: int, index: int) -> MapNode:
        raise NotImplementedError

    def append_node(self, level: int, index: int, plaintext: bytes) -> Locator:
        raise NotImplementedError


class LocationMap:
    """Mutable (or frozen, for snapshots) view of the location map."""

    def __init__(
        self,
        node_io: NodeIO,
        fanout: int,
        hash_size: int,
        cache: SharedLruCache,
        namespace: str = "map",
        depth: int = 1,
        root_locator: Optional[Locator] = None,
        frozen: bool = False,
    ) -> None:
        if depth < 1:
            raise ChunkStoreError("map depth must be at least 1")
        self.node_io = node_io
        self.fanout = fanout
        self.hash_size = hash_size
        self.cache = cache
        self.namespace = namespace
        self.depth = depth
        self.frozen = frozen
        self._root: Optional[MapNode] = None
        self._root_locator = root_locator
        self._dirty: Set[Tuple[int, int]] = set()

    # -- capacity -----------------------------------------------------------------

    def capacity(self) -> int:
        return self.fanout ** self.depth

    def _grow_to_cover(self, chunk_id: int) -> None:
        while chunk_id >= self.capacity():
            old_root = self._require_root_loaded()
            new_root = MapNode(self.depth, 0)
            if old_root is not None:
                if old_root.disk_locator is not None:
                    new_root.children[0] = old_root.disk_locator
                # Move the old root into the cache under its stable key.
                self._cache_put(old_root)
            self.depth += 1
            self._root = new_root
            self._root_locator = None
            self._mark_dirty(new_root)

    # -- node plumbing --------------------------------------------------------------

    def _cache_key(self, level: int, index: int) -> Tuple[int, int]:
        return (level, index)

    def _cache_put(self, node: MapNode) -> None:
        key = self._cache_key(node.level, node.index)
        self.cache.put(self.namespace, key, node, node.charge_estimate())
        if node.dirty:
            self.cache.pin(self.namespace, key)

    def _require_root_loaded(self) -> Optional[MapNode]:
        """Return the root node, loading it from disk if necessary."""
        if self._root is not None:
            return self._root
        if self._root_locator is None:
            return None
        self._root = self.node_io.load_node(
            self._root_locator, self.depth - 1, 0
        )
        self._root.disk_locator = self._root_locator
        return self._root

    def load_child(self, parent: MapNode, slot: int) -> Optional[MapNode]:
        """Fetch the child of ``parent`` at ``slot`` (cache, then disk)."""
        if parent.level == 0:
            raise ChunkStoreError("leaf nodes have no child map nodes")
        child_level = parent.level - 1
        child_index = parent.index * self.fanout + slot
        key = self._cache_key(child_level, child_index)
        cached = self.cache.get(self.namespace, key)
        if cached is not None:
            return cached
        locator = parent.children.get(slot)
        if locator is None:
            return None
        node = self.node_io.load_node(locator, child_level, child_index)
        node.disk_locator = locator
        self._cache_put(node)
        return node

    def _child_for_write(self, parent: MapNode, slot: int) -> MapNode:
        node = self.load_child(parent, slot)
        if node is None:
            node = MapNode(parent.level - 1, parent.index * self.fanout + slot)
            self._cache_put(node)
            self._mark_dirty(node)
            # The parent will need a locator for this child at the next
            # checkpoint, and iteration discovers cache-only children
            # through dirty parents, so dirty the parent now.
            self._mark_dirty(parent)
        return node

    def _mark_dirty(self, node: MapNode) -> None:
        if self.frozen:
            raise ChunkStoreError("frozen location map cannot be modified")
        if node.dirty:
            return
        node.dirty = True
        self._dirty.add((node.level, node.index))
        key = self._cache_key(node.level, node.index)
        if self.cache.contains(self.namespace, key):
            self.cache.pin(self.namespace, key)

    def _slot_at(self, chunk_id: int, level: int) -> int:
        return (chunk_id // (self.fanout ** level)) % self.fanout

    # -- queries ----------------------------------------------------------------------

    def lookup(self, chunk_id: int) -> Optional[Locator]:
        """Return the locator for ``chunk_id`` or ``None``."""
        if chunk_id < 0:
            raise ChunkStoreError("chunk ids are non-negative")
        if chunk_id >= self.capacity():
            return None
        node = self._require_root_loaded()
        if node is None:
            return None
        for level in range(self.depth - 1, 0, -1):
            node = self.load_child(node, self._slot_at(chunk_id, level))
            if node is None:
                return None
        return node.children.get(chunk_id % self.fanout)

    def __contains__(self, chunk_id: int) -> bool:
        return self.lookup(chunk_id) is not None

    def iterate(self) -> Iterator[Tuple[int, Locator]]:
        """Yield ``(chunk_id, locator)`` for every mapped chunk, in order."""
        root = self._require_root_loaded()
        if root is None:
            return
        yield from self._iterate_node(root)

    def _iterate_node(self, node: MapNode) -> Iterator[Tuple[int, Locator]]:
        if node.level == 0:
            base = node.index * self.fanout
            for slot in sorted(node.children):
                yield base + slot, node.children[slot]
            return
        for slot in sorted(node.children):
            child = self.load_child(node, slot)
            if child is None:
                raise TamperDetectedError(
                    f"map node ({node.level - 1},"
                    f" {node.index * self.fanout + slot}) is unreachable"
                )
            yield from self._iterate_node(child)
        # A dirty internal node may hold children that exist only in cache
        # (no locator in ``children`` yet). Visit those too.
        if node.dirty:
            for slot in range(self.fanout):
                if slot in node.children:
                    continue
                key = self._cache_key(node.level - 1, node.index * self.fanout + slot)
                cached = self.cache.peek(self.namespace, key)
                if cached is not None:
                    yield from self._iterate_node(cached)

    def count(self) -> int:
        """Number of mapped chunks (walks the tree)."""
        return sum(1 for _ in self.iterate())

    # -- updates -----------------------------------------------------------------------

    def set(self, chunk_id: int, locator: Locator) -> Optional[Locator]:
        """Map ``chunk_id`` to ``locator``; return the previous locator."""
        if self.frozen:
            raise ChunkStoreError("frozen location map cannot be modified")
        if chunk_id < 0:
            raise ChunkStoreError("chunk ids are non-negative")
        self._grow_to_cover(chunk_id)
        node = self._require_root_loaded()
        if node is None:
            node = MapNode(self.depth - 1, 0)
            self._root = node
            self._mark_dirty(node)
        for level in range(self.depth - 1, 0, -1):
            node = self._child_for_write(node, self._slot_at(chunk_id, level))
        slot = chunk_id % self.fanout
        old = node.children.get(slot)
        node.children[slot] = locator
        self._mark_dirty(node)
        return old

    def remove(self, chunk_id: int) -> Optional[Locator]:
        """Unmap ``chunk_id``; return the previous locator or ``None``."""
        if self.frozen:
            raise ChunkStoreError("frozen location map cannot be modified")
        if chunk_id < 0 or chunk_id >= self.capacity():
            return None
        node = self._require_root_loaded()
        if node is None:
            return None
        for level in range(self.depth - 1, 0, -1):
            node = self.load_child(node, self._slot_at(chunk_id, level))
            if node is None:
                return None
        slot = chunk_id % self.fanout
        old = node.children.pop(slot, None)
        if old is not None:
            self._mark_dirty(node)
        return old

    # -- checkpointing --------------------------------------------------------------------

    def has_dirty_nodes(self) -> bool:
        return bool(self._dirty)

    def checkpoint(
        self, append_node: Callable[[int, int, bytes], Locator]
    ) -> Tuple[Optional[Locator], List[Locator]]:
        """Write all dirty nodes bottom-up; return (root locator, retired).

        ``append_node(level, index, plaintext)`` must append one MAP_NODE
        record and return the locator (with digest) of the stored payload.
        The returned retired list holds the previous on-disk locators of
        the rewritten nodes; their bytes are now obsolete.
        """
        retired: List[Locator] = []
        for level in range(self.depth):
            keys = sorted(key for key in self._dirty if key[0] == level)
            for _, index in keys:
                node = self._node_for_checkpoint(level, index)
                payload = node.serialize(self.hash_size)
                locator = append_node(level, index, payload)
                if node.disk_locator is not None:
                    retired.append(node.disk_locator)
                node.disk_locator = locator
                node.dirty = False
                self._dirty.discard((level, index))
                key = self._cache_key(level, index)
                if self.cache.contains(self.namespace, key):
                    self.cache.unpin(self.namespace, key)
                if level < self.depth - 1:
                    parent = self._parent_for_checkpoint(node)
                    parent.children[index % self.fanout] = locator
                    self._mark_dirty(parent)
        if self._dirty:
            raise ChunkStoreError(f"dirty nodes left after checkpoint: {self._dirty}")
        # An unloaded root (nothing dirtied since open) keeps its existing
        # locator — overwriting it with None would orphan the whole tree.
        if self._root is not None:
            self._root_locator = self._root.disk_locator
        return self._root_locator, retired

    def _node_for_checkpoint(self, level: int, index: int) -> MapNode:
        if self._root is not None and (level, index) == (self.depth - 1, 0):
            return self._root
        node = self.cache.peek(self.namespace, self._cache_key(level, index))
        if node is None:
            raise ChunkStoreError(
                f"dirty map node ({level}, {index}) fell out of the cache"
            )
        return node

    def _parent_for_checkpoint(self, node: MapNode) -> MapNode:
        parent_level = node.level + 1
        parent_index = node.index // self.fanout
        if (parent_level, parent_index) == (self.depth - 1, 0):
            root = self._require_root_loaded()
            if root is None:
                root = MapNode(self.depth - 1, 0)
                self._root = root
                self._mark_dirty(root)
            return root
        key = self._cache_key(parent_level, parent_index)
        parent = self.cache.get(self.namespace, key)
        if parent is None:
            # The parent exists on disk but was evicted: reload it through
            # the normal walk from the root.
            parent = self._walk_to(parent_level, parent_index)
        if parent is None:
            parent = MapNode(parent_level, parent_index)
            self._cache_put(parent)
            self._mark_dirty(parent)
        return parent

    def _walk_to(self, level: int, index: int) -> Optional[MapNode]:
        """Walk from the root to node ``(level, index)``; None if absent."""
        node = self._require_root_loaded()
        if node is None:
            return None
        for current_level in range(self.depth - 1, level, -1):
            divisor = self.fanout ** (current_level - level - 1)
            slot = (index // divisor) % self.fanout if divisor > 1 else index % self.fanout
            node = self.load_child(node, slot)
            if node is None:
                return None
        return node

    @property
    def root_locator(self) -> Optional[Locator]:
        return self._root_locator

    # -- cleaner support ---------------------------------------------------------

    def relocate_node_if_current(
        self, level: int, index: int, segment: int, offset: int, length: int
    ) -> bool:
        """Dirty node ``(level, index)`` if it currently lives at the given spot.

        Used by the cleaner: a dirty node is rewritten (elsewhere) by the
        next checkpoint, which retires the old on-disk version inside the
        victim segment.  Returns whether the position matched.
        """
        if level >= self.depth:
            return False
        node = self._walk_to(level, index)
        if node is None or node.disk_locator is None:
            return False
        locator = node.disk_locator
        if (locator.segment, locator.offset, locator.length) != (
            segment,
            offset,
            length,
        ):
            return False
        self._mark_dirty(node)
        return True

    # -- repair support ----------------------------------------------------------

    def prune_child(self, level: int, index: int) -> bool:
        """Detach node ``(level, index)`` from its parent (repair entry point).

        A damaged node's mapping entries are unrecoverable from media; the
        repair engine detaches the node so the chunk ids it covered read
        as unmapped, then re-materializes them from the backup chain.
        Returns whether a parent entry was actually removed.  The root
        cannot be pruned — losing it means a full restore.
        """
        if self.frozen:
            raise ChunkStoreError("frozen location map cannot be modified")
        if level >= self.depth - 1:
            raise ChunkStoreError("cannot prune the map root; restore instead")
        parent = self._walk_to(level + 1, index // self.fanout)
        if parent is None:
            return False
        removed = parent.children.pop(index % self.fanout, None) is not None
        # Drop any stale cached copy so later writes rebuild the subtree
        # from scratch instead of resurrecting the damaged node.
        self.cache.remove(self.namespace, self._cache_key(level, index))
        if removed:
            self._mark_dirty(parent)
        return removed
