"""Log segments: allocation, appends, recycling, space accounting.

The log is a chain of fixed-size segment files (``seg-00000001`` ...) in
the untrusted store.  Records are appended to the *tail* segment; when the
tail cannot hold the next record, a LINK record is written and the log
continues in the next segment — a recycled free slot when one exists,
a brand new one otherwise (that is how the store "grows").  Crucially, a
segment file's length always equals the number of log bytes written to
it, so "end of file" is "end of log" — recovery truncates any discarded
tail so the invariant survives crashes.

Accounting: each segment tracks *accountable* bytes (live payload bytes
appended into it) and *dead* bytes (payload bytes since obsoleted).  The
cleaner uses ``live_bytes`` per segment to pick victims, and the store
uses the overall live/capacity ratio to decide between cleaning and
growing (section 3.2.1 of the paper).

Residual-log protection: segments written since the last checkpoint hold
records recovery still needs, so they are excluded from cleaning until a
checkpoint moves the master anchor past them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.chunkstore.format import LinkBody, RecordCodec, RecordKind, SegHeaderBody
from repro.errors import ChunkStoreError
from repro.platform.untrusted import UntrustedStore

__all__ = ["SegmentInfo", "SegmentManager", "segment_file_name"]


def segment_file_name(number: int) -> str:
    return f"seg-{number:08d}"


# Segment states as stored in the master record.
STATE_FULL = 0
STATE_TAIL = 1
STATE_FREE = 2


@dataclass
class SegmentInfo:
    """Bookkeeping for one segment slot."""

    number: int
    accountable_bytes: int = 0
    dead_bytes: int = 0
    overhead_bytes: int = 0
    file_bytes: int = 0
    is_tail: bool = False
    is_free: bool = False

    @property
    def live_bytes(self) -> int:
        return self.accountable_bytes - self.dead_bytes

    @property
    def state(self) -> int:
        if self.is_free:
            return STATE_FREE
        if self.is_tail:
            return STATE_TAIL
        return STATE_FULL

    @classmethod
    def with_state(
        cls,
        number: int,
        accountable: int,
        dead: int,
        overhead: int,
        file_bytes: int,
        state: int,
    ) -> "SegmentInfo":
        return cls(
            number=number,
            accountable_bytes=accountable,
            dead_bytes=dead,
            overhead_bytes=overhead,
            file_bytes=file_bytes,
            is_tail=state == STATE_TAIL,
            is_free=state == STATE_FREE,
        )

    def reset_for_reuse(self) -> None:
        self.accountable_bytes = 0
        self.dead_bytes = 0
        self.overhead_bytes = 0
        self.file_bytes = 0
        self.is_free = False
        self.is_tail = False


class SegmentManager:
    """Owns the segment files and the append cursor.

    The manager frames its own LINK and SEG_HEADER records through the
    store's :class:`RecordCodec` so the hash chain covers them in log
    order.
    """

    def __init__(
        self,
        untrusted: UntrustedStore,
        codec: RecordCodec,
        segment_size: int,
    ) -> None:
        self.untrusted = untrusted
        self.codec = codec
        self.segment_size = segment_size
        self.sync_enabled = True
        self.segments: Dict[int, SegmentInfo] = {}
        self.tail_segment: Optional[int] = None
        self.tail_offset = 0
        self.next_segment_number = 1
        self.residual_segments: Set[int] = set()
        self._dirty: Set[int] = set()

    # -- setup ------------------------------------------------------------------

    def create_first_segment(self) -> None:
        """Format-time bootstrap: create the first tail segment."""
        if self.segments:
            raise ChunkStoreError("segment manager already initialized")
        self._open_tail(self._take_slot())

    def preallocate_free_slots(self, count: int) -> None:
        """Reserve ``count`` recycled-empty slots (initial database size)."""
        for _ in range(count):
            number = self.next_segment_number
            self.next_segment_number += 1
            info = SegmentInfo(number=number, is_free=True)
            self.segments[number] = info
            self.untrusted.write(segment_file_name(number), 0, b"")

    def restore(
        self,
        infos: List[SegmentInfo],
        tail_segment: int,
        tail_offset: int,
        next_segment_number: int,
        residual_segments: Set[int],
    ) -> None:
        """Re-adopt segment state at recovery time."""
        self.segments = {info.number: info for info in infos}
        if tail_segment not in self.segments:
            raise ChunkStoreError(f"tail segment {tail_segment} missing from table")
        for info in self.segments.values():
            info.is_tail = info.number == tail_segment
            if info.is_tail:
                info.is_free = False
        self.tail_segment = tail_segment
        self.tail_offset = tail_offset
        self.next_segment_number = next_segment_number
        self.residual_segments = set(residual_segments)
        self.residual_segments.add(tail_segment)
        # Re-establish "file length == log bytes" for the tail: recovery
        # may have discarded a torn or nondurable tail.  Only shrink —
        # zero-extending would fabricate log bytes that were never
        # written (and scanning guarantees tail_offset <= file size).
        name = segment_file_name(tail_segment)
        actual = self.untrusted.size(name)
        if actual < tail_offset:
            raise ChunkStoreError(
                f"tail segment {tail_segment} is shorter ({actual}) than the "
                f"recovered log end ({tail_offset})"
            )
        if actual > tail_offset:
            self.untrusted.truncate(name, tail_offset)
        self.segments[tail_segment].file_bytes = tail_offset

    # -- appends ----------------------------------------------------------------

    def append_record(self, kind: int, body: bytes, accountable_bytes: int = 0):
        """Frame and append one record; return ``(segment, record_offset)``.

        ``accountable_bytes`` is the number of payload bytes inside the
        record that participate in live-space accounting.
        """
        record_size = self.codec.record_size(len(body))
        self._ensure_capacity(record_size)
        record = self.codec.frame(kind, body)
        segment = self.tail_segment
        offset = self.tail_offset
        self.untrusted.write(segment_file_name(segment), offset, record)
        self.tail_offset += len(record)
        info = self.segments[segment]
        info.file_bytes = self.tail_offset
        info.accountable_bytes += accountable_bytes
        info.overhead_bytes += len(record) - accountable_bytes
        self._dirty.add(segment)
        self.residual_segments.add(segment)
        return segment, offset

    def _ensure_capacity(self, record_size: int) -> None:
        if self.tail_segment is None:
            raise ChunkStoreError("segment manager not initialized")
        link_size = self.codec.record_size(LinkBody._FIXED.size)
        remaining = self.segment_size - self.tail_offset - link_size
        if record_size <= remaining:
            return
        header_size = self.codec.record_size(SegHeaderBody._FIXED.size)
        if self.tail_offset <= header_size:
            # Fresh segment: accept an oversized record rather than loop.
            return
        self._link_to_new_tail()

    def _take_slot(self) -> int:
        """Pick the next tail: recycle a free slot or grow by one."""
        free = sorted(
            number for number, info in self.segments.items() if info.is_free
        )
        if free:
            return free[0]
        number = self.next_segment_number
        self.next_segment_number += 1
        return number

    def _link_to_new_tail(self) -> None:
        target = self._take_slot()
        link = self.codec.frame(RecordKind.LINK, LinkBody(next_segment=target).encode())
        old_tail = self.tail_segment
        self.untrusted.write(segment_file_name(old_tail), self.tail_offset, link)
        self.tail_offset += len(link)
        info = self.segments[old_tail]
        info.file_bytes = self.tail_offset
        info.overhead_bytes += len(link)
        info.is_tail = False
        self._dirty.add(old_tail)
        self._open_tail(target)

    def _open_tail(self, number: int) -> None:
        info = self.segments.get(number)
        if info is None:
            info = SegmentInfo(number=number)
            self.segments[number] = info
        else:
            if not info.is_free:
                raise ChunkStoreError(f"cannot reuse non-free segment {number}")
            info.reset_for_reuse()
        header = self.codec.frame(
            RecordKind.SEG_HEADER, SegHeaderBody(segment=number).encode()
        )
        name = segment_file_name(number)
        if self.untrusted.exists(name):
            self.untrusted.truncate(name, 0)
        self.untrusted.write(name, 0, header)
        info.file_bytes = len(header)
        info.overhead_bytes += len(header)
        info.is_tail = True
        self.tail_segment = number
        self.tail_offset = len(header)
        self._dirty.add(number)
        self.residual_segments.add(number)

    # -- reads ------------------------------------------------------------------

    def read(self, segment: int, offset: int, length: int) -> bytes:
        """Read raw bytes out of a segment (payload or record fetch)."""
        info = self.segments.get(segment)
        if info is None or info.is_free:
            raise ChunkStoreError(f"read from unknown or free segment {segment}")
        data = self.untrusted.read(segment_file_name(segment), offset, length)
        if len(data) != length:
            raise ChunkStoreError(
                f"short read in segment {segment}: wanted {length}, got {len(data)}"
            )
        return data

    # -- accounting ----------------------------------------------------------------

    def mark_dead(self, segment: int, nbytes: int) -> None:
        """Record that ``nbytes`` of payload in ``segment`` are obsolete."""
        info = self.segments.get(segment)
        if info is None or info.is_free:
            return  # slot already recycled; nothing left to account
        info.dead_bytes += nbytes
        if info.dead_bytes > info.accountable_bytes:
            raise ChunkStoreError(
                f"accounting underflow in segment {segment}: "
                f"dead {info.dead_bytes} > accountable {info.accountable_bytes}"
            )

    def live_bytes(self) -> int:
        return sum(info.live_bytes for info in self.segments.values())

    def capacity_bytes(self) -> int:
        """Total allocated space: every slot counts at least one segment."""
        return sum(
            max(self.segment_size, info.file_bytes)
            for info in self.segments.values()
        )

    def overhead_bytes_total(self) -> int:
        return sum(info.overhead_bytes for info in self.segments.values())

    def utilization(self) -> float:
        """Live fraction of the *usable* capacity.

        Record framing (headers, tags, segment headers, links) is
        bookkeeping, not chunk space; excluding it makes a fully-live
        segment measure ~1.0, matching the paper's "fraction of the
        database files that contain live chunks".
        """
        usable = self.capacity_bytes() - self.overhead_bytes_total()
        return self.live_bytes() / usable if usable > 0 else 0.0

    def free_slot_count(self) -> int:
        return sum(1 for info in self.segments.values() if info.is_free)

    def cleanable_segments(self) -> List[SegmentInfo]:
        """Victim candidates ordered by live bytes (best victims first).

        Excludes the tail, free slots, and residual-log segments (their
        records are still needed by crash recovery until the next
        checkpoint moves the master anchor).
        """
        victims = [
            info
            for info in self.segments.values()
            if not info.is_tail
            and not info.is_free
            and info.number not in self.residual_segments
        ]
        victims.sort(key=lambda info: info.live_bytes)
        return victims

    # -- lifecycle ----------------------------------------------------------------

    def free_segment(self, segment: int) -> None:
        """Recycle a segment whose live data has been relocated."""
        info = self.segments.get(segment)
        if info is None:
            raise ChunkStoreError(f"cannot free unknown segment {segment}")
        if info.is_tail:
            raise ChunkStoreError("cannot free the tail segment")
        if segment in self.residual_segments:
            raise ChunkStoreError(
                f"segment {segment} is part of the residual log"
            )
        name = segment_file_name(segment)
        if self.untrusted.exists(name):
            self.untrusted.truncate(name, 0)
        info.reset_for_reuse()
        info.is_free = True
        self._dirty.discard(segment)

    def drop_slot(self, segment: int) -> None:
        """Remove a free slot entirely (shrinks the database)."""
        info = self.segments.get(segment)
        if info is None or not info.is_free:
            raise ChunkStoreError(f"can only drop free slots, not segment {segment}")
        del self.segments[segment]
        name = segment_file_name(segment)
        if self.untrusted.exists(name):
            self.untrusted.delete(name)

    def end_checkpoint(self) -> None:
        """The master anchor moved: only the tail remains residual."""
        self.residual_segments = {self.tail_segment}

    def sync_dirty(self) -> None:
        """Flush every segment written since the last sync.

        With ``sync_enabled`` off (benchmarking convenience), the dirty
        set is still cleared but no flush calls are issued.
        """
        if self.sync_enabled:
            for segment in sorted(self._dirty):
                if segment in self.segments:
                    self.untrusted.sync(segment_file_name(segment))
        self._dirty.clear()

    def snapshot_infos(self) -> List[SegmentInfo]:
        """Copies of all segment infos (for the master record)."""
        return [
            SegmentInfo(
                number=info.number,
                accountable_bytes=info.accountable_bytes,
                dead_bytes=info.dead_bytes,
                overhead_bytes=info.overhead_bytes,
                file_bytes=info.file_bytes,
                is_tail=info.is_tail,
                is_free=info.is_free,
            )
            for info in self.segments.values()
        ]
