"""On-log record framing and binary encodings for the chunk store.

Everything in the untrusted store is a sequence of *records*::

    record  := header || body || tag
    header  := magic(2) | kind(1) | flags(1) | body_len(4)
    tag     := MAC(chain_after_record)   when the security profile is on
               crc32(header || body)     when it is off

With security on, a running hash chain covers every record byte, so the
residual log replayed at recovery is authenticated end to end by the tag
of each record; with security off the tag still detects torn writes
(crash atomicity needs that even without an attacker).

Locators — (segment, offset, length, hash) tuples — are how the location
map points at chunk payloads and at its own nodes in the log.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ChunkStoreError, TamperDetectedError

__all__ = [
    "RECORD_MAGIC",
    "FORMAT_VERSION",
    "RecordKind",
    "Locator",
    "CommitItem",
    "CommitBody",
    "MapNodeBody",
    "CheckpointBody",
    "SegHeaderBody",
    "LinkBody",
    "RecordCodec",
]

RECORD_MAGIC = b"TR"
FORMAT_VERSION = 1

_HEADER = struct.Struct(">2sBBI")
_CRC = struct.Struct(">I")


class RecordKind:
    """Record kind bytes (header field 3)."""

    SEG_HEADER = 1
    COMMIT = 2
    MAP_NODE = 3
    CHECKPOINT = 4
    LINK = 5

    ALL = (SEG_HEADER, COMMIT, MAP_NODE, CHECKPOINT, LINK)


# Commit flags.
FLAG_DURABLE = 0x01
FLAG_CLEANER = 0x02  # relocation commit produced by the log cleaner


@dataclass(frozen=True)
class Locator:
    """Where a payload lives in the log, plus its digest.

    ``hash_value`` is empty when the security profile is off; with
    security on it is the digest of the (encrypted) payload bytes and a
    Merkle leaf/child hash at the same time.
    """

    segment: int
    offset: int
    length: int
    hash_value: bytes = b""

    _FIXED = struct.Struct(">IQI")

    def encode(self, hash_size: int) -> bytes:
        if len(self.hash_value) != hash_size:
            raise ChunkStoreError(
                f"locator hash is {len(self.hash_value)} bytes, expected {hash_size}"
            )
        return self._FIXED.pack(self.segment, self.offset, self.length) + self.hash_value

    @classmethod
    def decode(cls, data: bytes, offset: int, hash_size: int) -> Tuple["Locator", int]:
        segment, payload_offset, length = cls._FIXED.unpack_from(data, offset)
        offset += cls._FIXED.size
        hash_value = bytes(data[offset:offset + hash_size])
        if len(hash_value) != hash_size:
            raise ChunkStoreError("truncated locator")
        return cls(segment, payload_offset, length, hash_value), offset + hash_size

    @classmethod
    def encoded_size(cls, hash_size: int) -> int:
        return cls._FIXED.size + hash_size


@dataclass
class CommitItem:
    """One chunk write inside a commit record."""

    chunk_id: int
    payload: bytes


@dataclass
class CommitBody:
    """Parsed body of a COMMIT record."""

    seqno: int
    durable: bool
    from_cleaner: bool
    expected_counter: int
    next_chunk_id: int
    writes: List[CommitItem]
    deallocs: List[int]
    # Filled by the codec when parsing: byte offset of each write's payload
    # relative to the record start (header byte 0).
    payload_offsets: Optional[List[int]] = None

    _FIXED = struct.Struct(">QBQQII")
    _WRITE_HEAD = struct.Struct(">QI")
    _DEALLOC = struct.Struct(">Q")

    def encode(self) -> bytes:
        flags = (FLAG_DURABLE if self.durable else 0) | (
            FLAG_CLEANER if self.from_cleaner else 0
        )
        parts = [
            self._FIXED.pack(
                self.seqno,
                flags,
                self.expected_counter,
                self.next_chunk_id,
                len(self.writes),
                len(self.deallocs),
            )
        ]
        for item in self.writes:
            parts.append(self._WRITE_HEAD.pack(item.chunk_id, len(item.payload)))
            parts.append(item.payload)
        for chunk_id in self.deallocs:
            parts.append(self._DEALLOC.pack(chunk_id))
        return b"".join(parts)

    @classmethod
    def decode(cls, body: bytes, body_offset_in_record: int) -> "CommitBody":
        try:
            seqno, flags, counter, next_cid, n_writes, n_deallocs = cls._FIXED.unpack_from(
                body, 0
            )
            offset = cls._FIXED.size
            writes: List[CommitItem] = []
            payload_offsets: List[int] = []
            for _ in range(n_writes):
                chunk_id, length = cls._WRITE_HEAD.unpack_from(body, offset)
                offset += cls._WRITE_HEAD.size
                payload = bytes(body[offset:offset + length])
                if len(payload) != length:
                    raise ChunkStoreError("truncated commit payload")
                payload_offsets.append(body_offset_in_record + offset)
                offset += length
                writes.append(CommitItem(chunk_id, payload))
            deallocs: List[int] = []
            for _ in range(n_deallocs):
                (chunk_id,) = cls._DEALLOC.unpack_from(body, offset)
                offset += cls._DEALLOC.size
                deallocs.append(chunk_id)
        except struct.error as exc:
            raise ChunkStoreError(f"malformed commit record: {exc}") from exc
        return cls(
            seqno=seqno,
            durable=bool(flags & FLAG_DURABLE),
            from_cleaner=bool(flags & FLAG_CLEANER),
            expected_counter=counter,
            next_chunk_id=next_cid,
            writes=writes,
            deallocs=deallocs,
            payload_offsets=payload_offsets,
        )

    def encoded_payload_offsets(self, body_offset_in_record: int) -> List[int]:
        """Offsets (relative to record start) each payload will land at."""
        offsets = []
        position = body_offset_in_record + self._FIXED.size
        for item in self.writes:
            position += self._WRITE_HEAD.size
            offsets.append(position)
            position += len(item.payload)
        return offsets


@dataclass
class MapNodeBody:
    """Parsed body of a MAP_NODE record (one location-map node payload)."""

    level: int
    index: int
    payload: bytes
    payload_offset: int = 0  # relative to record start, filled on parse

    _FIXED = struct.Struct(">BQI")

    def encode(self) -> bytes:
        return self._FIXED.pack(self.level, self.index, len(self.payload)) + self.payload

    @classmethod
    def decode(cls, body: bytes, body_offset_in_record: int) -> "MapNodeBody":
        try:
            level, index, length = cls._FIXED.unpack_from(body, 0)
        except struct.error as exc:
            raise ChunkStoreError(f"malformed map-node record: {exc}") from exc
        payload = bytes(body[cls._FIXED.size:cls._FIXED.size + length])
        if len(payload) != length:
            raise ChunkStoreError("truncated map-node payload")
        return cls(level, index, payload, body_offset_in_record + cls._FIXED.size)

    @classmethod
    def payload_offset_in_record(cls, body_offset_in_record: int) -> int:
        return body_offset_in_record + cls._FIXED.size


@dataclass
class CheckpointBody:
    """Parsed body of a CHECKPOINT record (map flushed; master follows)."""

    seqno: int
    expected_counter: int
    next_chunk_id: int
    depth: int
    root: Optional[Locator]

    _FIXED = struct.Struct(">QQQBB")

    def encode(self, hash_size: int) -> bytes:
        has_root = 1 if self.root is not None else 0
        head = self._FIXED.pack(
            self.seqno, self.expected_counter, self.next_chunk_id, self.depth, has_root
        )
        if self.root is None:
            return head
        return head + self.root.encode(hash_size)

    @classmethod
    def decode(cls, body: bytes, hash_size: int) -> "CheckpointBody":
        try:
            seqno, counter, next_cid, depth, has_root = cls._FIXED.unpack_from(body, 0)
        except struct.error as exc:
            raise ChunkStoreError(f"malformed checkpoint record: {exc}") from exc
        root = None
        if has_root:
            root, _ = Locator.decode(body, cls._FIXED.size, hash_size)
        return cls(seqno, counter, next_cid, depth, root)


@dataclass
class SegHeaderBody:
    """Parsed body of a SEG_HEADER record (first record of a segment)."""

    segment: int
    version: int = FORMAT_VERSION

    _FIXED = struct.Struct(">IH")

    def encode(self) -> bytes:
        return self._FIXED.pack(self.segment, self.version)

    @classmethod
    def decode(cls, body: bytes) -> "SegHeaderBody":
        try:
            segment, version = cls._FIXED.unpack_from(body, 0)
        except struct.error as exc:
            raise ChunkStoreError(f"malformed segment header: {exc}") from exc
        return cls(segment, version)


@dataclass
class LinkBody:
    """Parsed body of a LINK record (log continues in another segment)."""

    next_segment: int

    _FIXED = struct.Struct(">I")

    def encode(self) -> bytes:
        return self._FIXED.pack(self.next_segment)

    @classmethod
    def decode(cls, body: bytes) -> "LinkBody":
        try:
            (next_segment,) = cls._FIXED.unpack_from(body, 0)
        except struct.error as exc:
            raise ChunkStoreError(f"malformed link record: {exc}") from exc
        return cls(next_segment)


class RecordCodec:
    """Frames records and maintains the residual-log hash chain.

    With the security profile on, the codec holds the running chain value;
    ``frame`` advances it and appends a MAC tag, ``parse`` recomputes and
    verifies.  With security off, a CRC32 stands in for the tag and the
    chain is not maintained.
    """

    def __init__(self, hash_engine=None, mac=None, chain: bytes = b"") -> None:
        self.secure = mac is not None
        self._engine = hash_engine
        self._mac = mac
        self.chain = chain
        if self.secure and hash_engine is None:
            raise ChunkStoreError("secure codec needs a hash engine")
        self.tag_size = mac.tag_size if self.secure else _CRC.size

    def record_size(self, body_len: int) -> int:
        """Total framed size of a record with the given body length."""
        return _HEADER.size + body_len + self.tag_size

    @property
    def header_size(self) -> int:
        return _HEADER.size

    def frame(self, kind: int, body: bytes) -> bytes:
        """Produce the full record bytes, advancing the hash chain."""
        header = _HEADER.pack(RECORD_MAGIC, kind, 0, len(body))
        if self.secure:
            self.chain = self._engine.digest(self.chain + header + body)
            tag = self._mac.tag(self.chain)
        else:
            tag = _CRC.pack(zlib.crc32(header + body) & 0xFFFFFFFF)
        return header + body + tag

    def parse_header(self, data: bytes) -> Tuple[int, int]:
        """Parse a record header; return ``(kind, body_len)``."""
        if len(data) < _HEADER.size:
            raise ChunkStoreError("truncated record header")
        magic, kind, _flags, body_len = _HEADER.unpack_from(data, 0)
        if magic != RECORD_MAGIC:
            raise ChunkStoreError("bad record magic")
        if kind not in RecordKind.ALL:
            raise ChunkStoreError(f"unknown record kind {kind}")
        return kind, body_len

    def verify_and_advance(self, record: bytes) -> Tuple[int, bytes]:
        """Validate one full framed record; return ``(kind, body)``.

        Advances the hash chain on success.  Raises
        :class:`TamperDetectedError` when the tag does not match.
        """
        kind, body_len = self.parse_header(record)
        expected = self.record_size(body_len)
        if len(record) != expected:
            raise ChunkStoreError(
                f"record length mismatch: got {len(record)}, expected {expected}"
            )
        header_and_body = record[:_HEADER.size + body_len]
        tag = record[_HEADER.size + body_len:]
        if self.secure:
            candidate_chain = self._engine.digest(self.chain + header_and_body)
            if not self._mac.verify(candidate_chain, tag):
                raise TamperDetectedError(
                    "record authentication failed: log was modified"
                )
            self.chain = candidate_chain
        else:
            expected_crc = _CRC.pack(zlib.crc32(header_and_body) & 0xFFFFFFFF)
            if tag != expected_crc:
                raise TamperDetectedError("record checksum failed (torn write?)")
        return kind, record[_HEADER.size:_HEADER.size + body_len]
