"""Merkle scrub: full-tree verification with damage localization.

The location map *is* the embedded Merkle tree (section 3 of the paper),
so one walk from the root locator can verify every reachable map node
and chunk payload against its authenticated digest — without
materializing the database above the chunk layer.  Unlike the normal
read path, which raises :class:`~repro.errors.TamperDetectedError` at
the first bad byte, the scrubber records each failure in a structured
:class:`DamageReport` and keeps walking, so the repair engine learns
*exactly which* chunks and map nodes are damaged and which segments
carry them.

A node that fails to load takes its whole subtree with it; the report
records the chunk-id range the lost node covered instead of guessing at
its children.  Because damage is recorded at the highest unreachable
node, no reported node is a descendant of another reported node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chunkstore.format import Locator
from repro.chunkstore.locmap import MapNode
from repro.errors import TDBError

__all__ = ["DamagedChunk", "DamagedNode", "DamageReport", "scrub_store"]


@dataclass(frozen=True)
class DamagedChunk:
    """One chunk payload that failed hash validation or could not be read."""

    chunk_id: int
    segment: int
    offset: int
    length: int
    error: str


@dataclass(frozen=True)
class DamagedNode:
    """One unreachable map node and the chunk-id range it covered.

    ``id_lo``/``id_hi`` bound the half-open range ``[id_lo, id_hi)`` of
    chunk ids whose mappings were lost with this node — every id in the
    range is *suspect*; the backup chain decides which actually existed.
    """

    level: int
    index: int
    id_lo: int
    id_hi: int
    segment: int
    offset: int
    length: int
    error: str


@dataclass
class DamageReport:
    """Structured result of one scrub pass.

    ``verified_chunks``/``verified_nodes`` count payloads re-hashed from
    media *this pass*; ``memo_skipped_chunks``/``memo_skipped_nodes``
    count payloads an incremental scrub accepted on the strength of the
    digest memo without touching media.  A deep scrub always reports
    zero skips.
    """

    damaged_chunks: List[DamagedChunk] = field(default_factory=list)
    damaged_nodes: List[DamagedNode] = field(default_factory=list)
    verified_chunks: int = 0
    verified_nodes: int = 0
    memo_skipped_chunks: int = 0
    memo_skipped_nodes: int = 0
    root_lost: bool = False

    @property
    def clean(self) -> bool:
        return not (self.damaged_chunks or self.damaged_nodes or self.root_lost)

    def damaged_segments(self) -> List[int]:
        """Segment numbers carrying at least one damaged payload, sorted."""
        segments = {entry.segment for entry in self.damaged_chunks}
        segments.update(entry.segment for entry in self.damaged_nodes)
        return sorted(segments)

    def suspect_id_ranges(self) -> List[Tuple[int, int]]:
        """Half-open chunk-id ranges lost with damaged map nodes."""
        return sorted((node.id_lo, node.id_hi) for node in self.damaged_nodes)

    def summary(self) -> str:
        if self.clean:
            skipped = self.memo_skipped_chunks + self.memo_skipped_nodes
            suffix = f" ({skipped} memo-skipped)" if skipped else ""
            return (
                f"clean: {self.verified_chunks} chunks and "
                f"{self.verified_nodes} map nodes verified{suffix}"
            )
        parts = [
            f"{len(self.damaged_chunks)} damaged chunks",
            f"{len(self.damaged_nodes)} damaged map nodes",
            f"{self.verified_chunks} chunks verified",
        ]
        if self.root_lost:
            parts.insert(0, "map root lost")
        return "; ".join(parts)


def _id_span(fanout: int, level: int, index: int) -> Tuple[int, int]:
    """Chunk-id range ``[lo, hi)`` covered by map node ``(level, index)``."""
    span = fanout ** (level + 1)
    return index * span, (index + 1) * span


def scrub_store(
    store, collect: bool = False, deep: bool = True
) -> Tuple[DamageReport, Dict[int, bytes]]:
    """Walk the store's Merkle tree verifying every node and payload.

    ``store`` is a :class:`~repro.chunkstore.store.ChunkStore` (the caller
    holds its lock).  Map nodes are re-loaded *from media* via the store's
    node I/O — the cache is bypassed so the scrub verifies the bytes that
    would survive a restart, except for dirty nodes (salvage replay
    state), which exist only in memory and are walked as-is.

    With ``collect=True`` the plaintext of every verified chunk is
    returned too (the salvage-export path); otherwise the payload dict is
    empty and payload bytes are dropped after verification.

    With ``deep=False`` the walk consults the store's digest memo: a
    payload whose current locator matches its last-verified version is
    accepted without re-reading media (map nodes additionally need a
    live cache copy to keep walking their children).  ``collect=True``
    and stores without a memo (salvage, memo disabled) always scrub
    deep.  Every payload a deep pass does verify is noted in the memo,
    so deep-then-incremental is the cheap steady-state pattern.
    """
    lmap = store.location_map
    fanout = lmap.fanout
    memo = store.digest_memo
    effective_deep = deep or collect or memo is None
    report = DamageReport()
    payloads: Dict[int, bytes] = {}

    # Leaf-chunk verification is embarrassingly parallel (digest + trial
    # decryption per payload, no shared state), so when the store's
    # digest pool has workers, raw payloads are read here in-process and
    # verified in batches across the pool.  collect=True stays serial —
    # it needs every plaintext back, which would negate the win.  The
    # pool itself falls back to in-process verification if its workers
    # die, so a crashed worker costs time, never a missed damage report.
    pool = getattr(store, "digest_pool", None)
    use_pool = (
        pool is not None and pool.parallel and store.secure and not collect
    )
    pending: List[Tuple[int, Locator, bytes]] = []
    flush_threshold = (
        pool.batch_size * pool.max_workers if use_pool else 0
    )

    def record_damaged_chunk(chunk_id: int, locator: Locator, error: str):
        report.damaged_chunks.append(
            DamagedChunk(
                chunk_id=chunk_id,
                segment=locator.segment,
                offset=locator.offset,
                length=locator.length,
                error=error,
            )
        )

    def flush_pending() -> None:
        if not pending:
            return
        jobs = [(raw, locator.hash_value) for _, locator, raw in pending]
        verdicts = pool.verify_payloads(store.verify_spec, jobs)
        for (chunk_id, locator, _), verdict in zip(pending, verdicts):
            # Each pooled verification re-hashed the payload, exactly
            # like read_payload would have; keep the counter honest so
            # "scrub re-hashed nothing" stays directly observable.
            store.perf.incr("payload_digests")
            if verdict is None:
                report.verified_chunks += 1
                if memo is not None:
                    memo.note_chunk(chunk_id, locator)
            else:
                record_damaged_chunk(chunk_id, locator, verdict)
        pending.clear()

    def cached_clean_node(level: int, index: int) -> Optional[MapNode]:
        """In-memory copy of node ``(level, index)`` if one exists."""
        if lmap._root is not None and (level, index) == (lmap.depth - 1, 0):
            return lmap._root
        return lmap.cache.peek(lmap.namespace, (level, index))

    def record_damaged_node(level: int, index: int, locator: Locator, exc: TDBError):
        lo, hi = _id_span(fanout, level, index)
        report.damaged_nodes.append(
            DamagedNode(
                level=level,
                index=index,
                id_lo=lo,
                id_hi=hi,
                segment=locator.segment,
                offset=locator.offset,
                length=locator.length,
                error=f"{type(exc).__name__}: {exc}",
            )
        )

    def load_fresh(locator: Locator, level: int, index: int) -> Optional[MapNode]:
        cached = cached_clean_node(level, index)
        if cached is not None and cached.dirty:
            # Newer than its media copy (salvage replay applied commits
            # to it); the in-memory node is the truth being scrubbed.
            return cached
        if (
            not effective_deep
            and cached is not None
            and memo.node_verified(level, index, locator)
        ):
            # This exact on-media version already verified and we still
            # hold its decoded form — keep walking without re-reading.
            report.memo_skipped_nodes += 1
            return cached
        try:
            node = store.node_io.load_node(locator, level, index)
        except TDBError as exc:
            record_damaged_node(level, index, locator, exc)
            return None
        report.verified_nodes += 1
        return node

    def visit(node: MapNode) -> None:
        if node.level == 0:
            base = node.index * fanout
            for slot in sorted(node.children):
                chunk_id = base + slot
                locator = node.children[slot]
                if not effective_deep and memo.chunk_verified(chunk_id, locator):
                    report.memo_skipped_chunks += 1
                    continue
                if use_pool:
                    try:
                        raw = store.segments.read(
                            locator.segment, locator.offset, locator.length
                        )
                    except TDBError as exc:
                        record_damaged_chunk(
                            chunk_id, locator, f"{type(exc).__name__}: {exc}"
                        )
                    else:
                        pending.append((chunk_id, locator, raw))
                        if len(pending) >= flush_threshold:
                            flush_pending()
                    continue
                try:
                    data = store.read_payload(locator)
                except TDBError as exc:
                    record_damaged_chunk(
                        chunk_id, locator, f"{type(exc).__name__}: {exc}"
                    )
                else:
                    report.verified_chunks += 1
                    if memo is not None:
                        memo.note_chunk(chunk_id, locator)
                    if collect:
                        payloads[chunk_id] = data
            return
        for slot in sorted(node.children):
            child = load_fresh(
                node.children[slot], node.level - 1, node.index * fanout + slot
            )
            if child is not None:
                visit(child)
        if node.dirty:
            # Children created since the last checkpoint live only in
            # the cache; the parent has no locator for them yet.
            for slot in range(fanout):
                if slot in node.children:
                    continue
                key = (node.level - 1, node.index * fanout + slot)
                cached = lmap.cache.peek(lmap.namespace, key)
                if cached is not None:
                    visit(cached)

    in_memory_root = lmap._root
    root_locator = lmap.root_locator
    if in_memory_root is not None and in_memory_root.dirty:
        visit(in_memory_root)
    elif root_locator is not None:
        root = load_fresh(root_locator, lmap.depth - 1, 0)
        if root is None:
            report.root_lost = True
            return report, payloads
        visit(root)
    elif in_memory_root is not None:
        visit(in_memory_root)
    # else: empty store, trivially clean
    flush_pending()
    return report, payloads
