"""Replica side: verify-then-install shipment application.

The applier treats the shipping channel exactly as the chunk store
treats its untrusted store: *nothing is trusted until verified*.  A
shipment is rebuilt in an in-memory candidate store and must survive the
full local-attacker gauntlet before a single byte reaches the replica's
durable directory:

1. **Monotonicity** against the replica's MACed high-water sidecar
   (:mod:`repro.replication.state`): an older generation is a replayed
   shipment, a same-generation fork or an identity change is tampering.
2. **Transport digests**: every fetched segment must match the digest in
   its manifest (a lying manifest only changes *which* bytes get fetched
   — the cryptographic checks below still decide whether they are
   trusted).
3. **`ChunkStore.open`** of the candidate under the shared device secret
   with a :class:`~repro.platform.MirrorOneWayCounter` pinned to the
   manifest's counter value: master MAC, residual-log hash chain, and
   *strict* counter equality.  The mirror's refusal to increment turns
   the store's lost-commit tolerance into a rejection — truncating the
   newest commit and rewinding the asserted counter by one does not fly
   on a replica.
4. **Deep Merkle scrub**: open() walks structure; only the deep scrub
   re-hashes every payload against the authenticated tree, catching
   corrupt sealed-segment bytes the open never touched.

Only then does the image go to disk, the sidecar advance, and the
serving database swap — under an exclusive
:class:`TransactionGate` hold so no reader ever spans two images.
"""

from __future__ import annotations

import base64
import contextlib
import os
import threading
from typing import Any, Dict, List, Optional

from repro.chunkstore import ChunkStore
from repro.chunkstore.master import MASTER_FILES
from repro.chunkstore.segments import segment_file_name
from repro.config import (
    ChunkStoreConfig,
    CollectionStoreConfig,
    ObjectStoreConfig,
)
from repro.crypto import create_hash_engine
from repro.crypto.pool import DigestPool
from repro.db import Database
from repro.errors import (
    ForkDetectedError,
    ReplayDetectedError,
    ReplicationError,
    TamperDetectedError,
    TDBError,
)
from repro.platform import (
    FileArchivalStore,
    FileOneWayCounter,
    FileSecretStore,
    FileUntrustedStore,
    MemoryOneWayCounter,
    MemoryUntrustedStore,
    MirrorOneWayCounter,
)
from repro.platform.resilient import RetryPolicy
from repro.replication.state import (
    ReplicaState,
    load_state,
    remove_state,
    save_state,
)
from repro.replication.shipper import MAX_SHIP_BYTES
from repro.proofs.headlog import HeadVerifier, TransparencyLog

__all__ = [
    "ReplicaApplier",
    "TransactionGate",
    "open_replica_database",
    "promote_replica",
    "seed_replica",
]


class TransactionGate:
    """Shared/exclusive gate between serving reads and image swaps.

    Every serving transaction holds the gate shared for its lifetime;
    the applier takes it exclusively around install-and-swap.  Readers
    therefore always see one consistent image, and a swap waits for
    in-flight transactions instead of yanking the store from under them.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False

    def acquire_shared(self) -> None:
        with self._cond:
            while self._writer:
                self._cond.wait()
            self._readers += 1

    def release_shared(self) -> None:
        with self._cond:
            self._readers -= 1
            self._cond.notify_all()

    @contextlib.contextmanager
    def shared(self):
        self.acquire_shared()
        try:
            yield
        finally:
            self.release_shared()

    @contextlib.contextmanager
    def exclusive(self):
        with self._cond:
            while self._writer:
                self._cond.wait()
            self._writer = True
            while self._readers:
                self._cond.wait()
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


def open_replica_database(
    directory: str,
    counter_value: int,
    chunk_config: Optional[ChunkStoreConfig] = None,
    object_config: Optional[ObjectStoreConfig] = None,
    collection_config: Optional[CollectionStoreConfig] = None,
    registry=None,
) -> Database:
    """Open a replica directory read-only against a mirrored counter.

    The replica has no counter hardware; ``counter_value`` is the value
    the applier verified for the installed image (from the sidecar).
    """
    directory = os.path.abspath(directory)
    untrusted = FileUntrustedStore(os.path.join(directory, "data"))
    secret = FileSecretStore(os.path.join(directory, "secret.key"), create=False)
    archival = FileArchivalStore(os.path.join(directory, "archive"))
    return Database._assemble(
        untrusted,
        secret,
        MirrorOneWayCounter(counter_value),
        archival,
        chunk_config or ChunkStoreConfig(),
        object_config or ObjectStoreConfig(),
        collection_config or CollectionStoreConfig(),
        registry,
        fresh=False,
        read_only=True,
    )


def seed_replica(
    directory: str,
    backup_names,
    archival=None,
    chunk_config: Optional[ChunkStoreConfig] = None,
) -> ReplicaState:
    """Bootstrap a replica image from a backup chain (catch-up seeding).

    Restores the chain into ``directory`` and records a ``seeded``
    sidecar, so the replica can serve (stale) reads before its first
    contact with the primary.  The restored store carries its own fresh
    identity; the first successful sync notices the uuid mismatch —
    allowed exactly because the sidecar says ``seeded`` — and replaces
    the image with the primary's, adopting its identity.

    ``secret.key`` must already be provisioned in ``directory`` and the
    backups must come from the same device secret, or the restore's MAC
    checks fail.  Backups are read from ``archival`` when given, else
    from the replica's own ``archive/`` directory.
    """
    from repro.backupstore import BackupStore

    directory = os.path.abspath(directory)
    os.makedirs(directory, exist_ok=True)
    secret = FileSecretStore(os.path.join(directory, "secret.key"), create=False)
    if archival is None:
        archival = FileArchivalStore(os.path.join(directory, "archive"))
    untrusted = FileUntrustedStore(os.path.join(directory, "data"))
    counter = MemoryOneWayCounter()
    store = BackupStore(archival, secret).restore(
        list(backup_names), untrusted, secret, counter, chunk_config
    )
    try:
        state = ReplicaState(
            db_uuid=store.db_uuid.hex(),
            generation=store.generation,
            commit_seqno=store.commit_seqno,
            counter=store.stats().counter_value,
            seeded=True,
        )
    finally:
        store.close()
    save_state(directory, state, secret)
    return state


def promote_replica(
    directory: str,
    chunk_config: Optional[ChunkStoreConfig] = None,
    object_config: Optional[ObjectStoreConfig] = None,
    collection_config: Optional[CollectionStoreConfig] = None,
    registry=None,
) -> Database:
    """Open a replica for writes after the primary died.

    Binds the image to a real :class:`~repro.platform.FileOneWayCounter`
    seeded with the last verified counter value, then reopens writable —
    the normal open's replay check now runs against local hardware, so
    from this moment the node defends its own history.  The sidecar is
    retired once the writable open succeeds; a failed promote leaves the
    replica state untouched (the counter file, being one-way, may only
    have moved forward).
    """
    directory = os.path.abspath(directory)
    secret = FileSecretStore(os.path.join(directory, "secret.key"), create=False)
    state = load_state(directory, secret)
    if state is None:
        raise ReplicationError(
            "nothing to promote: no verified replica state in "
            f"{directory}"
        )
    FileOneWayCounter.initialize(os.path.join(directory, "counter"), state.counter)
    db = Database.open_existing(
        directory,
        chunk_config,
        object_config,
        collection_config,
        registry,
    )
    remove_state(directory)
    return db


class ReplicaApplier:
    """Pulls shipments from a primary and maintains the replica image.

    ``client`` is anything with ``call(op, **params)`` and ``close()`` —
    normally a :class:`~repro.server.client.TdbClient` against the
    primary (built lazily from ``host``/``port``), or a tampering
    wrapper from :mod:`repro.testing.shipping` in tests.
    """

    def __init__(
        self,
        directory: str,
        host: Optional[str] = None,
        port: Optional[int] = None,
        client=None,
        chunk_config: Optional[ChunkStoreConfig] = None,
        object_config: Optional[ObjectStoreConfig] = None,
        collection_config: Optional[CollectionStoreConfig] = None,
        poll_interval: float = 0.2,
        digest_workers: int = 1,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.directory = os.path.abspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.secret_store = FileSecretStore(
            os.path.join(self.directory, "secret.key"), create=False
        )
        self.untrusted = FileUntrustedStore(os.path.join(self.directory, "data"))
        self.chunk_config = chunk_config or ChunkStoreConfig()
        self.object_config = object_config or ObjectStoreConfig()
        self.collection_config = collection_config or CollectionStoreConfig()
        self.poll_interval = poll_interval
        # Follow-mode link failures back off exponentially (capped, with
        # deterministic jitter) instead of hammering a down primary at
        # the poll interval.
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=6,
            base_delay=max(poll_interval, 0.01),
            multiplier=2.0,
            max_delay=max(poll_interval * 16.0, 2.0),
            jitter=0.25,
        )
        # Transport-digest verification of fetched/reused segments fans
        # across worker processes when digest_workers > 1 (0 = per CPU).
        self.digest_pool = DigestPool(max_workers=digest_workers)
        self.gate = TransactionGate()
        self.db: Optional[Database] = None
        self._host = host
        self._port = port
        self._client = client
        self._server = None  # TdbServer serving this replica, if any
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        # Counters (read under _lock via stats_snapshot)
        self._shipments_applied = 0
        self._up_to_date_polls = 0
        self._segments_fetched = 0
        self._segments_reused = 0
        self._bytes_fetched = 0
        self._tamper_rejected = 0
        self._last_error: Optional[str] = None
        self._applied_seqno = 0
        self._primary_seqno = 0
        self._link_failures = 0
        self._reconnects = 0
        self._consecutive_failures = 0
        self._last_backoff = 0.0
        self._heads_mirrored = 0
        self._head_forks = 0

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _call(self, op: str, **params) -> Dict[str, Any]:
        if self._client is None:
            if self._host is None or self._port is None:
                raise ReplicationError("no primary endpoint configured")
            from repro.server.client import TdbClient

            self._client = TdbClient(self._host, self._port)
        return self._client.call(op, **params)

    # ------------------------------------------------------------------
    # Sync
    # ------------------------------------------------------------------

    def sync_once(self) -> bool:
        """Fetch, verify, and install one shipment.

        Returns ``True`` when a new image was installed, ``False`` when
        the replica was already current.  Raises (and installs nothing)
        when the shipment fails verification.
        """
        state = load_state(self.directory, self.secret_store)
        params: Dict[str, Any] = {}
        if state is not None and not state.seeded:
            params = {
                "last_generation": state.generation,
                "last_seqno": state.commit_seqno,
            }
        try:
            manifest = self._call("repl.subscribe", **params)
            if manifest.get("up_to_date"):
                with self._lock:
                    self._up_to_date_polls += 1
                    self._primary_seqno = self._applied_seqno = int(
                        manifest.get("commit_seqno") or state.commit_seqno
                    )
                return False
            self._verify_monotonic(state, manifest)
            candidate, reused = self._fetch_candidate(manifest)
            verified_root = self._verify_candidate(manifest, candidate)
            head_plan = self._verify_heads(manifest, verified_root)
        except ForkDetectedError:
            with self._lock:
                self._head_forks += 1
                self._tamper_rejected += 1
            raise
        except TamperDetectedError:
            with self._lock:
                self._tamper_rejected += 1
            raise
        self._install(manifest, candidate, head_plan)
        with self._lock:
            self._shipments_applied += 1
            self._segments_reused += reused
            self._applied_seqno = self._primary_seqno = manifest["commit_seqno"]
        return True

    def _verify_monotonic(
        self, state: Optional[ReplicaState], manifest: Dict[str, Any]
    ) -> None:
        if state is None:
            return  # first contact: trust-on-first-use of the identity
        if manifest["db_uuid"] != state.db_uuid:
            if state.seeded:
                return  # adopting the primary's identity over the seed
            raise TamperDetectedError(
                "shipment carries a different database identity "
                f"({manifest['db_uuid'][:8]}... != {state.db_uuid[:8]}...)"
            )
        if manifest["generation"] < state.generation:
            raise ReplayDetectedError(
                f"shipment generation {manifest['generation']} is older than "
                f"the verified generation {state.generation}: replayed shipment"
            )
        if manifest["generation"] == state.generation and (
            manifest["commit_seqno"] != state.commit_seqno
            or manifest["expected_counter"] != state.counter
        ):
            raise TamperDetectedError(
                "shipment forks the verified generation "
                f"{state.generation} with different seqno/counter"
            )
        if (
            manifest["commit_seqno"] < state.commit_seqno
            or manifest["expected_counter"] < state.counter
        ):
            raise TamperDetectedError(
                "shipment advances the generation while regressing "
                "commit seqno or counter"
            )

    def _fetch_range(self, segment: int, offset: int, length: int) -> bytes:
        parts = []
        cursor, remaining = offset, length
        while remaining > 0:
            step = min(remaining, MAX_SHIP_BYTES)
            reply = self._call(
                "repl.segments", segment=segment, offset=cursor, length=step
            )
            data = base64.b64decode(reply["data"])
            if len(data) != step:
                raise TamperDetectedError(
                    f"segment {segment} shipment is truncated "
                    f"({len(data)} of {step} bytes at offset {cursor})"
                )
            parts.append(data)
            cursor += step
            remaining -= step
            with self._lock:
                self._bytes_fetched += len(data)
        return b"".join(parts)

    def _fetch_candidate(self, manifest: Dict[str, Any]):
        """Rebuild the shipped image in memory, reusing local bytes.

        A local segment whose prefix already matches the manifest digest
        is not re-fetched (and a grown tail fetches only its delta);
        any digest mismatch falls back to a full fetch, so local bit rot
        heals instead of wedging the replica.
        """
        candidate = MemoryUntrustedStore()
        reused = 0
        entries = manifest["segments"]
        # Pass 1: assemble a local candidate per segment (a full local
        # copy, or a local prefix grown by fetching only the tail delta)
        # and digest all candidates in one batch across the pool.
        locals_: Dict[int, bytes] = {}
        for position, entry in enumerate(entries):
            number, want = entry["number"], entry["file_bytes"]
            name = segment_file_name(number)
            if not self.untrusted.exists(name):
                continue
            have = min(self.untrusted.size(name), want)
            local = self.untrusted.read(name, 0, have) if have else b""
            if len(local) == want:
                locals_[position] = local
            elif len(local) < want:
                tail = self._fetch_range(number, len(local), want - len(local))
                locals_[position] = local + tail
        ordered = sorted(locals_)
        local_digests = dict(
            zip(
                ordered,
                self.digest_pool.sha256_many([locals_[i] for i in ordered]),
            )
        )
        chosen: Dict[int, bytes] = {}
        for position, digest in local_digests.items():
            if digest == entries[position]["digest"]:
                chosen[position] = locals_[position]
                reused += 1
        # Pass 2: everything not reusable is fully fetched, then the
        # fetched batch is digest-verified the same way.
        fetched_positions = [i for i in range(len(entries)) if i not in chosen]
        fetched: List[bytes] = [
            self._fetch_range(entries[i]["number"], 0, entries[i]["file_bytes"])
            for i in fetched_positions
        ]
        for position, data, digest in zip(
            fetched_positions, fetched, self.digest_pool.sha256_many(fetched)
        ):
            if digest != entries[position]["digest"]:
                raise TamperDetectedError(
                    f"segment {entries[position]['number']} bytes do not "
                    "match the manifest digest after a full fetch"
                )
            chosen[position] = data
            with self._lock:
                self._segments_fetched += 1
        for position, entry in enumerate(entries):
            candidate.write(segment_file_name(entry["number"]), 0, chosen[position])
        reply = self._call("repl.master")
        blob = base64.b64decode(reply["data"])
        if reply.get("name") != manifest["master_name"] or len(blob) != int(
            manifest["master_bytes"]
        ):
            raise TamperDetectedError(
                "master-record shipment does not match the manifest"
            )
        candidate.write(manifest["master_name"], 0, blob)
        return candidate, reused

    def _verify_candidate(
        self, manifest: Dict[str, Any], candidate: MemoryUntrustedStore
    ) -> None:
        counter = MirrorOneWayCounter(int(manifest["expected_counter"]))
        store = ChunkStore.open(
            candidate,
            self.secret_store,
            counter,
            self.chunk_config,
            read_only=True,
        )
        try:
            if store.db_uuid.hex() != manifest["db_uuid"]:
                raise TamperDetectedError(
                    "shipped image authenticates a different identity than "
                    "its manifest claims"
                )
            if (
                store.generation != manifest["generation"]
                or store.commit_seqno != manifest["commit_seqno"]
            ):
                raise TamperDetectedError(
                    "shipped image authenticates a different generation or "
                    "commit seqno than its manifest claims"
                )
            report = store.scrub(deep=True)
            if not report.clean:
                raise TamperDetectedError(
                    f"shipped image failed its deep scrub: {report.summary()}"
                )
            root = store.location_map.root_locator
            return root.hash_value if root is not None else None
        finally:
            store.close()

    def _load_local_headlog(self, db_uuid: bytes, hash_size: int):
        """The replica's mirrored head log, or ``None`` if unusable.

        A damaged or foreign-identity local mirror (seed adoption, local
        bit rot) is treated like a missing one — the primary's chain is
        then re-verified all the way from genesis, so nothing is healed
        without re-proving it.
        """
        if not TransparencyLog.exists(self.untrusted):
            return None
        try:
            return TransparencyLog.load(
                self.untrusted,
                self.secret_store,
                db_uuid,
                hash_size,
                writable=False,
            )
        except TamperDetectedError:
            return None

    def _verify_heads(self, manifest: Dict[str, Any], verified_root):
        """Cross-check the primary's transparency log against the shipment.

        Fetches the signed head chain, verifies it extends the replica's
        mirror (equivocation at any mirrored index is a fork), and
        requires the entry for the shipped generation to sign exactly
        the root digest the deep scrub just verified.  Returns the plan
        ``(recreate, entries)`` for :meth:`_install` to mirror.
        """
        if not self.chunk_config.security.enabled:
            return None
        uuid = bytes.fromhex(manifest["db_uuid"])
        hash_size = create_hash_engine(
            self.chunk_config.security.hash_name
        ).digest_size
        reply = self._call("log.head")
        if base64.b64decode(reply["uuid"]) != uuid:
            raise TamperDetectedError(
                "primary's transparency log names a different database "
                "identity than the shipment manifest"
            )
        length = int(reply["length"])
        local = self._load_local_headlog(uuid, hash_size)
        local_len = len(local) if local is not None else 0
        if local_len > length:
            raise TamperDetectedError(
                f"primary's head log has {length} entries but the replica "
                f"mirrored {local_len}: the primary's log was truncated"
            )
        if length == 0:
            raise TamperDetectedError(
                "primary serves an empty transparency log for a secure store"
            )
        verifier = HeadVerifier(self.secret_store, uuid, hash_size)
        start = local_len - 1 if local_len else 0
        reply = self._call(
            "log.consistency", from_index=start, to_index=length - 1
        )
        entries = [base64.b64decode(entry) for entry in reply["entries"]]
        if local_len:
            tip = local.tip()
            if not entries or entries[0] != tip.raw:
                raise ForkDetectedError(
                    f"primary signed a different head at index {tip.index} "
                    "than the one this replica mirrored: equivocation"
                )
            chain = verifier.verify_chain(entries[1:], after=tip)
        else:
            chain = verifier.verify_chain(entries, after=None)
        # The shipped generation's head must sign the scrubbed root.
        target = None
        known = (local.heads() if local_len else []) + chain
        for head in known:
            if head.generation == manifest["generation"]:
                target = head
                break
        if target is None:
            raise TamperDetectedError(
                f"primary's head log has no entry for the shipped "
                f"generation {manifest['generation']}"
            )
        expected_root = (
            verified_root if verified_root is not None else bytes(hash_size)
        )
        if (
            target.seqno != manifest["commit_seqno"]
            or target.counter != manifest["expected_counter"]
            or target.root_digest != expected_root
            or target.empty_root != (verified_root is None)
        ):
            raise TamperDetectedError(
                "signed head for the shipped generation does not match "
                "the verified image (root/seqno/counter mismatch)"
            )
        # Mirror only up to the installed generation: entries signed for
        # later commits belong to an image this replica does not hold yet.
        fresh = [
            head.raw for head in chain if head.generation <= manifest["generation"]
        ]
        if local is None or fresh:
            return (local is None, fresh)
        return None

    def _install(
        self,
        manifest: Dict[str, Any],
        candidate: MemoryUntrustedStore,
        head_plan=None,
    ) -> None:
        keep = set(candidate.list_files())
        new_state = ReplicaState(
            db_uuid=manifest["db_uuid"],
            generation=manifest["generation"],
            commit_seqno=manifest["commit_seqno"],
            counter=manifest["expected_counter"],
            seeded=False,
        )
        with self.gate.exclusive():
            # Segments first, master after, stale files last: a crash in
            # between leaves an image the next sync simply heals.
            names = sorted(name for name in keep if name.startswith("seg-"))
            names += [name for name in keep if name in MASTER_FILES]
            for name in names:
                data = candidate.read(name)
                if self.untrusted.exists(name):
                    if (
                        self.untrusted.size(name) == len(data)
                        and self.untrusted.read(name) == data
                    ):
                        continue
                    self.untrusted.truncate(name, 0)
                self.untrusted.write(name, 0, data)
                self.untrusted.sync(name)
            for name in self.untrusted.list_files():
                stale = name.startswith("seg-") or name in MASTER_FILES
                if stale and name not in keep:
                    self.untrusted.delete(name)
            # Mirror the primary's head log *after* the image files: a
            # crash in between leaves the mirror lagging the image,
            # which the next sync appends through — never leading it.
            if head_plan is not None:
                recreate, fresh = head_plan
                uuid = bytes.fromhex(manifest["db_uuid"])
                hash_size = create_hash_engine(
                    self.chunk_config.security.hash_name
                ).digest_size
                if recreate:
                    log = TransparencyLog.create(
                        self.untrusted, self.secret_store, uuid, hash_size
                    )
                else:
                    log = TransparencyLog.load(
                        self.untrusted,
                        self.secret_store,
                        uuid,
                        hash_size,
                        writable=True,
                    )
                for raw in fresh:
                    log.append_entry(raw)
                with self._lock:
                    self._heads_mirrored += len(fresh)
            save_state(self.directory, new_state, self.secret_store)
            old = self.db
            self.db = open_replica_database(
                self.directory,
                new_state.counter,
                self.chunk_config,
                self.object_config,
                self.collection_config,
            )
            if self._server is not None:
                self._server.db = self.db
                self._server.register_data_model()
            if old is not None:
                old.close()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def open_serving_db(self) -> Database:
        """Open the serving database from the installed image, if absent."""
        if self.db is None:
            state = load_state(self.directory, self.secret_store)
            if state is None:
                raise ReplicationError(
                    "replica has no installed image yet: sync or seed first"
                )
            self.db = open_replica_database(
                self.directory,
                state.counter,
                self.chunk_config,
                self.object_config,
                self.collection_config,
            )
        return self.db

    def serve(self, host: str = "127.0.0.1", port: int = 0, **server_kwargs):
        """Start a read-only :class:`~repro.server.server.TdbServer`.

        The server's transactions hold the applier's gate shared, so
        image swaps are atomic with respect to remote readers.
        """
        from repro.server.server import TdbServer

        db = self.open_serving_db()
        self._server = TdbServer(
            db,
            host=host,
            port=port,
            read_only=True,
            txn_gate=self.gate,
            replication_stats=self.stats_snapshot,
            **server_kwargs,
        )
        self._server.start()
        return self._server

    def start(self) -> None:
        """Start the background polling loop."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._poll_loop, name="replica-applier", daemon=True
        )
        self._thread.start()

    def _poll_loop(self) -> None:
        failures = 0
        while not self._stop.is_set():
            try:
                self.sync_once()
            except (TDBError, OSError) as exc:
                # A rejected shipment or a dead link must not take the
                # replica down: it keeps serving its last verified image
                # and keeps polling — backing off exponentially (capped,
                # deterministic jitter) while the failures persist.
                # sync_once always re-subscribes, so a primary restart
                # needs no special re-pin path: the first successful
                # poll after the outage re-establishes the subscription.
                failures += 1
                backoff = self.retry_policy.delay(
                    min(failures, self.retry_policy.max_attempts), failures
                )
                with self._lock:
                    self._last_error = f"{type(exc).__name__}: {exc}"
                    self._link_failures += 1
                    self._consecutive_failures = failures
                    self._last_backoff = backoff
                self._stop.wait(backoff)
                continue
            if failures:
                # The link healed: count the reconnect and restore the
                # normal polling cadence.
                failures = 0
                with self._lock:
                    self._reconnects += 1
                    self._consecutive_failures = 0
                    self._last_backoff = 0.0
            self._stop.wait(self.poll_interval)

    def stop(self) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=10.0)

    def close(self) -> None:
        self.stop()
        self.digest_pool.close()
        if self._server is not None:
            self._server.stop()
            self._server = None
        if self._client is not None:
            try:
                self._client.close()
            finally:
                self._client = None
        if self.db is not None:
            self.db.close()
            self.db = None

    def __enter__(self) -> "ReplicaApplier":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    def stats_snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "shipments_applied": self._shipments_applied,
                "up_to_date_polls": self._up_to_date_polls,
                "segments_fetched": self._segments_fetched,
                "segments_reused": self._segments_reused,
                "bytes_fetched": self._bytes_fetched,
                "tamper_rejected": self._tamper_rejected,
                "last_error": self._last_error,
                "applied_seqno": self._applied_seqno,
                "primary_seqno": self._primary_seqno,
                "lag_seqno": self._primary_seqno - self._applied_seqno,
                "link_failures": self._link_failures,
                "reconnects": self._reconnects,
                "consecutive_failures": self._consecutive_failures,
                "last_backoff": self._last_backoff,
                "heads_mirrored": self._heads_mirrored,
                "head_forks": self._head_forks,
            }
