"""Verified log-shipping replication: primary, read replicas, promote.

TDB's log-structured store is unusually replication-friendly: segments
are immutable once sealed, the location map *is* the Merkle tree, and
the one-way counter already defends against replay.  A replica can
therefore hold a byte-for-byte copy of the primary's untrusted store and
**verify every shipped byte before trusting it** — the same tamper
checks `ChunkStore.open` runs against a local attacker run against the
shipping channel for free.

Roles:

* :class:`ReplicationShipper` — primary side.  Anchors each shipment in
  a pinned snapshot (so the cleaner can never recycle a segment a slow
  replica still needs), and serves the ``repl.subscribe`` /
  ``repl.segments`` / ``repl.master`` verbs of the wire protocol.
* :class:`ReplicaApplier` — replica side.  Fetches a shipment, rebuilds
  the candidate image in memory, verifies it (master MAC, residual-log
  chain, strict counter equality, deep Merkle scrub, monotonicity
  against its own persisted high-water state), and only then installs it
  and atomically swaps the read-only serving database.
* :func:`seed_replica` — bootstrap a replica from a PR 2 backup chain so
  it can serve (stale) reads before its first contact with the primary.
* :func:`promote_replica` — bind a verified replica image to a real
  one-way counter and reopen it writable when the primary dies.

The replica shares the primary's device secret: copy ``secret.key`` into
the replica directory out of band (a real deployment provisions it into
the replica's trusted hardware).  Without it the replica could not check
a single MAC — an unverified replica is exactly what this module exists
to prevent.
"""

from repro.replication.state import ReplicaState, load_state, save_state
from repro.replication.shipper import ReplicationShipper
from repro.replication.applier import (
    ReplicaApplier,
    TransactionGate,
    open_replica_database,
    promote_replica,
    seed_replica,
)

__all__ = [
    "ReplicaState",
    "load_state",
    "save_state",
    "ReplicationShipper",
    "ReplicaApplier",
    "TransactionGate",
    "open_replica_database",
    "promote_replica",
    "seed_replica",
]
