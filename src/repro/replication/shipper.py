"""Primary-side shipment server: :class:`ReplicationShipper`.

The shipper owns one subscription per server session.  A subscription is
anchored in a pinned chunk-store snapshot
(:meth:`~repro.chunkstore.store.ChunkStore.begin_shipment`), which makes
the shipped byte ranges stable without holding any lock while streaming:

* the snapshot's ``pinned_segments`` stop the cleaner from recycling any
  shipped segment while a (possibly slow) replica is still fetching it,
* the anchoring checkpoint's segment table records each segment's size
  at that instant; sealed segments are immutable and the tail only ever
  *grows past* the recorded size, so ``[0, file_bytes)`` cannot change
  underneath the stream even while new commits land.

Re-subscribing acknowledges the previous shipment (its pins are
released) and either anchors a fresh one or — when the subscriber's
``(last_generation, last_seqno)`` is still current — answers
``up_to_date`` without burning a checkpoint.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

from repro.chunkstore import ChunkStore, ShipmentAnchor
from repro.errors import ReplicationError

__all__ = ["ReplicationShipper"]

#: Largest segment range served per ``repl.segments`` call.  Base64 in a
#: JSON frame expands 4/3x, so this stays comfortably under the 16 MiB
#: frame cap.
MAX_SHIP_BYTES = 4 * 1024 * 1024


class _Subscription:
    def __init__(self, anchor: ShipmentAnchor, manifest: Dict[str, Any]) -> None:
        self.anchor = anchor
        self.manifest = manifest
        self.extents = {
            info.number: info.file_bytes for info in anchor.segments
        }


class ReplicationShipper:
    """Serves shipment manifests and raw segment bytes to replicas."""

    def __init__(self, store: ChunkStore) -> None:
        self.store = store
        self._lock = threading.Lock()
        self._subs: Dict[Any, _Subscription] = {}
        self._acked_seqno: Dict[Any, int] = {}
        self._shipments = 0
        self._up_to_date = 0
        self._segment_requests = 0
        self._bytes_streamed = 0

    # ------------------------------------------------------------------
    # Verb backends
    # ------------------------------------------------------------------

    def subscribe(
        self,
        session_id: Any,
        last_generation: Optional[int] = None,
        last_seqno: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Anchor a shipment for ``session_id``; returns the manifest.

        Passing the previously applied ``(last_generation, last_seqno)``
        acknowledges that shipment: its snapshot pins are dropped either
        way, and if the primary has not committed since, the reply is
        ``{"up_to_date": true}`` with no new anchor.
        """
        anchor = self.store.begin_shipment(last_generation, last_seqno)
        with self._lock:
            previous = self._subs.pop(session_id, None)
            if last_seqno is not None:
                self._acked_seqno[session_id] = last_seqno
            if anchor is None:
                self._up_to_date += 1
                self.store.perf.incr("repl_up_to_date")
                manifest: Dict[str, Any] = {
                    "up_to_date": True,
                    "generation": last_generation,
                    "commit_seqno": last_seqno,
                }
            else:
                manifest = self._build_manifest(anchor)
                self._subs[session_id] = _Subscription(anchor, manifest)
                self._shipments += 1
                self.store.perf.incr("repl_shipments")
        if previous is not None:
            previous.anchor.snapshot.release()
        return manifest

    def _build_manifest(self, anchor: ShipmentAnchor) -> Dict[str, Any]:
        blobs = []
        for info in anchor.segments:
            # Hashing happens outside the store lock: the range below
            # the recorded size is immutable (see module docstring).
            data = self.store.read_segment_bytes(info.number, 0, info.file_bytes)
            if len(data) != info.file_bytes:
                raise ReplicationError(
                    f"segment {info.number} shrank below its anchored size"
                )
            blobs.append(data)
        # Whole-segment digests fan across the store's digest pool when
        # it has workers; serial (and allocation-free) otherwise.
        digests = self.store.digest_pool.sha256_many(blobs)
        segments = [
            {
                "number": info.number,
                "file_bytes": info.file_bytes,
                "is_tail": info.is_tail,
                "digest": digest,
            }
            for info, digest in zip(anchor.segments, digests)
        ]
        return {
            "up_to_date": False,
            "db_uuid": anchor.db_uuid.hex(),
            "generation": anchor.generation,
            "commit_seqno": anchor.commit_seqno,
            "expected_counter": anchor.expected_counter,
            "master_name": anchor.master_name,
            "master_bytes": len(anchor.master_blob),
            "segments": segments,
        }

    def read_segment(
        self, session_id: Any, segment: int, offset: int, length: int
    ) -> bytes:
        """Raw bytes of a shipped segment, clipped to the anchored size."""
        with self._lock:
            sub = self._subs.get(session_id)
            if sub is None:
                raise ReplicationError("no active shipment; subscribe first")
            extent = sub.extents.get(segment)
        if extent is None:
            raise ReplicationError(f"segment {segment} is not in the shipment")
        if offset < 0 or length < 0:
            raise ReplicationError("negative segment range")
        if length > MAX_SHIP_BYTES:
            raise ReplicationError(
                f"requested {length} bytes; limit is {MAX_SHIP_BYTES} per call"
            )
        end = min(offset + length, extent)
        data = (
            self.store.read_segment_bytes(segment, offset, end - offset)
            if end > offset
            else b""
        )
        with self._lock:
            self._segment_requests += 1
            self._bytes_streamed += len(data)
        self.store.perf.incr("repl_segments_shipped")
        self.store.perf.incr("repl_bytes_streamed", len(data))
        return data

    def master_blob(self, session_id: Any) -> Dict[str, Any]:
        """The sealed master record captured when the shipment was anchored.

        Served from the anchor, not from disk: two checkpoints after the
        anchor the alternating-slot scheme overwrites the same file.
        """
        with self._lock:
            sub = self._subs.get(session_id)
            if sub is None:
                raise ReplicationError("no active shipment; subscribe first")
            blob = sub.anchor.master_blob
            self._bytes_streamed += len(blob)
        self.store.perf.incr("repl_bytes_streamed", len(blob))
        return {"name": sub.anchor.master_name, "blob": blob}

    # ------------------------------------------------------------------
    # Lifecycle / stats
    # ------------------------------------------------------------------

    def release(self, session_id: Any) -> None:
        """Drop a session's shipment (disconnect); releases its pins."""
        with self._lock:
            sub = self._subs.pop(session_id, None)
            self._acked_seqno.pop(session_id, None)
        if sub is not None:
            sub.anchor.snapshot.release()

    def close(self) -> None:
        with self._lock:
            subs = list(self._subs.values())
            self._subs.clear()
            self._acked_seqno.clear()
        for sub in subs:
            sub.anchor.snapshot.release()

    def stats_snapshot(self) -> Dict[str, Any]:
        """Replication counters plus per-subscriber lag in commit seqnos."""
        current = self.store.commit_seqno
        with self._lock:
            in_flight = {
                # A shipment in flight is acknowledged up to its own seqno
                # only once applied; until then the subscriber's floor is
                # its last ack (0 for a first-time subscriber).
                session_id: sub.manifest["commit_seqno"]
                for session_id, sub in self._subs.items()
            }
            acked = dict(self._acked_seqno)
            floors = [
                min(acked.get(sid, 0), in_flight.get(sid, current))
                if sid in acked or sid in in_flight
                else 0
                for sid in set(acked) | set(in_flight)
            ]
            return {
                "subscribers": len(set(acked) | set(in_flight)),
                "shipments": self._shipments,
                "up_to_date_replies": self._up_to_date,
                "segment_requests": self._segment_requests,
                "bytes_streamed": self._bytes_streamed,
                "commit_seqno": current,
                "max_lag_seqno": max(
                    (current - floor for floor in floors), default=0
                ),
            }
