"""The replica's persisted high-water state (``replica.state``).

A replica has no one-way counter of its own, so its replay defense
against the *shipping channel* is a MACed sidecar recording the newest
``(generation, commit seqno, counter)`` it ever verified.  A shipment
older than the sidecar is a replay of the channel and is rejected; a
shipment claiming the same generation with different contents is a fork
and is rejected as tampering.

The sidecar is MACed under a key derived from the shared device secret
(``tdb-replication-state``), so the storage attacker cannot forge it.
They *can* delete it together with the whole image — rolling the replica
back to a blank slate — which is exactly the attack the paper's one-way
counter exists to stop on the primary; a replica is only as
rollback-proof as its channel to the primary, and :func:`promote_replica`
re-binds to a real counter before the node ever accepts a write.  See
DESIGN.md.
"""

from __future__ import annotations

import hmac
import json
import os
import struct
from dataclasses import dataclass
from typing import Optional

from repro.errors import ReplicationError, TamperDetectedError
from repro.platform import SecretStore

__all__ = ["ReplicaState", "STATE_FILE", "load_state", "save_state", "remove_state"]

#: Sidecar file name inside the replica directory.
STATE_FILE = "replica.state"

_LENGTH = struct.Struct(">I")
_MAC_BYTES = 32
_STATE_CONTEXT = "tdb-replication-state"


@dataclass
class ReplicaState:
    """Newest shipment this replica fully verified."""

    db_uuid: str          # hex; the primary's identity once adopted
    generation: int       # master-record generation of the image
    commit_seqno: int     # newest commit seqno in the image
    counter: int          # one-way counter value authenticated in it
    seeded: bool = False  # True until first contact with the primary

    def as_dict(self) -> dict:
        return {
            "db_uuid": self.db_uuid,
            "generation": self.generation,
            "commit_seqno": self.commit_seqno,
            "counter": self.counter,
            "seeded": self.seeded,
        }


def _state_mac(secret_store: SecretStore, body: bytes) -> bytes:
    key = secret_store.derive_key(_STATE_CONTEXT, 32)
    return hmac.new(key, body, "sha256").digest()


def save_state(directory: str, state: ReplicaState, secret_store: SecretStore) -> str:
    """Atomically persist ``state`` under ``directory``; returns the path."""
    path = os.path.join(os.path.abspath(directory), STATE_FILE)
    body = json.dumps(state.as_dict(), sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    blob = _LENGTH.pack(len(body)) + body + _state_mac(secret_store, body)
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def load_state(directory: str, secret_store: SecretStore) -> Optional[ReplicaState]:
    """Load and authenticate the sidecar; ``None`` if it does not exist.

    A present-but-unverifiable sidecar raises
    :class:`~repro.errors.TamperDetectedError` — it is the replica's
    replay high-water mark, so treating garbage as "no state" would let
    an attacker reset the mark by corrupting one file.
    """
    path = os.path.join(os.path.abspath(directory), STATE_FILE)
    if not os.path.exists(path):
        return None
    with open(path, "rb") as handle:
        blob = handle.read()
    if len(blob) < _LENGTH.size + _MAC_BYTES:
        raise TamperDetectedError("replica state sidecar is truncated")
    (length,) = _LENGTH.unpack(blob[: _LENGTH.size])
    body = blob[_LENGTH.size : _LENGTH.size + length]
    tag = blob[_LENGTH.size + length :]
    if len(body) != length or len(tag) != _MAC_BYTES:
        raise TamperDetectedError("replica state sidecar is truncated")
    if not hmac.compare_digest(tag, _state_mac(secret_store, body)):
        raise TamperDetectedError("replica state sidecar failed its MAC")
    try:
        fields = json.loads(body.decode("utf-8"))
        return ReplicaState(
            db_uuid=str(fields["db_uuid"]),
            generation=int(fields["generation"]),
            commit_seqno=int(fields["commit_seqno"]),
            counter=int(fields["counter"]),
            seeded=bool(fields.get("seeded", False)),
        )
    except (ValueError, KeyError, TypeError) as exc:
        # MAC passed but contents unusable: a bug, not an attack.
        raise ReplicationError(f"replica state sidecar malformed: {exc}") from exc


def remove_state(directory: str) -> None:
    """Delete the sidecar (promotion hands replay defense to the counter)."""
    path = os.path.join(os.path.abspath(directory), STATE_FILE)
    if os.path.exists(path):
        os.remove(path)
