"""Block-cipher modes of operation and PKCS#7 padding.

The chunk store encrypts each chunk independently in CBC mode with a fresh
random IV (the paper pads to the block size; that padding is part of
TDB-S's measured write overhead).  CTR mode is provided for length-
preserving streams (used by the backup store).
"""

from __future__ import annotations

import os

from repro.errors import CryptoError

__all__ = [
    "pkcs7_pad",
    "pkcs7_unpad",
    "cbc_encrypt",
    "cbc_decrypt",
    "ctr_transform",
]


def pkcs7_pad(data: bytes, block_size: int) -> bytes:
    """Pad ``data`` to a multiple of ``block_size`` (always adds >= 1 byte)."""
    if not 1 <= block_size <= 255:
        raise CryptoError("PKCS#7 block size must be in [1, 255]")
    pad_length = block_size - (len(data) % block_size)
    return data + bytes([pad_length]) * pad_length


def pkcs7_unpad(data: bytes, block_size: int) -> bytes:
    """Strip and validate PKCS#7 padding."""
    if not data or len(data) % block_size:
        raise CryptoError("PKCS#7: ciphertext length is not a block multiple")
    pad_length = data[-1]
    if not 1 <= pad_length <= block_size:
        raise CryptoError("PKCS#7: invalid padding length byte")
    if data[-pad_length:] != bytes([pad_length]) * pad_length:
        raise CryptoError("PKCS#7: padding bytes are inconsistent")
    return data[:-pad_length]


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def cbc_encrypt(cipher, plaintext: bytes, iv: bytes = None) -> bytes:
    """CBC-encrypt ``plaintext`` (PKCS#7 padded) and prepend the IV."""
    block = cipher.block_size
    if iv is None:
        iv = os.urandom(block)
    if len(iv) != block:
        raise CryptoError(f"IV must be {block} bytes, got {len(iv)}")
    padded = pkcs7_pad(plaintext, block)
    out = bytearray(iv)
    previous = iv
    for offset in range(0, len(padded), block):
        encrypted = cipher.encrypt_block(
            _xor_bytes(padded[offset:offset + block], previous)
        )
        out.extend(encrypted)
        previous = encrypted
    return bytes(out)


def cbc_decrypt(cipher, data: bytes) -> bytes:
    """Invert :func:`cbc_encrypt`: strip IV, decrypt, unpad."""
    block = cipher.block_size
    if len(data) < 2 * block or len(data) % block:
        raise CryptoError("CBC ciphertext too short or not block-aligned")
    iv, body = data[:block], data[block:]
    out = bytearray()
    previous = iv
    for offset in range(0, len(body), block):
        chunk = body[offset:offset + block]
        out.extend(_xor_bytes(cipher.decrypt_block(chunk), previous))
        previous = chunk
    return pkcs7_unpad(bytes(out), block)


def ctr_transform(cipher, data: bytes, nonce: bytes) -> bytes:
    """Encrypt or decrypt ``data`` in CTR mode (the operation is its own
    inverse).  ``nonce`` must be at most ``block_size - 4`` bytes; the
    remaining bytes carry a big-endian block counter."""
    block = cipher.block_size
    if len(nonce) > block - 4:
        raise CryptoError(
            f"CTR nonce must leave 4 counter bytes (max {block - 4})"
        )
    prefix = nonce.ljust(block - 4, b"\x00")
    out = bytearray()
    for counter in range((len(data) + block - 1) // block):
        keystream = cipher.encrypt_block(prefix + counter.to_bytes(4, "big"))
        start = counter * block
        segment = data[start:start + block]
        out.extend(_xor_bytes(segment, keystream[:len(segment)]))
    return bytes(out)
