"""Block-cipher modes of operation and PKCS#7 padding.

The chunk store encrypts each chunk independently in CBC mode with a fresh
random IV (the paper pads to the block size; that padding is part of
TDB-S's measured write overhead).  CTR mode is provided for length-
preserving streams (used by the backup store).

Three code paths coexist:

* the **per-block reference path** drives any
  :class:`~repro.crypto.cipher.BlockCipher` through ``encrypt_block`` /
  ``decrypt_block`` one 16-byte ``bytes`` object at a time — slow, but
  obviously correct, and the oracle the property tests compare against;
* the **batched kernels** engage automatically for ciphers exposing the
  word interface (:class:`~repro.crypto.aesfast.AesFast`): the whole
  payload is unpacked into 32-bit words once, chained with int-XOR in
  one flat loop, and packed back once — no per-block allocations.  CTR
  generates its keystream in one batch and applies it with a single
  big-int XOR;
* the **native payload path** engages for ciphers exposing the
  whole-payload interface (:class:`~repro.crypto.native.NativeAes` with
  a live OpenSSL backend): one C call transforms the entire payload.
  IV generation, PKCS#7 framing, and validation stay here in one place,
  so all engines share the exact record layout.

All paths produce byte-identical output for the same key and IV, so
native, fast, and reference profiles interoperate on disk.
"""

from __future__ import annotations

import hmac as _stdlib_hmac
import os
import struct
from typing import Optional

from repro.errors import CryptoError

__all__ = [
    "pkcs7_pad",
    "pkcs7_unpad",
    "cbc_encrypt",
    "cbc_decrypt",
    "ctr_transform",
]

_WORD4 = struct.Struct(">4I")


def pkcs7_pad(data: bytes, block_size: int) -> bytes:
    """Pad ``data`` to a multiple of ``block_size`` (always adds >= 1 byte)."""
    if not 1 <= block_size <= 255:
        raise CryptoError("PKCS#7 block size must be in [1, 255]")
    pad_length = block_size - (len(data) % block_size)
    return data + bytes([pad_length]) * pad_length


def pkcs7_unpad(data: bytes, block_size: int) -> bytes:
    """Strip and validate PKCS#7 padding.

    The padding-bytes comparison runs in constant time
    (:func:`hmac.compare_digest`), so a tamper probe cannot use the
    validation latency to learn *where* in the final block the padding
    check failed (the classic padding-oracle side channel).
    """
    if not data or len(data) % block_size:
        raise CryptoError("PKCS#7: ciphertext length is not a block multiple")
    pad_length = data[-1]
    if not 1 <= pad_length <= block_size:
        raise CryptoError("PKCS#7: invalid padding length byte")
    if not _stdlib_hmac.compare_digest(
        data[-pad_length:], bytes([pad_length]) * pad_length
    ):
        raise CryptoError("PKCS#7: padding bytes are inconsistent")
    return data[:-pad_length]


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


# ---------------------------------------------------------------------------
# Batched word kernels (ciphers exposing encrypt_words/decrypt_words)
# ---------------------------------------------------------------------------


def _cbc_encrypt_words(cipher, padded: bytes, iv: bytes) -> bytes:
    """Whole-payload CBC encryption over the word interface.

    One unpack, one flat loop of int-XOR + word encryption, one pack:
    no per-block ``bytes`` objects are created.
    """
    word_count = len(padded) // 4
    words = struct.unpack(f">{word_count}I", padded)
    out = [0] * (word_count + 4)
    out[0:4] = _WORD4.unpack(iv)
    c0, c1, c2, c3 = out[0], out[1], out[2], out[3]
    encrypt_words = cipher.encrypt_words
    position = 0
    while position < word_count:
        c0, c1, c2, c3 = encrypt_words(
            words[position] ^ c0,
            words[position + 1] ^ c1,
            words[position + 2] ^ c2,
            words[position + 3] ^ c3,
        )
        base = position + 4
        out[base] = c0
        out[base + 1] = c1
        out[base + 2] = c2
        out[base + 3] = c3
        position += 4
    return struct.pack(f">{word_count + 4}I", *out)


def _cbc_decrypt_words(cipher, iv: bytes, body: bytes) -> bytes:
    """Whole-payload CBC decryption over the word interface."""
    word_count = len(body) // 4
    words = struct.unpack(f">{word_count}I", body)
    out = [0] * word_count
    p0, p1, p2, p3 = _WORD4.unpack(iv)
    decrypt_words = cipher.decrypt_words
    position = 0
    while position < word_count:
        d0, d1, d2, d3 = decrypt_words(
            words[position],
            words[position + 1],
            words[position + 2],
            words[position + 3],
        )
        out[position] = d0 ^ p0
        out[position + 1] = d1 ^ p1
        out[position + 2] = d2 ^ p2
        out[position + 3] = d3 ^ p3
        p0 = words[position]
        p1 = words[position + 1]
        p2 = words[position + 2]
        p3 = words[position + 3]
        position += 4
    return struct.pack(f">{word_count}I", *out)


def _ctr_transform_words(cipher, data: bytes, prefix: bytes) -> bytes:
    """Batched CTR: build the whole keystream, apply one big-int XOR."""
    block_count = (len(data) + 15) // 16
    w0, w1, w2 = struct.unpack(">3I", prefix)
    encrypt_words = cipher.encrypt_words
    keystream_words = [0] * (4 * block_count)
    position = 0
    for counter in range(block_count):
        k0, k1, k2, k3 = encrypt_words(w0, w1, w2, counter)
        keystream_words[position] = k0
        keystream_words[position + 1] = k1
        keystream_words[position + 2] = k2
        keystream_words[position + 3] = k3
        position += 4
    keystream = struct.pack(f">{4 * block_count}I", *keystream_words)
    return (
        int.from_bytes(data, "big") ^ int.from_bytes(keystream[:len(data)], "big")
    ).to_bytes(len(data), "big")


def _has_word_kernel(cipher) -> bool:
    return (
        cipher.block_size == 16
        and hasattr(cipher, "encrypt_words")
        and hasattr(cipher, "decrypt_words")
    )


def _has_native_kernel(cipher) -> bool:
    return getattr(cipher, "backend", None) == "openssl"


# ---------------------------------------------------------------------------
# Public modes
# ---------------------------------------------------------------------------


def cbc_encrypt(cipher, plaintext: bytes, iv: Optional[bytes] = None) -> bytes:
    """CBC-encrypt ``plaintext`` (PKCS#7 padded) and prepend the IV."""
    block = cipher.block_size
    if iv is None:
        iv = os.urandom(block)
    if len(iv) != block:
        raise CryptoError(f"IV must be {block} bytes, got {len(iv)}")
    padded = pkcs7_pad(plaintext, block)
    if _has_native_kernel(cipher):
        return iv + cipher.cbc_encrypt_payload(padded, iv)
    if _has_word_kernel(cipher):
        return _cbc_encrypt_words(cipher, padded, iv)
    out = bytearray(iv)
    previous = iv
    for offset in range(0, len(padded), block):
        encrypted = cipher.encrypt_block(
            _xor_bytes(padded[offset:offset + block], previous)
        )
        out.extend(encrypted)
        previous = encrypted
    return bytes(out)


def cbc_decrypt(cipher, data: bytes) -> bytes:
    """Invert :func:`cbc_encrypt`: strip IV, decrypt, unpad."""
    block = cipher.block_size
    if len(data) < 2 * block or len(data) % block:
        raise CryptoError("CBC ciphertext too short or not block-aligned")
    iv, body = data[:block], data[block:]
    if _has_native_kernel(cipher):
        return pkcs7_unpad(cipher.cbc_decrypt_payload(iv, body), block)
    if _has_word_kernel(cipher):
        return pkcs7_unpad(_cbc_decrypt_words(cipher, iv, body), block)
    out = bytearray()
    previous = iv
    for offset in range(0, len(body), block):
        chunk = body[offset:offset + block]
        out.extend(_xor_bytes(cipher.decrypt_block(chunk), previous))
        previous = chunk
    return pkcs7_unpad(bytes(out), block)


def ctr_transform(cipher, data: bytes, nonce: bytes) -> bytes:
    """Encrypt or decrypt ``data`` in CTR mode (the operation is its own
    inverse).  ``nonce`` must be at most ``block_size - 4`` bytes; the
    remaining bytes carry a big-endian block counter."""
    block = cipher.block_size
    if len(nonce) > block - 4:
        raise CryptoError(
            f"CTR nonce must leave 4 counter bytes (max {block - 4})"
        )
    prefix = nonce.ljust(block - 4, b"\x00")
    if not data:
        return b""
    if _has_native_kernel(cipher):
        return cipher.ctr_payload(data, prefix)
    if _has_word_kernel(cipher):
        return _ctr_transform_words(cipher, data, prefix)
    out = bytearray()
    for counter in range((len(data) + block - 1) // block):
        keystream = cipher.encrypt_block(prefix + counter.to_bytes(4, "big"))
        start = counter * block
        segment = data[start:start + block]
        out.extend(_xor_bytes(segment, keystream[:len(segment)]))
    return bytes(out)
