"""Pure-Python AES-128/192/256 (FIPS 197).

The paper notes that ciphers "as secure as 3DES [that] run significantly
faster" exist; AES is the obvious modern choice and is the default cipher
of the secure profile here.  Verified against the FIPS 197 appendix-C
vectors in the test suite.
"""

from __future__ import annotations

from repro.errors import CryptoError

__all__ = ["Aes"]

_SBOX = bytes.fromhex(
    "637c777bf26b6fc53001672bfed7ab76"
    "ca82c97dfa5947f0add4a2af9ca472c0"
    "b7fd9326363ff7cc34a5e5f171d83115"
    "04c723c31896059a071280e2eb27b275"
    "09832c1a1b6e5aa0523bd6b329e32f84"
    "53d100ed20fcb15b6acbbe394a4c58cf"
    "d0efaafb434d338545f9027f503c9fa8"
    "51a3408f929d38f5bcb6da2110fff3d2"
    "cd0c13ec5f974417c4a77e3d645d1973"
    "60814fdc222a908846eeb814de5e0bdb"
    "e0323a0a4906245cc2d3ac629195e479"
    "e7c8376d8dd54ea96c56f4ea657aae08"
    "ba78252e1ca6b4c6e8dd741f4bbd8b8a"
    "703eb5664803f60e613557b986c11d9e"
    "e1f8981169d98e949b1e87e9ce5528df"
    "8ca1890dbfe6426841992d0fb054bb16"
)

_INV_SBOX = bytearray(256)
for _i, _v in enumerate(_SBOX):
    _INV_SBOX[_v] = _i
_INV_SBOX = bytes(_INV_SBOX)

_ROUNDS_BY_KEY_SIZE = {16: 10, 24: 12, 32: 14}


def _xtime(value: int) -> int:
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def _gmul(a: int, b: int) -> int:
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


# Precomputed multiplication tables for the MixColumns coefficients.
_MUL = {
    factor: bytes(_gmul(value, factor) for value in range(256))
    for factor in (2, 3, 9, 11, 13, 14)
}


class Aes:
    """AES block cipher over 16-byte blocks; key may be 16/24/32 bytes."""

    block_size = 16

    def __init__(self, key: bytes) -> None:
        if len(key) not in _ROUNDS_BY_KEY_SIZE:
            raise CryptoError(
                f"AES key must be 16, 24, or 32 bytes, got {len(key)}"
            )
        self.rounds = _ROUNDS_BY_KEY_SIZE[len(key)]
        self._round_keys = self._expand_key(key)

    def _expand_key(self, key: bytes):
        key_words = len(key) // 4
        words = [list(key[4 * i:4 * i + 4]) for i in range(key_words)]
        rcon = 1
        total_words = 4 * (self.rounds + 1)
        for index in range(key_words, total_words):
            word = list(words[index - 1])
            if index % key_words == 0:
                word = word[1:] + word[:1]                      # RotWord
                word = [_SBOX[b] for b in word]                 # SubWord
                word[0] ^= rcon
                rcon = _xtime(rcon)
            elif key_words == 8 and index % key_words == 4:
                word = [_SBOX[b] for b in word]                 # AES-256 extra SubWord
            words.append([a ^ b for a, b in zip(word, words[index - key_words])])
        return [
            bytes(sum(words[4 * r:4 * r + 4], []))
            for r in range(self.rounds + 1)
        ]

    # -- state helpers: state is a flat 16-byte list in column-major order --

    @staticmethod
    def _add_round_key(state: list, round_key: bytes) -> None:
        for index in range(16):
            state[index] ^= round_key[index]

    @staticmethod
    def _sub_bytes(state: list, box: bytes) -> None:
        for index in range(16):
            state[index] = box[state[index]]

    @staticmethod
    def _shift_rows(state: list) -> None:
        # Row r of the state lives at indices r, r+4, r+8, r+12.
        for row in range(1, 4):
            indices = [row + 4 * col for col in range(4)]
            values = [state[i] for i in indices]
            rotated = values[row:] + values[:row]
            for i, value in zip(indices, rotated):
                state[i] = value

    @staticmethod
    def _inv_shift_rows(state: list) -> None:
        for row in range(1, 4):
            indices = [row + 4 * col for col in range(4)]
            values = [state[i] for i in indices]
            rotated = values[-row:] + values[:-row]
            for i, value in zip(indices, rotated):
                state[i] = value

    @staticmethod
    def _mix_columns(state: list) -> None:
        mul2, mul3 = _MUL[2], _MUL[3]
        for col in range(4):
            base = 4 * col
            a0, a1, a2, a3 = state[base:base + 4]
            state[base + 0] = mul2[a0] ^ mul3[a1] ^ a2 ^ a3
            state[base + 1] = a0 ^ mul2[a1] ^ mul3[a2] ^ a3
            state[base + 2] = a0 ^ a1 ^ mul2[a2] ^ mul3[a3]
            state[base + 3] = mul3[a0] ^ a1 ^ a2 ^ mul2[a3]

    @staticmethod
    def _inv_mix_columns(state: list) -> None:
        mul9, mul11, mul13, mul14 = _MUL[9], _MUL[11], _MUL[13], _MUL[14]
        for col in range(4):
            base = 4 * col
            a0, a1, a2, a3 = state[base:base + 4]
            state[base + 0] = mul14[a0] ^ mul11[a1] ^ mul13[a2] ^ mul9[a3]
            state[base + 1] = mul9[a0] ^ mul14[a1] ^ mul11[a2] ^ mul13[a3]
            state[base + 2] = mul13[a0] ^ mul9[a1] ^ mul14[a2] ^ mul11[a3]
            state[base + 3] = mul11[a0] ^ mul13[a1] ^ mul9[a2] ^ mul14[a3]

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != 16:
            raise CryptoError(f"AES block must be 16 bytes, got {len(block)}")
        state = list(block)
        self._add_round_key(state, self._round_keys[0])
        for round_index in range(1, self.rounds):
            self._sub_bytes(state, _SBOX)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[round_index])
        self._sub_bytes(state, _SBOX)
        self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self.rounds])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(block) != 16:
            raise CryptoError(f"AES block must be 16 bytes, got {len(block)}")
        state = list(block)
        self._add_round_key(state, self._round_keys[self.rounds])
        for round_index in range(self.rounds - 1, 0, -1):
            self._inv_shift_rows(state)
            self._sub_bytes(state, _INV_SBOX)
            self._add_round_key(state, self._round_keys[round_index])
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._sub_bytes(state, _INV_SBOX)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)
