"""Pure-Python SHA-1 (FIPS 180-1), the hash the paper's TDB-S uses.

``hashlib`` obviously ships SHA-1; this module exists because the brief for
this reproduction is to build every substrate from scratch.  The test suite
cross-checks this implementation against ``hashlib`` on random inputs and
the classic published vectors.  The default hash engine uses ``hashlib``
for speed; select ``hash_name="sha1-pure"`` to run the Merkle tree on this
implementation.
"""

from __future__ import annotations

import struct

__all__ = ["Sha1", "sha1"]

_H0 = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)
_MASK = 0xFFFFFFFF


def _rotl(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (32 - amount))) & _MASK


class Sha1:
    """Incremental SHA-1 with the familiar ``update`` / ``digest`` API."""

    digest_size = 20
    block_size = 64
    name = "sha1-pure"

    def __init__(self, data: bytes = b"") -> None:
        self._h = list(_H0)
        self._buffer = bytearray()
        self._length = 0  # total message length in bytes
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        """Absorb ``data`` into the running hash."""
        self._length += len(data)
        self._buffer.extend(data)
        offset = 0
        while len(self._buffer) - offset >= 64:
            self._process(bytes(self._buffer[offset:offset + 64]))
            offset += 64
        del self._buffer[:offset]

    def digest(self) -> bytes:
        """Return the 20-byte digest of everything absorbed so far."""
        # Work on copies so the object stays usable after digest().
        h = list(self._h)
        buffer = bytes(self._buffer)
        bit_length = self._length * 8
        padding = b"\x80" + b"\x00" * ((55 - self._length) % 64)
        tail = buffer + padding + struct.pack(">Q", bit_length)
        for block_start in range(0, len(tail), 64):
            self._process(tail[block_start:block_start + 64], h)
        return struct.pack(">5I", *h)

    def hexdigest(self) -> str:
        """Return the digest as a lowercase hex string."""
        return self.digest().hex()

    def copy(self) -> "Sha1":
        """Return an independent clone of the running state."""
        clone = Sha1()
        clone._h = list(self._h)
        clone._buffer = bytearray(self._buffer)
        clone._length = self._length
        return clone

    def _process(self, block: bytes, h: list = None) -> None:
        if h is None:
            h = self._h
        w = list(struct.unpack(">16I", block))
        for index in range(16, 80):
            w.append(_rotl(w[index - 3] ^ w[index - 8] ^ w[index - 14] ^ w[index - 16], 1))
        a, b, c, d, e = h
        for index in range(80):
            if index < 20:
                f = (b & c) | ((~b & _MASK) & d)
                k = 0x5A827999
            elif index < 40:
                f = b ^ c ^ d
                k = 0x6ED9EBA1
            elif index < 60:
                f = (b & c) | (b & d) | (c & d)
                k = 0x8F1BBCDC
            else:
                f = b ^ c ^ d
                k = 0xCA62C1D6
            a, b, c, d, e = (
                (_rotl(a, 5) + f + e + k + w[index]) & _MASK,
                a,
                _rotl(b, 30),
                c,
                d,
            )
        h[0] = (h[0] + a) & _MASK
        h[1] = (h[1] + b) & _MASK
        h[2] = (h[2] + c) & _MASK
        h[3] = (h[3] + d) & _MASK
        h[4] = (h[4] + e) & _MASK


def sha1(data: bytes) -> bytes:
    """One-shot pure-Python SHA-1 of ``data``."""
    return Sha1(data).digest()
