"""HMAC (RFC 2104) over a pluggable hash engine.

The chunk store "signs" the master record and durable-commit trailers with
the secret key.  The paper says *signed with the secret key* — with a
symmetric secret the right primitive is a MAC, and HMAC is what the
companion OSDI paper uses.  Verification is constant-time.
"""

from __future__ import annotations

import hmac as _stdlib_hmac

from repro.crypto.hashes import HashEngine, create_hash_engine
from repro.errors import CryptoError

__all__ = ["Hmac", "create_mac"]


class Hmac:
    """Keyed MAC computed as HMAC over the given hash engine."""

    def __init__(self, key: bytes, engine: HashEngine, block_size: int = 64) -> None:
        if not key:
            raise CryptoError("HMAC key must be non-empty")
        self.engine = engine
        self.tag_size = engine.digest_size
        if len(key) > block_size:
            key = engine.digest(key)
        key = key.ljust(block_size, b"\x00")
        self._inner_pad = bytes(b ^ 0x36 for b in key)
        self._outer_pad = bytes(b ^ 0x5C for b in key)

    def tag(self, data: bytes) -> bytes:
        """Return the authentication tag of ``data``."""
        inner = self.engine.digest(self._inner_pad + data)
        return self.engine.digest(self._outer_pad + inner)

    def verify(self, data: bytes, tag: bytes) -> bool:
        """Constant-time check that ``tag`` authenticates ``data``."""
        return _stdlib_hmac.compare_digest(self.tag(data), tag)


def create_mac(key: bytes, hash_name: str = "sha1") -> Hmac:
    """Build an :class:`Hmac` over the named hash engine."""
    return Hmac(key, create_hash_engine(hash_name))
