"""Native AES: the ``"native"`` crypto engine.

Pure-python crypto is the wall of every GB-scale scenario: the table
kernels (:class:`~repro.crypto.aesfast.AesFast`) top out around 1 MB/s
while the disk underneath moves hundreds.  This module puts the
platform's real crypto behind the same :class:`BlockCipher` shape — the
`cryptography <https://cryptography.io>`_ package's OpenSSL-backed AES
when importable, and a transparent fallback onto the table kernels when
it is not (no new hard dependency; the engine name stays valid either
way, only the speed changes).

Three properties keep the engine swappable:

* **Identical on-disk images.**  CBC and CTR are deterministic given key
  and IV, so the native path produces byte-for-byte the ciphertext of
  the reference and fast kernels; a store written under any engine opens
  under any other.  The differential suite
  (``tests/test_engine_differential.py``) fuzzes this invariant and the
  reopen guard in ``tests/test_crypto_kernels.py`` pins it on real store
  images.
* **Same interface.**  :class:`NativeAes` exposes ``encrypt_block`` /
  ``decrypt_block`` like every other block cipher here.  When the
  OpenSSL backend is live it additionally exposes the *whole-payload*
  methods (:meth:`cbc_encrypt_payload` and friends) that
  :mod:`repro.crypto.modes` dispatches to — one C call per payload
  instead of one Python call per 16-byte block.  In fallback mode it
  exposes the word kernels instead, so the batched pure-python path
  engages.
* **Oracle guard.**  The reference and fast kernels are kept forever as
  cross-check oracles; nothing about them changed.  ``native`` is just a
  third point on the same interface.

DES/3DES have no native path (the paper's 3DES profile exists for
fidelity, not speed) and silently keep their reference implementation,
exactly as they do under the ``fast`` engine.
"""

from __future__ import annotations

from repro.crypto.aesfast import AesFast
from repro.errors import CryptoError

__all__ = ["HAVE_NATIVE_BACKEND", "NativeAes", "best_aes"]

try:  # pragma: no cover - exercised indirectly by every native test
    from cryptography.hazmat.primitives.ciphers import (
        Cipher as _Cipher,
        algorithms as _algorithms,
        modes as _cmodes,
    )

    HAVE_NATIVE_BACKEND = True
except ImportError:  # pragma: no cover - container without cryptography
    _Cipher = _algorithms = _cmodes = None
    HAVE_NATIVE_BACKEND = False


class NativeAes:
    """AES-128/192/256 over the platform's native crypto, if present.

    With the OpenSSL backend the instance carries the whole-payload
    methods the mode layer fast-paths on; without it the instance
    borrows :class:`AesFast`'s word kernels, so it degrades to exactly
    the ``fast`` engine (correct, just slower).  ``backend`` tells an
    operator (and the benches) which one is live.
    """

    block_size = 16

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise CryptoError(
                f"AES key must be 16, 24, or 32 bytes, got {len(key)}"
            )
        if HAVE_NATIVE_BACKEND:
            self.backend = "openssl"
            self._algorithm = _algorithms.AES(key)
            self._fallback = None
        else:
            self.backend = "fallback"
            self._fallback = AesFast(key)
            # Exposing the word kernels as instance attributes makes
            # modes._has_word_kernel() true, engaging the batched
            # pure-python path for whole payloads.
            self.encrypt_words = self._fallback.encrypt_words
            self.decrypt_words = self._fallback.decrypt_words

    # -- per-block interface (shared by all engines) ---------------------

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise CryptoError(f"AES block must be 16 bytes, got {len(block)}")
        if self._fallback is not None:
            return self._fallback.encrypt_block(block)
        ctx = _Cipher(self._algorithm, _cmodes.ECB()).encryptor()
        return ctx.update(block) + ctx.finalize()

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise CryptoError(f"AES block must be 16 bytes, got {len(block)}")
        if self._fallback is not None:
            return self._fallback.decrypt_block(block)
        ctx = _Cipher(self._algorithm, _cmodes.ECB()).decryptor()
        return ctx.update(block) + ctx.finalize()

    # -- whole-payload interface (native backend only) -------------------
    #
    # Only defined meaningfully when the backend is live; the mode layer
    # checks ``backend == "openssl"`` via modes._has_native_kernel before
    # calling them.

    def cbc_encrypt_payload(self, padded: bytes, iv: bytes) -> bytes:
        """CBC-encrypt an already-padded payload; returns body (no IV)."""
        ctx = _Cipher(self._algorithm, _cmodes.CBC(iv)).encryptor()
        return ctx.update(padded) + ctx.finalize()

    def cbc_decrypt_payload(self, iv: bytes, body: bytes) -> bytes:
        """CBC-decrypt a payload body; returns still-padded plaintext."""
        ctx = _Cipher(self._algorithm, _cmodes.CBC(iv)).decryptor()
        return ctx.update(body) + ctx.finalize()

    def ctr_payload(self, data: bytes, prefix: bytes) -> bytes:
        """CTR-transform ``data``; ``prefix`` is the 12-byte nonce block.

        The initial counter block is ``prefix || 0x00000000`` — OpenSSL
        increments the whole 128-bit block, which matches the reference
        path's 32-bit big-endian counter for every payload smaller than
        2**32 blocks (64 GiB), far beyond any segment or backup stream.
        """
        ctx = _Cipher(
            self._algorithm, _cmodes.CTR(prefix + b"\x00\x00\x00\x00")
        ).encryptor()
        return ctx.update(data) + ctx.finalize()


def best_aes(key: bytes):
    """The fastest AES available for *internal* keystreams.

    Used where the cipher choice is an implementation detail with a
    stable wire format (the backup store's CTR keystream): all engines
    produce identical bytes, so picking the fastest is free.
    """
    return NativeAes(key) if HAVE_NATIVE_BACKEND else AesFast(key)
