"""Instrumented wrappers metering the crypto kernels.

The chunk store wraps its payload cipher and hash engine in these
decorators so every whole-payload operation lands in a
:class:`~repro.perf.PerfStats` — calls, plaintext bytes, and wall
nanoseconds per kernel.  The wrappers preserve the wrapped interface
exactly (they *are* a :class:`PayloadCipher` / :class:`HashEngine`), so
every existing call site works unchanged and the fast/reference kernel
choice stays invisible above the crypto package.
"""

from __future__ import annotations

import time

from repro.crypto.cipher import PayloadCipher
from repro.crypto.hashes import HashEngine
from repro.perf import PerfStats

__all__ = ["InstrumentedPayloadCipher", "InstrumentedHashEngine"]


class InstrumentedPayloadCipher(PayloadCipher):
    """Meter a payload cipher's encrypt/decrypt into a PerfStats."""

    def __init__(self, inner: PayloadCipher, perf: PerfStats) -> None:
        self._inner = inner
        self._perf = perf
        self.name = inner.name
        self._encrypt_kernel = f"cipher.{inner.name}.encrypt"
        self._decrypt_kernel = f"cipher.{inner.name}.decrypt"

    def encrypt(self, plaintext: bytes) -> bytes:
        started = time.perf_counter_ns()
        out = self._inner.encrypt(plaintext)
        self._perf.record_kernel(
            self._encrypt_kernel, len(plaintext), time.perf_counter_ns() - started
        )
        return out

    def decrypt(self, data: bytes) -> bytes:
        started = time.perf_counter_ns()
        out = self._inner.decrypt(data)
        self._perf.record_kernel(
            self._decrypt_kernel, len(data), time.perf_counter_ns() - started
        )
        return out

    def ciphertext_overhead(self, plaintext_length: int) -> int:
        return self._inner.ciphertext_overhead(plaintext_length)


class InstrumentedHashEngine(HashEngine):
    """Meter a hash engine's digests into a PerfStats."""

    def __init__(self, inner: HashEngine, perf: PerfStats) -> None:
        self._inner = inner
        self._perf = perf
        self.name = inner.name
        self.digest_size = inner.digest_size
        self._kernel = f"hash.{inner.name}"

    def digest(self, data: bytes) -> bytes:
        started = time.perf_counter_ns()
        out = self._inner.digest(data)
        self._perf.record_kernel(
            self._kernel, len(data), time.perf_counter_ns() - started
        )
        return out

    def digest_many(self, *parts: bytes) -> bytes:
        started = time.perf_counter_ns()
        out = self._inner.digest_many(*parts)
        self._perf.record_kernel(
            self._kernel,
            sum(len(part) for part in parts),
            time.perf_counter_ns() - started,
        )
        return out
