"""Precomputed-table AES: the fast kernel behind the ``"fast"`` profile.

The reference :class:`~repro.crypto.aes.Aes` applies SubBytes, ShiftRows
and MixColumns byte by byte; clear, but it makes crypto the dominant CPU
cost of every chunk read and write.  This module implements the classic
T-table formulation instead: SubBytes + ShiftRows + MixColumns collapse
into four 256-entry tables of 32-bit words, so one round of one column
is four table lookups and four XORs on Python ints.  Decryption uses the
*equivalent inverse cipher* with InvMixColumns fused into the round keys
(FIPS 197 section 5.3.5), so both directions run the same shape of loop.

The state is held as four 32-bit big-endian column words, which is also
the interface (:meth:`AesFast.encrypt_words`) the batched CBC/CTR
kernels in :mod:`repro.crypto.modes` consume — whole payloads are
transformed without materializing per-block ``bytes`` objects.

Key schedule and test vectors are shared with the reference cipher: the
round keys are expanded by :class:`~repro.crypto.aes.Aes` itself, so the
two kernels cannot drift apart, and the property tests in the suite pit
them against each other on random inputs.
"""

from __future__ import annotations

import struct

from repro.crypto.aes import _MUL, _SBOX, _INV_SBOX, Aes
from repro.errors import CryptoError

__all__ = ["AesFast"]

_WORD4 = struct.Struct(">4I")

# Encryption tables: _TE0[x] packs the MixColumns column of S[x] as
# (2s, s, s, 3s) from MSB to LSB; _TE1.._TE3 are byte rotations of it.
_mul2, _mul3 = _MUL[2], _MUL[3]
_TE0 = tuple(
    (_mul2[s] << 24) | (s << 16) | (s << 8) | _mul3[s]
    for s in _SBOX
)
_TE1 = tuple(((t >> 8) | ((t & 0xFF) << 24)) for t in _TE0)
_TE2 = tuple(((t >> 8) | ((t & 0xFF) << 24)) for t in _TE1)
_TE3 = tuple(((t >> 8) | ((t & 0xFF) << 24)) for t in _TE2)

# Decryption tables over InvSBox with the InvMixColumns coefficients
# (14, 9, 13, 11); _TD0[S[x]] == InvMixColumns word of x, which is how
# the decryption round keys are fused below.
_mul9, _mul11, _mul13, _mul14 = _MUL[9], _MUL[11], _MUL[13], _MUL[14]
_TD0 = tuple(
    (_mul14[s] << 24) | (_mul9[s] << 16) | (_mul13[s] << 8) | _mul11[s]
    for s in _INV_SBOX
)
_TD1 = tuple(((t >> 8) | ((t & 0xFF) << 24)) for t in _TD0)
_TD2 = tuple(((t >> 8) | ((t & 0xFF) << 24)) for t in _TD1)
_TD3 = tuple(((t >> 8) | ((t & 0xFF) << 24)) for t in _TD2)


def _inv_mix_word(word: int) -> int:
    """InvMixColumns of one column word (round-key fusion)."""
    return (
        _TD0[_SBOX[word >> 24]]
        ^ _TD1[_SBOX[(word >> 16) & 0xFF]]
        ^ _TD2[_SBOX[(word >> 8) & 0xFF]]
        ^ _TD3[_SBOX[word & 0xFF]]
    )


class AesFast:
    """T-table AES-128/192/256 over 16-byte blocks.

    Bit-compatible with :class:`~repro.crypto.aes.Aes` (same key sizes,
    same block interface) plus the word-level batch interface
    (:meth:`encrypt_words` / :meth:`decrypt_words`) the whole-payload
    mode kernels use.
    """

    block_size = 16

    def __init__(self, key: bytes) -> None:
        reference = Aes(key)  # validates the key and expands the schedule
        self.rounds = reference.rounds
        words_per_schedule = 4 * (self.rounds + 1)
        self._ek = list(
            struct.unpack(
                f">{words_per_schedule}I", b"".join(reference._round_keys)
            )
        )
        # Fused decryption schedule: rounds reversed, InvMixColumns
        # applied to every middle round key.
        dk = []
        for round_index in range(self.rounds, -1, -1):
            words = self._ek[4 * round_index:4 * round_index + 4]
            if 0 < round_index < self.rounds:
                words = [_inv_mix_word(word) for word in words]
            dk.extend(words)
        self._dk = dk

    # -- word-level kernels (used by the batched modes) -----------------

    def encrypt_words(self, s0: int, s1: int, s2: int, s3: int):
        """Encrypt one block given as four big-endian column words."""
        ek = self._ek
        te0, te1, te2, te3 = _TE0, _TE1, _TE2, _TE3
        sbox = _SBOX
        s0 ^= ek[0]
        s1 ^= ek[1]
        s2 ^= ek[2]
        s3 ^= ek[3]
        k = 4
        for _ in range(self.rounds - 1):
            t0 = te0[s0 >> 24] ^ te1[(s1 >> 16) & 0xFF] ^ te2[(s2 >> 8) & 0xFF] ^ te3[s3 & 0xFF] ^ ek[k]
            t1 = te0[s1 >> 24] ^ te1[(s2 >> 16) & 0xFF] ^ te2[(s3 >> 8) & 0xFF] ^ te3[s0 & 0xFF] ^ ek[k + 1]
            t2 = te0[s2 >> 24] ^ te1[(s3 >> 16) & 0xFF] ^ te2[(s0 >> 8) & 0xFF] ^ te3[s1 & 0xFF] ^ ek[k + 2]
            t3 = te0[s3 >> 24] ^ te1[(s0 >> 16) & 0xFF] ^ te2[(s1 >> 8) & 0xFF] ^ te3[s2 & 0xFF] ^ ek[k + 3]
            s0, s1, s2, s3 = t0, t1, t2, t3
            k += 4
        return (
            ((sbox[s0 >> 24] << 24) | (sbox[(s1 >> 16) & 0xFF] << 16)
             | (sbox[(s2 >> 8) & 0xFF] << 8) | sbox[s3 & 0xFF]) ^ ek[k],
            ((sbox[s1 >> 24] << 24) | (sbox[(s2 >> 16) & 0xFF] << 16)
             | (sbox[(s3 >> 8) & 0xFF] << 8) | sbox[s0 & 0xFF]) ^ ek[k + 1],
            ((sbox[s2 >> 24] << 24) | (sbox[(s3 >> 16) & 0xFF] << 16)
             | (sbox[(s0 >> 8) & 0xFF] << 8) | sbox[s1 & 0xFF]) ^ ek[k + 2],
            ((sbox[s3 >> 24] << 24) | (sbox[(s0 >> 16) & 0xFF] << 16)
             | (sbox[(s1 >> 8) & 0xFF] << 8) | sbox[s2 & 0xFF]) ^ ek[k + 3],
        )

    def decrypt_words(self, s0: int, s1: int, s2: int, s3: int):
        """Invert :meth:`encrypt_words` (equivalent inverse cipher)."""
        dk = self._dk
        td0, td1, td2, td3 = _TD0, _TD1, _TD2, _TD3
        inv_sbox = _INV_SBOX
        s0 ^= dk[0]
        s1 ^= dk[1]
        s2 ^= dk[2]
        s3 ^= dk[3]
        k = 4
        for _ in range(self.rounds - 1):
            t0 = td0[s0 >> 24] ^ td1[(s3 >> 16) & 0xFF] ^ td2[(s2 >> 8) & 0xFF] ^ td3[s1 & 0xFF] ^ dk[k]
            t1 = td0[s1 >> 24] ^ td1[(s0 >> 16) & 0xFF] ^ td2[(s3 >> 8) & 0xFF] ^ td3[s2 & 0xFF] ^ dk[k + 1]
            t2 = td0[s2 >> 24] ^ td1[(s1 >> 16) & 0xFF] ^ td2[(s0 >> 8) & 0xFF] ^ td3[s3 & 0xFF] ^ dk[k + 2]
            t3 = td0[s3 >> 24] ^ td1[(s2 >> 16) & 0xFF] ^ td2[(s1 >> 8) & 0xFF] ^ td3[s0 & 0xFF] ^ dk[k + 3]
            s0, s1, s2, s3 = t0, t1, t2, t3
            k += 4
        return (
            ((inv_sbox[s0 >> 24] << 24) | (inv_sbox[(s3 >> 16) & 0xFF] << 16)
             | (inv_sbox[(s2 >> 8) & 0xFF] << 8) | inv_sbox[s1 & 0xFF]) ^ dk[k],
            ((inv_sbox[s1 >> 24] << 24) | (inv_sbox[(s0 >> 16) & 0xFF] << 16)
             | (inv_sbox[(s3 >> 8) & 0xFF] << 8) | inv_sbox[s2 & 0xFF]) ^ dk[k + 1],
            ((inv_sbox[s2 >> 24] << 24) | (inv_sbox[(s1 >> 16) & 0xFF] << 16)
             | (inv_sbox[(s0 >> 8) & 0xFF] << 8) | inv_sbox[s3 & 0xFF]) ^ dk[k + 2],
            ((inv_sbox[s3 >> 24] << 24) | (inv_sbox[(s2 >> 16) & 0xFF] << 16)
             | (inv_sbox[(s1 >> 8) & 0xFF] << 8) | inv_sbox[s0 & 0xFF]) ^ dk[k + 3],
        )

    # -- block interface (compatibility with the reference cipher) ------

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != 16:
            raise CryptoError(f"AES block must be 16 bytes, got {len(block)}")
        return _WORD4.pack(*self.encrypt_words(*_WORD4.unpack(block)))

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(block) != 16:
            raise CryptoError(f"AES block must be 16 bytes, got {len(block)}")
        return _WORD4.pack(*self.decrypt_words(*_WORD4.unpack(block)))
