"""Multiprocess digest/verification pool.

Whole-tree verification (scrub), backup-stream authentication, and
replication shipment digests are embarrassingly parallel: each payload
is hashed (and, for chunk states, trial-decrypted) independently, and
Python's hashlib/HMAC/OpenSSL primitives release no work to other
threads — so the only way to use more than one core is more than one
*process*.  :class:`DigestPool` fans batches of such jobs across a
:class:`~concurrent.futures.ProcessPoolExecutor` and degrades
gracefully:

* ``max_workers=1`` (the default) runs every job serially in-process —
  no executor is ever created, no pickling happens, behaviour is
  byte-for-byte the pre-pool code path;
* a pool whose workers die (:class:`BrokenProcessPool`) is marked
  broken and the *same* jobs are re-run serially — a crashed worker can
  therefore never cause damage to go unreported, only cost time;
* every parallel dispatch is metered (``pool.dispatches``,
  ``pool.jobs``, ``pool.bytes``) and every crash-triggered retreat is
  counted (``pool.fallbacks``) in the owning store's
  :class:`~repro.perf.PerfStats`.

Job payloads travel to the workers by pickling, so jobs are batched
(``batch_size`` per task) to amortize the per-task round trip.  Workers
rebuild ciphers and hash engines from a small picklable *spec* tuple and
cache them per process, so key schedules are computed once per worker,
not once per job.
"""

from __future__ import annotations

import hashlib
import hmac as _stdlib_hmac
import os
from concurrent.futures import ProcessPoolExecutor
from functools import partial
from typing import Callable, List, Optional, Sequence, Tuple

__all__ = ["DigestPool", "VerifySpec"]

#: Picklable recipe a worker needs to rebuild the store's payload crypto:
#: ``(cipher_name, key, kernel, hash_name)``.
VerifySpec = Tuple[str, bytes, str, str]


# ---------------------------------------------------------------------------
# Worker-side functions (module level so they pickle by reference)
# ---------------------------------------------------------------------------


def _sha256_batch(blobs: Sequence[bytes]) -> List[str]:
    return [hashlib.sha256(blob).hexdigest() for blob in blobs]


def _hmac_sha256_batch(key: bytes, blobs: Sequence[bytes]) -> List[bytes]:
    return [
        _stdlib_hmac.new(key, blob, hashlib.sha256).digest() for blob in blobs
    ]


#: Per-worker-process cache of constructed (cipher, hash engine) pairs, so
#: the AES key schedule is expanded once per worker rather than per batch.
_VERIFY_ENGINES: dict = {}


def _verify_batch(
    spec: VerifySpec, jobs: Sequence[Tuple[bytes, bytes]]
) -> List[Optional[str]]:
    """Verify ``(raw_payload, expected_digest)`` jobs; ``None`` means clean.

    Mirrors ``ChunkStore.read_payload`` exactly: content digest against
    the locator hash first, then a trial decryption so truncated or
    bit-flipped ciphertext (bad padding) is caught even when the digest
    was forged alongside the payload.
    """
    engines = _VERIFY_ENGINES.get(spec)
    if engines is None:
        from repro.crypto.cipher import create_payload_cipher
        from repro.crypto.hashes import create_hash_engine

        cipher_name, key, kernel, hash_name = spec
        engines = _VERIFY_ENGINES[spec] = (
            create_payload_cipher(cipher_name, key, kernel=kernel),
            create_hash_engine(hash_name),
        )
    cipher, hasher = engines
    verdicts: List[Optional[str]] = []
    for raw, expected in jobs:
        try:
            if hasher.digest(raw) != expected:
                verdicts.append("payload failed hash validation")
                continue
            cipher.decrypt(raw)
        except Exception as exc:  # noqa: BLE001 - verdict, not control flow
            verdicts.append(str(exc) or type(exc).__name__)
        else:
            verdicts.append(None)
    return verdicts


# ---------------------------------------------------------------------------
# The pool
# ---------------------------------------------------------------------------


class DigestPool:
    """Fan batches of digest/verify jobs across worker processes.

    ``max_workers=1`` is fully serial (no executor, no pickling);
    ``max_workers=0`` means one worker per CPU.  All public methods
    preserve job order in their results and fall back to the serial
    path if the worker pool breaks mid-dispatch.
    """

    def __init__(
        self,
        max_workers: int = 1,
        perf=None,
        batch_size: int = 16,
    ) -> None:
        if max_workers == 0:
            max_workers = os.cpu_count() or 1
        if max_workers < 1:
            raise ValueError("max_workers must be >= 0 (0 = one per CPU)")
        self.max_workers = max_workers
        self.batch_size = max(1, batch_size)
        self._perf = perf
        self._executor: Optional[ProcessPoolExecutor] = None
        self._broken = False
        self._closed = False

    @property
    def parallel(self) -> bool:
        """Whether the next dispatch would use worker processes."""
        return self.max_workers > 1 and not self._broken and not self._closed

    # -- public job kinds ----------------------------------------------

    def sha256_many(self, blobs: Sequence[bytes]) -> List[str]:
        """SHA-256 hex digests of ``blobs``, in order."""
        return self._run(_sha256_batch, blobs)

    def hmac_sha256_many(
        self, key: bytes, blobs: Sequence[bytes]
    ) -> List[bytes]:
        """HMAC-SHA256 digests of ``blobs`` under ``key``, in order."""
        return self._run(partial(_hmac_sha256_batch, key), blobs)

    def verify_payloads(
        self, spec: VerifySpec, jobs: Sequence[Tuple[bytes, bytes]]
    ) -> List[Optional[str]]:
        """Digest-check and trial-decrypt stored payloads.

        Each job is ``(raw_payload, expected_digest)``; each verdict is
        ``None`` for a clean payload or a human-readable reason string.
        """
        return self._run(
            partial(_verify_batch, spec),
            jobs,
            nbytes=sum(len(raw) for raw, _ in jobs),
        )

    # -- dispatch machinery --------------------------------------------

    def _run(
        self,
        fn: Callable[[Sequence], List],
        jobs: Sequence,
        nbytes: Optional[int] = None,
    ) -> List:
        if not jobs:
            return []
        batches = [
            list(jobs[i:i + self.batch_size])
            for i in range(0, len(jobs), self.batch_size)
        ]
        if self.parallel:
            try:
                results = self._dispatch(fn, batches)
            except Exception:  # noqa: BLE001 - any dispatch failure
                # A dead worker (BrokenProcessPool) or any other
                # dispatch-level failure must cost time, never
                # correctness: mark the pool broken and redo everything
                # serially below.  A deterministic bug in ``fn`` itself
                # re-raises from the serial path, so nothing is masked.
                self._broken = True
                self._shutdown_executor()
                self._incr("pool.fallbacks")
            else:
                self._incr("pool.dispatches")
                self._incr("pool.jobs", len(jobs))
                if nbytes is None:
                    nbytes = sum(len(job) for job in jobs)
                self._incr("pool.bytes", nbytes)
                return [item for batch in results for item in batch]
        return [item for batch in batches for item in fn(batch)]

    def _dispatch(self, fn: Callable, batches: List[list]) -> List[list]:
        """Run ``fn`` over ``batches`` on the executor (test seam)."""
        executor = self._ensure_executor()
        return list(executor.map(fn, batches))

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._executor

    def _incr(self, name: str, amount: int = 1) -> None:
        if self._perf is not None:
            self._perf.incr(name, amount)

    def _shutdown_executor(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Shut the workers down; further dispatches run serially."""
        self._closed = True
        self._shutdown_executor()

    def __enter__(self) -> "DigestPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
