"""Cryptographic substrate of the chunk store.

The paper's TDB-S configuration hashes with SHA-1 and encrypts with 3DES.
Nothing here depends on third-party packages: SHA-1, DES/3DES and AES are
implemented from scratch (``hashlib`` remains available as an accelerated
hash engine, and the pure implementations are verified against it and
against the FIPS test vectors in the test suite).

The chunk store consumes three small interfaces:

* :class:`~repro.crypto.hashes.HashEngine` — one-way hash for the Merkle
  tree (``create_hash_engine``),
* :class:`~repro.crypto.cipher.PayloadCipher` — encrypt/decrypt a chunk
  payload (``create_payload_cipher``),
* :class:`~repro.crypto.mac.Hmac` — keyed MAC for the master record and
  commit trailers (``create_mac``).
"""

from repro.crypto.hashes import (
    HashEngine,
    HashlibEngine,
    PureSha1Engine,
    create_hash_engine,
)
from repro.crypto.cipher import (
    CIPHER_KEY_SIZES,
    ENGINE_NAMES,
    BlockCipher,
    PayloadCipher,
    NullPayloadCipher,
    CbcPayloadCipher,
    create_payload_cipher,
)
from repro.crypto.mac import Hmac, create_mac
from repro.crypto.sha1 import sha1
from repro.crypto.des import Des, TripleDes
from repro.crypto.aes import Aes
from repro.crypto.aesfast import AesFast
from repro.crypto.native import HAVE_NATIVE_BACKEND, NativeAes, best_aes
from repro.crypto.pool import DigestPool
from repro.crypto.instrument import (
    InstrumentedHashEngine,
    InstrumentedPayloadCipher,
)
from repro.crypto import modes

__all__ = [
    "HashEngine",
    "HashlibEngine",
    "PureSha1Engine",
    "create_hash_engine",
    "BlockCipher",
    "PayloadCipher",
    "NullPayloadCipher",
    "CbcPayloadCipher",
    "create_payload_cipher",
    "Hmac",
    "create_mac",
    "sha1",
    "Des",
    "TripleDes",
    "Aes",
    "AesFast",
    "NativeAes",
    "HAVE_NATIVE_BACKEND",
    "best_aes",
    "DigestPool",
    "CIPHER_KEY_SIZES",
    "ENGINE_NAMES",
    "InstrumentedHashEngine",
    "InstrumentedPayloadCipher",
    "modes",
]
