"""Hash engines for the Merkle tree.

The chunk store hashes every chunk state and every location-map node; the
root digest is what the master record authenticates.  Engines are pluggable
so the paper's SHA-1 profile, a from-scratch SHA-1 and SHA-256 can be
compared by the ablation benches.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod

from repro.crypto.sha1 import Sha1

__all__ = ["HashEngine", "HashlibEngine", "PureSha1Engine", "create_hash_engine"]


class HashEngine(ABC):
    """A one-way hash: name, digest size, one-shot digest."""

    name: str
    digest_size: int

    @abstractmethod
    def digest(self, data: bytes) -> bytes:
        """Return the digest of ``data``."""

    def digest_many(self, *parts: bytes) -> bytes:
        """Digest the concatenation of ``parts`` (Merkle node hashing)."""
        return self.digest(b"".join(parts))


class HashlibEngine(HashEngine):
    """Engine backed by :mod:`hashlib` (SHA-1 by default, as in TDB-S)."""

    def __init__(self, algorithm: str = "sha1") -> None:
        probe = hashlib.new(algorithm)
        self.name = algorithm
        self.digest_size = probe.digest_size
        self._algorithm = algorithm

    def digest(self, data: bytes) -> bytes:
        return hashlib.new(self._algorithm, data).digest()

    def digest_many(self, *parts: bytes) -> bytes:
        # Feed parts incrementally instead of joining: Merkle-node
        # hashing over many children avoids one large copy per digest.
        state = hashlib.new(self._algorithm)
        for part in parts:
            state.update(part)
        return state.digest()


class PureSha1Engine(HashEngine):
    """Engine backed by this repo's from-scratch SHA-1."""

    name = "sha1-pure"
    digest_size = 20

    def digest(self, data: bytes) -> bytes:
        return Sha1(data).digest()


def create_hash_engine(name: str) -> HashEngine:
    """Build a hash engine from a profile name.

    ``"sha1"`` / ``"sha256"`` use :mod:`hashlib`; ``"sha1-pure"`` uses the
    from-scratch implementation.
    """
    if name == "sha1-pure":
        return PureSha1Engine()
    if name in ("sha1", "sha256"):
        return HashlibEngine(name)
    raise ValueError(f"unknown hash engine: {name!r}")
