"""Payload ciphers: what the chunk store calls to (de)crypt chunk states.

A :class:`PayloadCipher` turns a variable-length plaintext into an opaque
ciphertext and back.  The CBC implementation prepends a random IV and pads
with PKCS#7 — exactly the "padding for block encryption" overhead the paper
charges to TDB-S.  The null cipher is the insecure profile: it passes data
through unchanged (and unpadded), matching plain TDB.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Protocol

from repro.crypto import modes
from repro.crypto.aes import Aes
from repro.crypto.aesfast import AesFast
from repro.crypto.des import Des, TripleDes
from repro.errors import CryptoError

__all__ = [
    "BlockCipher",
    "PayloadCipher",
    "NullPayloadCipher",
    "CbcPayloadCipher",
    "create_payload_cipher",
]


class BlockCipher(Protocol):
    """Structural interface of the raw block ciphers in this package."""

    block_size: int

    def encrypt_block(self, block: bytes) -> bytes: ...

    def decrypt_block(self, block: bytes) -> bytes: ...


class PayloadCipher(ABC):
    """Encrypt/decrypt a whole chunk payload."""

    name: str

    @abstractmethod
    def encrypt(self, plaintext: bytes) -> bytes:
        """Return the ciphertext of ``plaintext``."""

    @abstractmethod
    def decrypt(self, data: bytes) -> bytes:
        """Invert :meth:`encrypt`; raise :class:`CryptoError` if malformed."""

    @abstractmethod
    def ciphertext_overhead(self, plaintext_length: int) -> int:
        """Bytes of expansion for a plaintext of the given length."""


class NullPayloadCipher(PayloadCipher):
    """Identity transform for the insecure (plain TDB) profile."""

    name = "null"

    def encrypt(self, plaintext: bytes) -> bytes:
        return plaintext

    def decrypt(self, data: bytes) -> bytes:
        return data

    def ciphertext_overhead(self, plaintext_length: int) -> int:
        return 0


class CbcPayloadCipher(PayloadCipher):
    """CBC over a block cipher with random IV and PKCS#7 padding."""

    def __init__(self, block_cipher: BlockCipher, name: str) -> None:
        self._cipher = block_cipher
        self.name = name

    def encrypt(self, plaintext: bytes) -> bytes:
        return modes.cbc_encrypt(self._cipher, plaintext)

    def decrypt(self, data: bytes) -> bytes:
        return modes.cbc_decrypt(self._cipher, data)

    def ciphertext_overhead(self, plaintext_length: int) -> int:
        block = self._cipher.block_size
        padding = block - (plaintext_length % block)
        return block + padding  # IV + PKCS#7


def create_payload_cipher(
    name: str, key: bytes, kernel: str = "fast"
) -> PayloadCipher:
    """Build a payload cipher from a profile name and raw key material.

    ``key`` may be longer than needed; the required prefix is used.  Names:
    ``"null"``, ``"aes-128"``, ``"aes-192"``, ``"aes-256"``, ``"des"``,
    ``"3des"``.

    ``kernel`` selects the implementation behind the AES profiles:
    ``"fast"`` (default) uses the precomputed-table
    :class:`~repro.crypto.aesfast.AesFast` and the batched CBC kernels;
    ``"reference"`` keeps the per-block byte-wise path.  Both produce
    identical ciphertext for the same key and IV, so stores written
    under one kernel open under the other.  DES/3DES have no fast
    kernel and ignore the selector.
    """
    if kernel not in ("fast", "reference"):
        raise ValueError(f"unknown crypto kernel: {kernel!r}")
    if name == "null":
        return NullPayloadCipher()
    key_sizes = {
        "aes-128": 16,
        "aes-192": 24,
        "aes-256": 32,
        "des": 8,
        "3des": 24,
    }
    if name not in key_sizes:
        raise ValueError(f"unknown cipher: {name!r}")
    needed = key_sizes[name]
    if len(key) < needed:
        raise CryptoError(
            f"cipher {name!r} needs {needed} key bytes, got {len(key)}"
        )
    key = key[:needed]
    if name.startswith("aes"):
        block_cipher = AesFast(key) if kernel == "fast" else Aes(key)
        return CbcPayloadCipher(block_cipher, name)
    if name == "des":
        return CbcPayloadCipher(Des(key), name)
    return CbcPayloadCipher(TripleDes(key), name)
