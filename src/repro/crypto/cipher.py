"""Payload ciphers: what the chunk store calls to (de)crypt chunk states.

A :class:`PayloadCipher` turns a variable-length plaintext into an opaque
ciphertext and back.  The CBC implementation prepends a random IV and pads
with PKCS#7 — exactly the "padding for block encryption" overhead the paper
charges to TDB-S.  The null cipher is the insecure profile: it passes data
through unchanged (and unpadded), matching plain TDB.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Protocol

from repro.crypto import modes
from repro.crypto.aes import Aes
from repro.crypto.aesfast import AesFast
from repro.crypto.des import Des, TripleDes
from repro.crypto.native import NativeAes
from repro.errors import ConfigError, CryptoError

__all__ = [
    "BlockCipher",
    "PayloadCipher",
    "NullPayloadCipher",
    "CbcPayloadCipher",
    "CIPHER_KEY_SIZES",
    "ENGINE_NAMES",
    "create_payload_cipher",
]

#: Engine (kernel) names accepted by :func:`create_payload_cipher` and
#: :class:`~repro.config.SecurityProfile`.
ENGINE_NAMES = ("native", "fast", "reference")

#: Cipher profile names and the key bytes each consumes.
CIPHER_KEY_SIZES = {
    "aes-128": 16,
    "aes-192": 24,
    "aes-256": 32,
    "des": 8,
    "3des": 24,
}

_AES_BY_ENGINE = {"native": NativeAes, "fast": AesFast, "reference": Aes}


class BlockCipher(Protocol):
    """Structural interface of the raw block ciphers in this package."""

    block_size: int

    def encrypt_block(self, block: bytes) -> bytes: ...

    def decrypt_block(self, block: bytes) -> bytes: ...


class PayloadCipher(ABC):
    """Encrypt/decrypt a whole chunk payload."""

    name: str

    @abstractmethod
    def encrypt(self, plaintext: bytes) -> bytes:
        """Return the ciphertext of ``plaintext``."""

    @abstractmethod
    def decrypt(self, data: bytes) -> bytes:
        """Invert :meth:`encrypt`; raise :class:`CryptoError` if malformed."""

    @abstractmethod
    def ciphertext_overhead(self, plaintext_length: int) -> int:
        """Bytes of expansion for a plaintext of the given length."""


class NullPayloadCipher(PayloadCipher):
    """Identity transform for the insecure (plain TDB) profile."""

    name = "null"

    def encrypt(self, plaintext: bytes) -> bytes:
        return plaintext

    def decrypt(self, data: bytes) -> bytes:
        return data

    def ciphertext_overhead(self, plaintext_length: int) -> int:
        return 0


class CbcPayloadCipher(PayloadCipher):
    """CBC over a block cipher with random IV and PKCS#7 padding."""

    def __init__(self, block_cipher: BlockCipher, name: str) -> None:
        self._cipher = block_cipher
        self.name = name

    def encrypt(self, plaintext: bytes) -> bytes:
        return modes.cbc_encrypt(self._cipher, plaintext)

    def decrypt(self, data: bytes) -> bytes:
        return modes.cbc_decrypt(self._cipher, data)

    def ciphertext_overhead(self, plaintext_length: int) -> int:
        block = self._cipher.block_size
        padding = block - (plaintext_length % block)
        return block + padding  # IV + PKCS#7


def create_payload_cipher(
    name: str, key: bytes, kernel: str = "fast"
) -> PayloadCipher:
    """Build a payload cipher from a profile name and raw key material.

    ``key`` may be longer than needed; the required prefix is used.  Names:
    ``"null"``, ``"aes-128"``, ``"aes-192"``, ``"aes-256"``, ``"des"``,
    ``"3des"``.

    ``kernel`` selects the engine behind the AES profiles: ``"native"``
    uses the platform's crypto (:class:`~repro.crypto.native.NativeAes`,
    falling back to the table kernels when no native backend is
    importable); ``"fast"`` uses the precomputed-table
    :class:`~repro.crypto.aesfast.AesFast` and the batched CBC kernels;
    ``"reference"`` keeps the per-block byte-wise path.  All three
    produce identical ciphertext for the same key and IV, so stores
    written under one engine open under any other.  DES/3DES have no
    accelerated engine and ignore the selector.
    """
    if kernel not in ENGINE_NAMES:
        raise ConfigError(
            f"unknown crypto engine: {kernel!r} (valid: {', '.join(ENGINE_NAMES)})"
        )
    if name == "null":
        return NullPayloadCipher()
    if name not in CIPHER_KEY_SIZES:
        raise ConfigError(
            f"unknown cipher: {name!r} "
            f"(valid: null, {', '.join(CIPHER_KEY_SIZES)})"
        )
    needed = CIPHER_KEY_SIZES[name]
    if len(key) < needed:
        raise CryptoError(
            f"cipher {name!r} needs {needed} key bytes, got {len(key)}"
        )
    key = key[:needed]
    if name.startswith("aes"):
        return CbcPayloadCipher(_AES_BY_ENGINE[kernel](key), name)
    if name == "des":
        return CbcPayloadCipher(Des(key), name)
    return CbcPayloadCipher(TripleDes(key), name)
