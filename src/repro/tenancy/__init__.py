"""repro.tenancy — the multi-tenant DRM hub.

Turns either server frontend into a hub serving many tenants from one
root directory: per-tenant databases opened lazily and LRU-evicted
(:mod:`~repro.tenancy.registry`), per-principal HMAC challenge–response
authentication, DDH-style policy grants persisted as ordinary TDB
records (:mod:`~repro.tenancy.policy`), per-tenant quotas enforced
through the backpressure layer (:mod:`~repro.tenancy.quotas`), and a
durable ``_audit`` trail written into each tenant's own database — the
DRM workload the paper targets, dogfooded through the store itself.

Entry point: :class:`~repro.tenancy.hub.TenancyHub`, passed as the
``tenancy`` argument of :class:`~repro.server.server.TdbServer` or
:class:`~repro.server.sharded.ShardedTdbServer` (see
``tools.py serve --tenants``).
"""

from repro.tenancy.hub import Identity, TenancyHub, compute_proof, value_bytes
from repro.tenancy.policy import OBJECT_SCOPE, RIGHTS, WILDCARD_SCOPE
from repro.tenancy.quotas import QuotaState, TenantQuotas
from repro.tenancy.records import (
    AUDIT,
    META_NAME,
    METER_NAME,
    POLICY,
    PRINCIPALS,
    RESERVED_COLLECTIONS,
    TenancyRecord,
    tenancy_indexer,
)
from repro.tenancy.registry import TenantRegistry, TenantState

__all__ = [
    "Identity",
    "TenancyHub",
    "TenantRegistry",
    "TenantState",
    "TenantQuotas",
    "QuotaState",
    "TenancyRecord",
    "tenancy_indexer",
    "compute_proof",
    "value_bytes",
    "RIGHTS",
    "OBJECT_SCOPE",
    "WILDCARD_SCOPE",
    "PRINCIPALS",
    "POLICY",
    "AUDIT",
    "RESERVED_COLLECTIONS",
    "META_NAME",
    "METER_NAME",
]
