"""Persistent record types of the tenancy control plane.

Principals, policy grants, audit events, and the tenant's meter/meta
objects are stored *through the store itself* — ordinary TDB records in
reserved collections of the tenant's own database — but deliberately
**not** as :class:`~repro.server.verbs.RemoteRecord`.

:class:`TenancyRecord` carries the same JSON payload shape yet is a
distinct persistent class (``class_id`` ``"tenancy.record"``).  The wire
data verbs type-check every dereference against ``RemoteRecord``, so a
principal who has somehow learned the raw oid of a ``_principals`` or
``_policy`` record still cannot open it through ``obj.get`` /
``obj.put``: the object store's dynamic type check refuses with
:class:`~repro.errors.TypeCheckError`.  The control plane fails closed
at the type system, not at a name filter.

Reserved collections (created by :meth:`TenantRegistry.create`):

``_principals``
    ``{"name": str, "secret": hex}`` — unique index on ``name``.
``_policy``
    ``{"principal": str, "scope": str, "right": str}`` — index on
    ``principal``.
``_audit``
    ``{"seq": int, "ts": float, "event": str, "principal": str|None,
    "detail": {...}}`` — index on ``seq``.

Their indexes are named ``tfield:{collection}:{field}`` — a prefix the
wire executor's indexer re-registration loop (which only rebuilds
``field:`` descriptors) deliberately skips, so the two data models never
mix even at the index layer.
"""

from __future__ import annotations

import json
from typing import Any

from repro.collectionstore import Indexer
from repro.errors import SchemaError
from repro.objectstore import BufferReader, BufferWriter, Persistent

__all__ = [
    "TenancyRecord",
    "tenancy_indexer",
    "PRINCIPALS",
    "POLICY",
    "AUDIT",
    "RESERVED_COLLECTIONS",
    "META_NAME",
    "METER_NAME",
]

#: Reserved collection names inside every tenant database.
PRINCIPALS = "_principals"
POLICY = "_policy"
AUDIT = "_audit"
RESERVED_COLLECTIONS = (PRINCIPALS, POLICY, AUDIT)

#: Reserved object names (``name.bind`` targets) inside every tenant
#: database: the tenant's metadata (quota configuration) and the durable
#: meter counters.
META_NAME = "_tenant"
METER_NAME = "_meter"


class TenancyRecord(Persistent):
    """A JSON value owned by the tenancy control plane.

    Same payload model as ``RemoteRecord``, different class identity —
    that difference *is* the access-control boundary (see module
    docstring).
    """

    class_id = "tenancy.record"

    def __init__(self, value: Any = None) -> None:
        self.value = value

    def pickle(self) -> bytes:
        body = json.dumps(self.value, separators=(",", ":")).encode("utf-8")
        return BufferWriter().write_bytes(body).getvalue()

    @classmethod
    def unpickle(cls, data: bytes) -> "TenancyRecord":
        reader = BufferReader(data)
        value = json.loads(reader.read_bytes().decode("utf-8"))
        reader.expect_end()
        return cls(value)

    def cache_charge(self) -> int:
        return 96 + 8 * len(json.dumps(self.value, separators=(",", ":")))


class _FieldKey:
    """Extractor pulling one field out of a TenancyRecord value."""

    __slots__ = ("field",)

    def __init__(self, field: str) -> None:
        self.field = field

    def __call__(self, record: TenancyRecord) -> Any:
        value = record.value
        if not isinstance(value, dict) or self.field not in value:
            raise SchemaError(
                f"tenancy record must be an object with field {self.field!r}"
            )
        return value[self.field]


def index_name(collection: str, field: str) -> str:
    return f"tfield:{collection}:{field}"


def tenancy_indexer(
    collection: str, field: str, kind: str = "btree", unique: bool = False
) -> Indexer:
    """Indexer over ``TenancyRecord`` keyed by one field of the value."""
    if ":" in field:
        raise SchemaError("field names must not contain ':'")
    return Indexer(
        name=index_name(collection, field),
        schema_class=TenancyRecord,
        extractor=_FieldKey(field),
        unique=unique,
        kind=kind,
    )


def control_plane_indexers():
    """The indexers of the three reserved collections (fresh instances)."""
    return (
        tenancy_indexer(PRINCIPALS, "name", unique=True),
        tenancy_indexer(POLICY, "principal"),
        tenancy_indexer(AUDIT, "seq", unique=True),
    )
