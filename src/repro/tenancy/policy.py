"""DDH-style policy: scoped read/write/admin grants, deny-by-default.

A grant is ``(principal, scope, right)``:

scope
    A collection name (gates the ``col.*`` verbs on that collection),
    the pseudo-scope ``"objects"`` (gates ``obj.*`` and ``name.*``), or
    the wildcard ``"*"``.  Scopes starting with ``_`` are *reserved*:
    the wildcard never covers them, so reading a tenant's ``_audit``
    trail over the wire needs an explicit ``read`` grant on
    ``"_audit"`` — and no grant at all permits *writing* a reserved
    scope through data verbs.
right
    ``read`` < ``write`` < ``admin``; a stronger right implies the
    weaker ones within its scope.  Tenant administration over the wire
    (``tenant.grant`` / ``tenant.revoke``) requires ``admin`` on
    ``"*"``.

Evaluation order for a data verb:

1. Classify the verb into ``(scope, right)`` — reserved *mutations*
   (and any ``name.*`` touching a ``_``-prefixed name) are refused
   here, before policy is even consulted.
2. Look for a grant of the principal whose right implies the required
   right and whose scope matches: exact scope first, then ``"*"``
   (skipped for reserved scopes).
3. No match → :class:`~repro.errors.PermissionDeniedError`.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Tuple

from repro.errors import PermissionDeniedError, ProtocolError

__all__ = [
    "RIGHTS",
    "OBJECT_SCOPE",
    "WILDCARD_SCOPE",
    "required_access",
    "grants_allow",
    "validate_grant",
]

RIGHTS = ("read", "write", "admin")
OBJECT_SCOPE = "objects"
WILDCARD_SCOPE = "*"

#: right → the set of rights it satisfies.
_IMPLIES = {
    "read": frozenset({"read"}),
    "write": frozenset({"read", "write"}),
    "admin": frozenset({"read", "write", "admin"}),
}

#: data verb → (scope kind, required right).  Scope kind ``objects``
#: maps to the pseudo-scope; ``collection`` takes the verb's ``name``.
_VERB_ACCESS = {
    "obj.get": (OBJECT_SCOPE, "read"),
    "obj.put": (OBJECT_SCOPE, "write"),
    "obj.remove": (OBJECT_SCOPE, "write"),
    "name.lookup": (OBJECT_SCOPE, "read"),
    "name.bind": (OBJECT_SCOPE, "write"),
    "col.get": ("collection", "read"),
    "col.iterate": ("collection", "read"),
    "col.insert": ("collection", "write"),
    "col.remove": ("collection", "write"),
    "col.create": ("collection", "admin"),
}

#: Reserved-scope verbs a read grant does permit (inspection only).
_RESERVED_READ_VERBS = frozenset({"col.get", "col.iterate"})


def reserved(scope: str) -> bool:
    return scope.startswith("_")


def required_access(op: str, request: Dict[str, Any]) -> Tuple[str, str]:
    """Classify a data verb into the ``(scope, right)`` it requires.

    Raises :class:`PermissionDeniedError` outright for operations no
    grant can permit (mutating reserved collections or names).
    """
    access = _VERB_ACCESS.get(op)
    if access is None:
        raise ProtocolError(f"unknown data verb {op!r}")
    kind, right = access
    if kind == OBJECT_SCOPE:
        name = request.get("name")
        if op.startswith("name.") and isinstance(name, str) and reserved(name):
            raise PermissionDeniedError(
                f"names starting with '_' are reserved for the tenancy "
                f"control plane ({name!r})"
            )
        return OBJECT_SCOPE, right
    name = str(request.get("name"))
    if reserved(name) and op not in _RESERVED_READ_VERBS:
        raise PermissionDeniedError(
            f"collection {name!r} is reserved for the tenancy control "
            "plane; it is read-only over the wire"
        )
    return name, right


def grants_allow(
    grants: Iterable[Tuple[str, str]], scope: str, right: str
) -> bool:
    """Whether any grant covers ``right`` on ``scope`` (deny-by-default)."""
    for granted_scope, granted_right in grants:
        if right not in _IMPLIES.get(granted_right, ()):
            continue
        if granted_scope == scope:
            return True
        if granted_scope == WILDCARD_SCOPE and not reserved(scope):
            return True
    return False


def check(
    grants: Iterable[Tuple[str, str]],
    principal: str,
    scope: str,
    right: str,
) -> None:
    if not grants_allow(grants, scope, right):
        raise PermissionDeniedError(
            f"principal {principal!r} holds no {right!r} grant on scope "
            f"{scope!r}"
        )


def validate_grant(principal: str, scope: str, right: str) -> None:
    """Shape checks for grant/revoke parameters (wire and CLI)."""
    if not isinstance(principal, str) or not principal or len(principal) > 128:
        raise ProtocolError("principal must be a non-empty string (<=128 chars)")
    if not isinstance(scope, str) or not scope or len(scope) > 128:
        raise ProtocolError("scope must be a non-empty string (<=128 chars)")
    if right not in RIGHTS:
        raise ProtocolError(f"right must be one of {RIGHTS}, got {right!r}")
