"""TenantRegistry: lazily opened, LRU-evicted per-tenant databases.

One root directory holds every tenant::

    ROOT/tenants/<name>/     # a full Database layout (data/, secret.key, ...)

The registry opens a tenant's :class:`~repro.db.Database` on first use,
keeps at most ``max_open`` of them resident, and evicts the least
recently used *unleased* tenant when the budget is exceeded — flushing
its durable meter and closing the stack cleanly so a later access
re-opens it through normal crash recovery.  Leases (one per
authenticated session) pin a tenant open; if every resident tenant is
leased the budget is soft-exceeded rather than breaking live sessions.

:class:`TenantState` is the per-open-tenant bundle: the database, its
quota state, the policy cache, the audit sequence, and the meter
counters, plus every helper that touches the tenant's own records
(principals, grants, audit events, meter flushes).  All of those run
under the tenant lock, so control-plane writes to one tenant serialize
with each other but never with other tenants.

Lock order: registry lock → tenant lock → database internals.  No
method of :class:`TenantState` ever calls back into the registry.
"""

from __future__ import annotations

import itertools
import os
import re
import secrets as _secrets
import threading
import time
from typing import Any, Dict, List, Optional

from repro.config import ChunkStoreConfig
from repro.db import Database
from repro.errors import TDBError, TenancyError
from repro.tenancy.quotas import QuotaState, TenantQuotas
from repro.tenancy.records import (
    AUDIT,
    META_NAME,
    METER_NAME,
    POLICY,
    PRINCIPALS,
    TenancyRecord,
    control_plane_indexers,
    index_name,
)

__all__ = ["TenantRegistry", "TenantState"]

_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9._-]{0,63}$")

_MISSING = object()


def validate_tenant_name(name: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise TenancyError(
            "tenant names must match [a-z0-9][a-z0-9._-]{0,63} "
            f"(got {name!r})"
        )
    return name


def prepare_database(db: Database) -> None:
    """Register the tenancy data model on a freshly opened database."""
    from repro.server.verbs import RemoteRecord

    db.register_class(TenancyRecord)
    db.register_class(RemoteRecord)
    for indexer in control_plane_indexers():
        db.register_indexer(indexer)


class TenantState:
    """One resident tenant: database handle plus control-plane state."""

    def __init__(
        self,
        name: str,
        db: Database,
        quotas: TenantQuotas,
        meter_flush_every: int = 16,
    ) -> None:
        self.name = name
        self.db = db
        self.lock = threading.RLock()
        self.leases = 0
        self.last_used = 0
        self._fallback_quotas = quotas
        self.quota = QuotaState(quotas)
        self.policy_cache: Optional[Dict[str, List]] = None
        self.meter_flush_every = max(1, meter_flush_every)
        self.meter_commits = 0
        self.meter_bytes = 0
        self._meter_dirty = 0
        self._meter_oid: Optional[int] = None
        self.audit_seq = 0
        self._last_quota_audit = 0.0
        self._load_persistent_state()

    # ------------------------------------------------------------------
    # Open-time restoration
    # ------------------------------------------------------------------

    def _load_persistent_state(self) -> None:
        txn = self.db.transaction()
        try:
            meta_oid = txn.lookup_name(META_NAME)
            if meta_oid is None:
                raise TenancyError(
                    f"directory of tenant {self.name!r} has no tenant "
                    "metadata; not a tenant database"
                )
            meta = txn.open_readonly(meta_oid, TenancyRecord).deref().value
            self._meter_oid = txn.lookup_name(METER_NAME)
            if self._meter_oid is not None:
                meter = txn.open_readonly(
                    self._meter_oid, TenancyRecord
                ).deref().value
                self.meter_commits = int(meter.get("commits", 0))
                self.meter_bytes = int(meter.get("bytes", 0))
        finally:
            txn.abort()
        quota_config = meta.get("quotas")
        quotas = (
            TenantQuotas.from_dict(quota_config)
            if quota_config
            else self._fallback_quotas
        )
        self.quota = QuotaState(quotas)
        self.quota.bytes_committed = self.meter_bytes
        ct = self.db.ctransaction()
        try:
            self.audit_seq = ct.read_collection(AUDIT).count
        finally:
            ct.abort()

    # ------------------------------------------------------------------
    # Record helpers (all run under the tenant lock)
    # ------------------------------------------------------------------

    def _rows(self, ct, collection: str, field: str, key=_MISSING) -> List[Any]:
        handle = ct.read_collection(collection)
        indexer = self.db.collection_store.indexer(index_name(collection, field))
        if key is _MISSING:
            iterator = handle.query(indexer)
        else:
            iterator = handle.query_match(indexer, key)
        values = []
        try:
            while not iterator.end():
                values.append(iterator.read().deref().value)
                iterator.next()
        finally:
            iterator.close()
        return values

    def read_principal_secret(self, principal: str) -> Optional[str]:
        """The principal's secret (hex) or ``None`` if unknown."""
        with self.lock:
            ct = self.db.ctransaction()
            try:
                rows = self._rows(ct, PRINCIPALS, "name", principal)
            finally:
                ct.abort()
        return rows[0].get("secret") if rows else None

    def upsert_principal(self, principal: str):
        """Ensure ``principal`` exists; returns ``(secret_hex, created)``."""
        with self.lock:
            ct = self.db.ctransaction()
            try:
                rows = self._rows(ct, PRINCIPALS, "name", principal)
                if rows:
                    ct.abort()
                    return rows[0]["secret"], False
                secret = _secrets.token_hex(32)
                handle = ct.write_collection(PRINCIPALS)
                handle.insert(
                    TenancyRecord({"name": principal, "secret": secret})
                )
                ct.commit(durable=True)
            except BaseException:
                if ct.active:
                    ct.abort()
                raise
            return secret, True

    def insert_grant(self, principal: str, scope: str, right: str) -> bool:
        """Add one grant record; returns False if it already existed."""
        with self.lock:
            ct = self.db.ctransaction()
            try:
                for row in self._rows(ct, POLICY, "principal", principal):
                    if row.get("scope") == scope and row.get("right") == right:
                        ct.abort()
                        return False
                handle = ct.write_collection(POLICY)
                handle.insert(
                    TenancyRecord(
                        {"principal": principal, "scope": scope, "right": right}
                    )
                )
                ct.commit(durable=True)
            except BaseException:
                if ct.active:
                    ct.abort()
                raise
            self.policy_cache = None
            return True

    def revoke_grants(self, principal: str, scope: str, right: str) -> int:
        """Remove matching grant records; returns how many were removed."""
        with self.lock:
            ct = self.db.ctransaction()
            removed = 0
            try:
                handle = ct.write_collection(POLICY)
                indexer = self.db.collection_store.indexer(
                    index_name(POLICY, "principal")
                )
                iterator = handle.query_match(indexer, principal)
                try:
                    while not iterator.end():
                        row = iterator.read().deref().value
                        if row.get("scope") == scope and row.get("right") == right:
                            iterator.delete()
                            removed += 1
                        iterator.next()
                finally:
                    iterator.close()
                ct.commit(durable=True)
            except BaseException:
                if ct.active:
                    ct.abort()
                raise
            self.policy_cache = None
            return removed

    def load_policy(self) -> Dict[str, List]:
        """The tenant's grants as ``{principal: [(scope, right), ...]}``.

        Cached; the cache is dropped on every wire commit of this tenant
        and on grant/revoke, so a revocation takes effect on the next
        transaction at the latest.
        """
        with self.lock:
            if self.policy_cache is not None:
                return self.policy_cache
            ct = self.db.ctransaction()
            try:
                rows = self._rows(ct, POLICY, "principal")
            finally:
                ct.abort()
            grants: Dict[str, List] = {}
            for row in rows:
                grants.setdefault(str(row.get("principal")), []).append(
                    (str(row.get("scope")), str(row.get("right")))
                )
            self.policy_cache = grants
            return grants

    # ------------------------------------------------------------------
    # Audit and metering
    # ------------------------------------------------------------------

    def audit_event(
        self,
        event: str,
        principal: Optional[str] = None,
        detail: Optional[Dict[str, Any]] = None,
        durable: bool = True,
    ) -> Dict[str, Any]:
        """Durably append one record to the tenant's ``_audit`` collection."""
        with self.lock:
            record = {
                "seq": self.audit_seq,
                "ts": time.time(),
                "event": event,
                "principal": principal,
                "detail": detail or {},
            }
            ct = self.db.ctransaction()
            try:
                ct.write_collection(AUDIT).insert(TenancyRecord(record))
                ct.commit(durable=durable)
            except BaseException:
                if ct.active:
                    ct.abort()
                raise
            self.audit_seq += 1
            return record

    def quota_trip(self, principal: Optional[str], kind: str) -> None:
        """Audit a quota refusal, rate-limited to one record per second
        so a hostile storm cannot turn the audit trail into the attack."""
        now = time.monotonic()
        with self.lock:
            if now - self._last_quota_audit < 1.0:
                return
            self._last_quota_audit = now
        try:
            self.audit_event("quota", principal, {"kind": kind})
        except TDBError:
            pass

    def record_commit(self, principal: Optional[str], txn_bytes: int) -> None:
        """Meter one committed wire transaction and invalidate the policy
        cache (grants written through data verbs become visible)."""
        with self.lock:
            self.meter_commits += 1
            self.meter_bytes += txn_bytes
            self._meter_dirty += 1
            self.policy_cache = None
            if self._meter_dirty >= self.meter_flush_every:
                self.flush_meter()
                self.audit_event(
                    "commits",
                    principal,
                    {"commits": self.meter_commits, "bytes": self.meter_bytes},
                )

    def flush_meter(self) -> None:
        """Write the cumulative meter counters back to the durable meter
        object (no-op when clean)."""
        with self.lock:
            if self._meter_dirty == 0 or self._meter_oid is None:
                return
            txn = self.db.transaction()
            try:
                ref = txn.open_writable(self._meter_oid, TenancyRecord)
                ref.deref().value = {
                    "commits": self.meter_commits,
                    "bytes": self.meter_bytes,
                }
                txn.commit(durable=True)
            except BaseException:
                if txn.active:
                    txn.abort()
                raise
            self._meter_dirty = 0


class TenantRegistry:
    """Lazily opens tenants, bounds resident handles, evicts by LRU."""

    def __init__(
        self,
        root: str,
        max_open: int = 8,
        default_quotas: Optional[TenantQuotas] = None,
        chunk_config: Optional[ChunkStoreConfig] = None,
        meter_flush_every: int = 16,
    ) -> None:
        if max_open < 1:
            raise TenancyError("max_open must be at least 1")
        self.root = os.path.abspath(root)
        self.tenants_dir = os.path.join(self.root, "tenants")
        self.max_open = max_open
        self.default_quotas = default_quotas or TenantQuotas()
        self.chunk_config = chunk_config
        self.meter_flush_every = meter_flush_every
        self._lock = threading.RLock()
        self._states: Dict[str, TenantState] = {}
        self._ticks = itertools.count(1)
        self.opened_total = 0
        self.evicted_total = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------

    def tenant_dir(self, name: str) -> str:
        return os.path.join(self.tenants_dir, validate_tenant_name(name))

    def exists(self, name: str) -> bool:
        return os.path.isfile(os.path.join(self.tenant_dir(name), "secret.key"))

    def list(self) -> List[str]:
        if not os.path.isdir(self.tenants_dir):
            return []
        return sorted(
            entry
            for entry in os.listdir(self.tenants_dir)
            if _NAME_RE.match(entry) and self.exists(entry)
        )

    # ------------------------------------------------------------------
    # Creation
    # ------------------------------------------------------------------

    def create(self, name: str, quotas: Optional[TenantQuotas] = None) -> None:
        """Create a tenant database with its reserved collections."""
        directory = self.tenant_dir(name)
        if self.exists(name):
            raise TenancyError(f"tenant {name!r} already exists")
        quotas = quotas or self.default_quotas
        db = Database.create(directory, chunk_config=self.chunk_config)
        try:
            prepare_database(db)
            with db.ctransaction() as ct:
                for indexer in control_plane_indexers():
                    ct.create_collection(indexer.name.split(":", 2)[1], indexer)
            with db.transaction() as txn:
                meter_oid = txn.insert(TenancyRecord({"commits": 0, "bytes": 0}))
                txn.bind_name(METER_NAME, meter_oid)
                meta_oid = txn.insert(
                    TenancyRecord(
                        {
                            "name": name,
                            "quotas": quotas.as_dict(),
                            "created": time.time(),
                        }
                    )
                )
                txn.bind_name(META_NAME, meta_oid)
        finally:
            db.close()

    # ------------------------------------------------------------------
    # Residency
    # ------------------------------------------------------------------

    def acquire(self, name: str) -> TenantState:
        """The resident state for ``name``, opening (and possibly
        evicting another tenant) as needed.  Bumps the LRU clock."""
        validate_tenant_name(name)
        with self._lock:
            if self._closed:
                raise TenancyError("tenant registry is closed")
            state = self._states.get(name)
            if state is None:
                if not self.exists(name):
                    raise TenancyError(f"unknown tenant {name!r}")
                db = Database.open_existing(
                    self.tenant_dir(name), chunk_config=self.chunk_config
                )
                try:
                    prepare_database(db)
                    state = TenantState(
                        name, db, self.default_quotas, self.meter_flush_every
                    )
                except BaseException:
                    db.close()
                    raise
                self._states[name] = state
                self.opened_total += 1
                self._evict_over_budget(keep=name)
            state.last_used = next(self._ticks)
            return state

    def peek(self, name: str) -> Optional[TenantState]:
        with self._lock:
            return self._states.get(name)

    def lease(self, state: TenantState) -> None:
        with self._lock:
            state.leases += 1

    def unlease(self, state: TenantState) -> None:
        with self._lock:
            state.leases = max(0, state.leases - 1)

    def using(self, name: str):
        """Context manager: acquire ``name`` under a short-lived lease so
        eviction cannot close the database mid-operation."""
        return _Leased(self, name)

    def _evict_over_budget(self, keep: Optional[str] = None) -> None:
        while len(self._states) > self.max_open:
            candidates = [
                state
                for state in self._states.values()
                if state.leases == 0 and state.name != keep
            ]
            if not candidates:
                return  # every tenant is pinned: soft-exceed the budget
            victim = min(candidates, key=lambda state: state.last_used)
            del self._states[victim.name]
            self.evicted_total += 1
            self._close_state(victim)

    @staticmethod
    def _close_state(state: TenantState) -> None:
        try:
            state.flush_meter()
        except TDBError:
            pass
        state.db.close()

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            states = list(self._states.values())
            self._states.clear()
        for state in states:
            self._close_state(state)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "open": len(self._states),
                "max_open": self.max_open,
                "opened_total": self.opened_total,
                "evicted_total": self.evicted_total,
                "tenants": {
                    name: {
                        "leases": state.leases,
                        "sessions": state.quota.sessions,
                        "audit_records": state.audit_seq,
                    }
                    for name, state in self._states.items()
                },
            }


class _Leased:
    __slots__ = ("_registry", "_name", "_state")

    def __init__(self, registry: TenantRegistry, name: str) -> None:
        self._registry = registry
        self._name = name
        self._state = None

    def __enter__(self) -> TenantState:
        with self._registry._lock:
            state = self._registry.acquire(self._name)
            self._registry.lease(state)
            self._state = state
        return state

    def __exit__(self, *exc_info) -> None:
        if self._state is not None:
            self._registry.unlease(self._state)
            self._state = None
