"""TenancyHub: the control plane both server frontends share.

The hub owns the :class:`~repro.tenancy.registry.TenantRegistry` and
exposes everything a frontend needs, in frontend-neutral terms:

- ``begin_auth`` / ``finish_auth`` / ``release`` — the HMAC
  challenge–response and the session lease it produces.
- ``check`` — policy gate for one data verb (deny-by-default).
- ``grant`` / ``revoke`` / ``meter`` — the ``tenant.*`` verbs.
- ``on_begin`` / ``on_commit_start`` / ``on_commit_end`` — quota hooks
  the transaction lifecycle threads through (token bucket at begin,
  pending-commit and stored-bytes budgets around commit, durable
  metering after).
- ``session_db`` — the tenant's database for the threaded frontend.
- ``read_reserved`` — reserved-collection reads for the sharded
  frontend, whose data plane lives in the shards while the control
  plane stays in the tenant's hub database.

Authentication protocol: the first ``auth`` call (no ``proof``) makes
the hub look up the principal's secret and mint a single-use random
challenge; the reply carries only the challenge.  The second call
proves possession with ``HMAC-SHA256(secret, challenge-bytes)`` in hex.
The pending challenge is consumed by the *attempt*, success or not, so
replaying an observed exchange fails closed.  Every failure mode —
unknown tenant, unknown principal, wrong key, missing or stale
challenge — raises the same :class:`~repro.errors.AuthFailedError`
with the same message: the hub is not a tenant-name oracle.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import secrets as _secrets
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.config import ChunkStoreConfig
from repro.errors import (
    AuthFailedError,
    PermissionDeniedError,
    ProtocolError,
    QuotaExceededError,
    TDBError,
    TenancyError,
)
from repro.tenancy import policy as _policy
from repro.tenancy.quotas import TenantQuotas
from repro.tenancy.registry import TenantRegistry, TenantState

__all__ = ["Identity", "TenancyHub", "value_bytes", "compute_proof"]


@dataclass(frozen=True)
class Identity:
    """The ``(tenant, principal)`` a session is bound to after ``auth``."""

    tenant: str
    principal: str


def value_bytes(request: Dict[str, Any]) -> int:
    """Accounting size of one mutating data verb.

    The stored-bytes quota is accounting-based: the JSON size of the
    payload the verb carried.  It is the one currency both frontends
    can measure identically — the sharded front door never sees the
    tenant's chunk store, so physical bytes cannot be shared ground.
    Verbs without a payload (``name.bind``, ``obj.remove``) cost a
    small flat fee for their metadata write.
    """
    if "value" not in request:
        return 16
    try:
        return len(json.dumps(request["value"], separators=(",", ":")))
    except (TypeError, ValueError):
        return 16


def compute_proof(secret_hex: str, challenge_hex: str) -> str:
    """The client-side half of the challenge–response."""
    return hmac.new(
        bytes.fromhex(secret_hex), bytes.fromhex(challenge_hex), hashlib.sha256
    ).hexdigest()


class TenancyHub:
    """The multi-tenant control plane (thread-safe; frontend-neutral)."""

    def __init__(
        self,
        root: str,
        max_open: int = 8,
        default_quotas: Optional[TenantQuotas] = None,
        chunk_config: Optional[ChunkStoreConfig] = None,
        meter_flush_every: int = 16,
    ) -> None:
        from repro.server.verbs import VerbExecutor

        self.registry = TenantRegistry(
            root,
            max_open=max_open,
            default_quotas=default_quotas,
            chunk_config=chunk_config,
            meter_flush_every=meter_flush_every,
        )
        self._executor = VerbExecutor()

    # ------------------------------------------------------------------
    # Tenant administration (CLI and wire)
    # ------------------------------------------------------------------

    def create_tenant(
        self,
        name: str,
        quotas: Optional[TenantQuotas] = None,
        admin: Optional[str] = "admin",
    ) -> Dict[str, Any]:
        """Create a tenant; with ``admin`` set, also create that
        principal with a wildcard admin grant and return its secret."""
        self.registry.create(name, quotas)
        result: Dict[str, Any] = {"tenant": name}
        if admin:
            _policy.validate_grant(admin, _policy.WILDCARD_SCOPE, "admin")
            with self.registry.using(name) as state:
                secret, _created = state.upsert_principal(admin)
                state.insert_grant(admin, _policy.WILDCARD_SCOPE, "admin")
                state.audit_event(
                    "grant",
                    None,
                    {
                        "principal": admin,
                        "scope": _policy.WILDCARD_SCOPE,
                        "right": "admin",
                        "via": "create",
                    },
                )
            result["admin"] = admin
            result["secret"] = secret
        return result

    def list_tenants(self) -> list:
        return self.registry.list()

    # ------------------------------------------------------------------
    # Authentication
    # ------------------------------------------------------------------

    def begin_auth(self, tenant: str, principal: str) -> Dict[str, Any]:
        """Phase one: mint a single-use challenge for the principal.

        The returned dict is the session's pending-auth state; only its
        ``challenge`` field may go on the wire.
        """
        if not isinstance(tenant, str) or not isinstance(principal, str):
            raise ProtocolError("tenant and principal must be strings")
        secret = None
        try:
            with self.registry.using(tenant) as state:
                secret = state.read_principal_secret(principal)
                if secret is None:
                    state.audit_event(
                        "auth.fail", principal, {"stage": "challenge"}
                    )
        except AuthFailedError:
            raise
        except TenancyError as exc:
            raise AuthFailedError("authentication failed") from exc
        if secret is None:
            raise AuthFailedError("authentication failed")
        return {
            "tenant": tenant,
            "principal": principal,
            "secret": secret,
            "challenge": _secrets.token_hex(16),
        }

    def finish_auth(self, pending: Dict[str, Any], proof: Any) -> Identity:
        """Phase two: verify the proof, enforce the session quota, lease
        the tenant, and audit the outcome."""
        tenant = pending["tenant"]
        principal = pending["principal"]
        try:
            expected = compute_proof(pending["secret"], pending["challenge"])
            ok = isinstance(proof, str) and hmac.compare_digest(
                expected, proof.lower()
            )
        except (ValueError, TypeError):
            ok = False
        if not ok:
            try:
                with self.registry.using(tenant) as state:
                    state.audit_event(
                        "auth.fail", principal, {"stage": "proof"}
                    )
            except TDBError:
                pass
            raise AuthFailedError("authentication failed")
        state = self.registry.acquire(tenant)
        try:
            state.quota.admit_session()
        except QuotaExceededError as exc:
            state.quota_trip(principal, getattr(exc, "kind", "sessions"))
            raise
        try:
            self.registry.lease(state)
            state.audit_event("auth", principal)
        except BaseException:
            state.quota.release_session()
            self.registry.unlease(state)
            raise
        return Identity(tenant, principal)

    def release(self, identity: Identity) -> None:
        """Drop the session lease and quota slot (memory-only; safe to
        call during shutdown after the registry closed the tenant)."""
        state = self.registry.peek(identity.tenant)
        if state is None:
            return
        state.quota.release_session()
        self.registry.unlease(state)

    # ------------------------------------------------------------------
    # Policy
    # ------------------------------------------------------------------

    def check(self, identity: Identity, op: str, request: Dict[str, Any]) -> None:
        """Gate one data verb; raises PermissionDeniedError on refusal."""
        scope, right = _policy.required_access(op, request)
        with self.registry.using(identity.tenant) as state:
            grants = state.load_policy().get(identity.principal, ())
        _policy.check(grants, identity.principal, scope, right)

    def grant(
        self, identity: Identity, principal: str, scope: str, right: str
    ) -> Dict[str, Any]:
        """Wire ``tenant.grant``: admin-gated; auto-creates the target
        principal (its secret is returned exactly once, on creation)."""
        _policy.validate_grant(principal, scope, right)
        with self.registry.using(identity.tenant) as state:
            self._require_admin(state, identity)
            secret, created = state.upsert_principal(principal)
            granted = state.insert_grant(principal, scope, right)
            state.audit_event(
                "grant",
                identity.principal,
                {
                    "principal": principal,
                    "scope": scope,
                    "right": right,
                    "created_principal": created,
                },
            )
            result = {
                "tenant": identity.tenant,
                "principal": principal,
                "scope": scope,
                "right": right,
                "granted": granted,
                "created_principal": created,
            }
            if created:
                result["secret"] = secret
            return result

    def revoke(
        self, identity: Identity, principal: str, scope: str, right: str
    ) -> Dict[str, Any]:
        """Wire ``tenant.revoke``: admin-gated; effective next txn (the
        policy cache is dropped here and on every commit)."""
        _policy.validate_grant(principal, scope, right)
        with self.registry.using(identity.tenant) as state:
            self._require_admin(state, identity)
            removed = state.revoke_grants(principal, scope, right)
            state.audit_event(
                "revoke",
                identity.principal,
                {
                    "principal": principal,
                    "scope": scope,
                    "right": right,
                    "removed": removed,
                },
            )
            return {
                "tenant": identity.tenant,
                "principal": principal,
                "scope": scope,
                "right": right,
                "removed": removed,
            }

    def grant_offline(
        self, tenant: str, principal: str, scope: str, right: str
    ) -> Dict[str, Any]:
        """CLI grant: no admin gate (the operator owns the root dir)."""
        _policy.validate_grant(principal, scope, right)
        with self.registry.using(tenant) as state:
            secret, created = state.upsert_principal(principal)
            granted = state.insert_grant(principal, scope, right)
            state.audit_event(
                "grant",
                None,
                {
                    "principal": principal,
                    "scope": scope,
                    "right": right,
                    "created_principal": created,
                    "via": "cli",
                },
            )
            result = {
                "tenant": tenant,
                "principal": principal,
                "scope": scope,
                "right": right,
                "granted": granted,
                "created_principal": created,
            }
            if created:
                result["secret"] = secret
            return result

    def revoke_offline(
        self, tenant: str, principal: str, scope: str, right: str
    ) -> Dict[str, Any]:
        _policy.validate_grant(principal, scope, right)
        with self.registry.using(tenant) as state:
            removed = state.revoke_grants(principal, scope, right)
            state.audit_event(
                "revoke",
                None,
                {
                    "principal": principal,
                    "scope": scope,
                    "right": right,
                    "removed": removed,
                    "via": "cli",
                },
            )
            return {
                "tenant": tenant,
                "principal": principal,
                "scope": scope,
                "right": right,
                "removed": removed,
            }

    @staticmethod
    def _require_admin(state: TenantState, identity: Identity) -> None:
        grants = state.load_policy().get(identity.principal, ())
        if not _policy.grants_allow(grants, _policy.WILDCARD_SCOPE, "admin"):
            raise PermissionDeniedError(
                "tenant administration requires the 'admin' right on "
                "scope '*'"
            )

    # ------------------------------------------------------------------
    # Quota hooks (transaction lifecycle)
    # ------------------------------------------------------------------

    def on_begin(self, identity: Identity) -> None:
        """Charge the tenant's txn/s token bucket for one ``begin``."""
        with self.registry.using(identity.tenant) as state:
            try:
                state.quota.take_txn_token()
            except QuotaExceededError as exc:
                state.quota_trip(
                    identity.principal, getattr(exc, "kind", "txn_rate")
                )
                raise

    def on_commit_start(self, identity: Identity, txn_bytes: int) -> None:
        """Enforce the pending-commit and stored-bytes budgets."""
        with self.registry.using(identity.tenant) as state:
            try:
                state.quota.begin_commit(txn_bytes)
            except QuotaExceededError as exc:
                state.quota_trip(
                    identity.principal, getattr(exc, "kind", "pending")
                )
                raise

    def on_commit_end(
        self, identity: Identity, txn_bytes: int, committed: bool
    ) -> None:
        """Settle the commit: release the pending slot, and on success
        meter it durably and invalidate the tenant's policy cache."""
        with self.registry.using(identity.tenant) as state:
            state.quota.end_commit(txn_bytes, committed)
            if committed:
                state.record_commit(identity.principal, txn_bytes)

    # ------------------------------------------------------------------
    # Data-plane access
    # ------------------------------------------------------------------

    def session_db(self, identity: Identity):
        """The tenant's database (threaded frontend data plane).  The
        session's lease — taken at ``finish_auth`` — pins it open."""
        return self.registry.acquire(identity.tenant).db

    def read_reserved(
        self, identity: Identity, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Serve a reserved-collection read for the sharded frontend.

        The shards hold only the tenants' data plane; ``_audit`` and
        friends live in the tenant's hub database, so the front door
        routes reserved ``col.get`` / ``col.iterate`` here.  Runs in a
        throwaway read-only collection transaction.
        """
        op = request.get("op")
        if op not in ("col.get", "col.iterate"):
            raise PermissionDeniedError(
                f"reserved collections are read-only over the wire ({op!r})"
            )
        with self.registry.using(identity.tenant) as state:
            with state.lock:
                ct = state.db.ctransaction()
                try:
                    return self._executor.execute(
                        state.db, request, ct, "collection"
                    )
                finally:
                    ct.abort()

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def meter(self, tenant: str) -> Dict[str, Any]:
        """Quota configuration, live usage, cumulative meter, and audit
        length for one tenant (the ``tenant.meter`` verb and the CLI)."""
        with self.registry.using(tenant) as state:
            usage = state.quota.usage()
            with state.lock:
                usage["commits"] = state.meter_commits
                usage["metered_bytes"] = state.meter_bytes
                audit_records = state.audit_seq
            return {
                "tenant": tenant,
                "quotas": state.quota.quotas.as_dict(),
                "usage": usage,
                "audit_records": audit_records,
            }

    def stats(self) -> Dict[str, Any]:
        return {"root": self.registry.root, **self.registry.stats()}

    def close(self) -> None:
        self.registry.close()

    def __enter__(self) -> "TenancyHub":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
