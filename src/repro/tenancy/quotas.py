"""Per-tenant quotas: limits and their in-memory enforcement state.

Four budgets, all per tenant (ISSUE: "sessions, pending commits, stored
bytes, txn/s token bucket"):

``max_sessions``
    Concurrent authenticated sessions.  Checked when the ``auth``
    challenge–response succeeds — an attacker who cannot authenticate
    cannot consume this budget.
``max_pending_commits``
    Commits in flight at once.  Checked at commit start, released when
    the commit settles either way — the tenant-scoped analogue of the
    server-wide backpressure gate.
``max_bytes``
    Cumulative committed payload bytes, *accounting-based*: each
    transaction's cost is the JSON size of the values its mutating verbs
    carried, identical on the threaded and the sharded path (the sharded
    front door never sees the tenant's chunk store, so physical size
    cannot be the common currency).  Restored from the durable meter on
    tenant open.
``txn_rate``
    A token bucket refilled at ``txn_rate`` tokens/second with
    ``burst`` capacity; every ``begin`` takes one token.

A limit of 0 (or 0.0) disables that budget.  Every refusal raises
:class:`~repro.errors.QuotaExceededError` — a ``ServerBusyError``
subclass, hence marshalled transient: clients back off and retry, and a
tenant saturating its own budget degrades only itself.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict

from repro.errors import ConfigError, QuotaExceededError

__all__ = ["TenantQuotas", "QuotaState"]


@dataclass(frozen=True)
class TenantQuotas:
    """The configured limits of one tenant (0 disables a budget)."""

    max_sessions: int = 16
    max_pending_commits: int = 8
    max_bytes: int = 64 * 1024 * 1024
    txn_rate: float = 0.0
    burst: int = 0

    def __post_init__(self) -> None:
        for name in ("max_sessions", "max_pending_commits", "max_bytes", "burst"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 0:
                raise ConfigError(f"{name} must be a non-negative integer")
        if not isinstance(self.txn_rate, (int, float)) or self.txn_rate < 0:
            raise ConfigError("txn_rate must be a non-negative number")

    def as_dict(self) -> Dict[str, Any]:
        return {
            "max_sessions": self.max_sessions,
            "max_pending_commits": self.max_pending_commits,
            "max_bytes": self.max_bytes,
            "txn_rate": self.txn_rate,
            "burst": self.burst,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TenantQuotas":
        fields = {}
        for name in ("max_sessions", "max_pending_commits", "max_bytes", "burst"):
            if name in data:
                fields[name] = int(data[name])
        if "txn_rate" in data:
            fields["txn_rate"] = float(data["txn_rate"])
        return cls(**fields)

    @property
    def bucket_capacity(self) -> float:
        if self.txn_rate <= 0:
            return 0.0
        return float(self.burst) if self.burst > 0 else float(
            max(1, math.ceil(self.txn_rate))
        )


class QuotaState:
    """In-memory enforcement state for one open tenant.

    Thread-safe; refusals raise :class:`QuotaExceededError` with a
    ``kind`` attribute (``"sessions"`` / ``"pending"`` / ``"bytes"`` /
    ``"txn_rate"``) so the caller can audit which budget tripped.
    """

    def __init__(
        self,
        quotas: TenantQuotas,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.quotas = quotas
        self._clock = clock
        self._lock = threading.Lock()
        self.sessions = 0
        self.pending = 0
        self.bytes_committed = 0
        self._tokens = quotas.bucket_capacity
        self._stamp = clock()
        self.trips: Dict[str, int] = {
            "sessions": 0, "pending": 0, "bytes": 0, "txn_rate": 0,
        }

    @staticmethod
    def _refuse(kind: str, message: str) -> QuotaExceededError:
        exc = QuotaExceededError(message)
        exc.kind = kind
        return exc

    # -- sessions ----------------------------------------------------------

    def admit_session(self) -> None:
        limit = self.quotas.max_sessions
        with self._lock:
            if limit and self.sessions >= limit:
                self.trips["sessions"] += 1
                raise self._refuse(
                    "sessions",
                    f"tenant session quota exhausted ({limit} concurrent)",
                )
            self.sessions += 1

    def release_session(self) -> None:
        with self._lock:
            self.sessions = max(0, self.sessions - 1)

    # -- txn/s token bucket ------------------------------------------------

    def take_txn_token(self) -> None:
        rate = self.quotas.txn_rate
        if rate <= 0:
            return
        capacity = self.quotas.bucket_capacity
        with self._lock:
            now = self._clock()
            self._tokens = min(
                capacity, self._tokens + (now - self._stamp) * rate
            )
            self._stamp = now
            if self._tokens < 1.0:
                self.trips["txn_rate"] += 1
                raise self._refuse(
                    "txn_rate",
                    f"tenant transaction-rate quota exhausted ({rate}/s)",
                )
            self._tokens -= 1.0

    # -- commits -----------------------------------------------------------

    def begin_commit(self, txn_bytes: int) -> None:
        q = self.quotas
        with self._lock:
            if q.max_pending_commits and self.pending >= q.max_pending_commits:
                self.trips["pending"] += 1
                raise self._refuse(
                    "pending",
                    "tenant pending-commit quota exhausted "
                    f"({q.max_pending_commits} in flight)",
                )
            if q.max_bytes and self.bytes_committed + txn_bytes > q.max_bytes:
                self.trips["bytes"] += 1
                raise self._refuse(
                    "bytes",
                    f"tenant stored-bytes quota exhausted ({q.max_bytes} bytes)",
                )
            self.pending += 1

    def end_commit(self, txn_bytes: int, committed: bool) -> None:
        with self._lock:
            self.pending = max(0, self.pending - 1)
            if committed:
                self.bytes_committed += txn_bytes

    # -- introspection -----------------------------------------------------

    def usage(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "sessions": self.sessions,
                "pending_commits": self.pending,
                "bytes_committed": self.bytes_committed,
                "trips": dict(self.trips),
            }
