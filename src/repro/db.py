"""Top-level database facade: the whole TDB stack in one object.

Most applications want the full stack — chunk store, object store,
collection store, backups — wired together with one shared cache and one
secret.  :class:`Database` does exactly that::

    from repro import Database

    db = Database.create("/path/to/dbdir")         # file-backed, secure
    db = Database.open_existing("/path/to/dbdir")  # after a restart
    db = Database.in_memory()                      # tests and demos

    db.register_class(Meter)
    with db.transaction() as txn:                  # object-level work
        oid = txn.insert(Meter())

    db.register_indexer(my_indexer)
    with db.ctransaction() as ct:                  # collection-level work
        handle = ct.create_collection("profile", my_indexer)

    backups = db.backup_store()                    # full/incremental backups
    db.close()

The file layout under the directory is::

    data/        untrusted store (log segments + master records)
    archive/     archival store (backup streams)
    counter      one-way counter file
    secret.key   the device secret

A real DRM deployment keeps ``secret.key`` and ``counter`` in trusted
hardware; on a development machine they live next to the data for
convenience, which obviously voids the threat model — see README.
"""

from __future__ import annotations

import os
import threading
from typing import Optional, Type

from repro.backupstore import BackupStore
from repro.cache import SharedLruCache
from repro.chunkstore import ChunkStore
from repro.collectionstore import CollectionStore, CTransaction, Indexer
from repro.config import (
    ChunkStoreConfig,
    CollectionStoreConfig,
    ObjectStoreConfig,
)
from repro.errors import TDBError
from repro.objectstore import ClassRegistry, ObjectStore, Persistent, Transaction
from repro.platform import (
    ArchivalStore,
    FileArchivalStore,
    FileOneWayCounter,
    FileSecretStore,
    FileUntrustedStore,
    MemoryArchivalStore,
    MemoryOneWayCounter,
    MemorySecretStore,
    MemoryUntrustedStore,
    OneWayCounter,
    SecretStore,
    UntrustedStore,
)

__all__ = ["Database"]


class Database:
    """The assembled TDB stack."""

    def __init__(
        self,
        chunk_store: ChunkStore,
        object_store: Optional[ObjectStore],
        collection_store: Optional[CollectionStore],
        archival: ArchivalStore,
    ) -> None:
        self.chunk_store = chunk_store
        self.object_store = object_store
        self.collection_store = collection_store
        self.archival = archival
        self._closed = False
        self._close_lock = threading.Lock()
        self._group_commit = None

    @property
    def salvage(self) -> bool:
        """Whether this database was opened read-only in salvage mode."""
        return self.chunk_store.salvage

    @property
    def read_only(self) -> bool:
        """Whether this database was opened in read-only replica mode."""
        return self.chunk_store.read_only

    @property
    def salvage_info(self):
        """Salvage anomalies (``None`` unless opened with ``salvage=True``)."""
        return self.chunk_store.salvage_info

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def _assemble(
        cls,
        untrusted: UntrustedStore,
        secret: SecretStore,
        counter: OneWayCounter,
        archival: ArchivalStore,
        chunk_config: ChunkStoreConfig,
        object_config: ObjectStoreConfig,
        collection_config: CollectionStoreConfig,
        registry: Optional[ClassRegistry],
        fresh: bool,
        salvage: bool = False,
        read_only: bool = False,
    ) -> "Database":
        cache = SharedLruCache(object_config.cache_bytes)
        if fresh:
            chunk_store = ChunkStore.format(
                untrusted, secret, counter, chunk_config, cache=cache
            )
            object_store = ObjectStore.create(chunk_store, object_config, registry)
        elif salvage:
            chunk_store = ChunkStore.open_salvage(
                untrusted, secret, counter, chunk_config, cache=cache
            )
            # Best effort: the object layer needs its catalog chunk, which
            # the damage may have taken out.  The chunk level stays
            # servable either way.
            try:
                object_store = ObjectStore.attach(
                    chunk_store, object_config, registry
                )
            except TDBError:
                object_store = None
        else:
            chunk_store = ChunkStore.open(
                untrusted,
                secret,
                counter,
                chunk_config,
                cache=cache,
                read_only=read_only,
            )
            object_store = ObjectStore.attach(chunk_store, object_config, registry)
        collection_store = (
            CollectionStore(object_store, collection_config)
            if object_store is not None
            else None
        )
        return cls(chunk_store, object_store, collection_store, archival)

    @classmethod
    def create(
        cls,
        directory: str,
        chunk_config: Optional[ChunkStoreConfig] = None,
        object_config: Optional[ObjectStoreConfig] = None,
        collection_config: Optional[CollectionStoreConfig] = None,
        registry: Optional[ClassRegistry] = None,
    ) -> "Database":
        """Create a new file-backed database under ``directory``."""
        parts = cls._file_parts(directory, create_secret=True)
        return cls._assemble(
            *parts,
            chunk_config or ChunkStoreConfig(),
            object_config or ObjectStoreConfig(),
            collection_config or CollectionStoreConfig(),
            registry,
            fresh=True,
        )

    @classmethod
    def open_existing(
        cls,
        directory: str,
        chunk_config: Optional[ChunkStoreConfig] = None,
        object_config: Optional[ObjectStoreConfig] = None,
        collection_config: Optional[CollectionStoreConfig] = None,
        registry: Optional[ClassRegistry] = None,
        salvage: bool = False,
    ) -> "Database":
        """Open (and crash-recover) a file-backed database.

        With ``salvage=True`` a damaged store is opened *read-only*, best
        effort: every chunk whose Merkle path still verifies is served,
        the rest keep raising on access and are enumerated by
        :meth:`scrub`; anomalies (counter skew, discarded log suffix)
        are reported in :attr:`salvage_info` instead of raising.
        """
        parts = cls._file_parts(directory, create_secret=False)
        return cls._assemble(
            *parts,
            chunk_config or ChunkStoreConfig(),
            object_config or ObjectStoreConfig(),
            collection_config or CollectionStoreConfig(),
            registry,
            fresh=False,
            salvage=salvage,
        )

    @classmethod
    def in_memory(
        cls,
        chunk_config: Optional[ChunkStoreConfig] = None,
        object_config: Optional[ObjectStoreConfig] = None,
        collection_config: Optional[CollectionStoreConfig] = None,
        registry: Optional[ClassRegistry] = None,
        secret: bytes = b"in-memory-demo-secret-0123456789",
    ) -> "Database":
        """Build a throwaway in-memory database (tests, examples)."""
        return cls._assemble(
            MemoryUntrustedStore(),
            MemorySecretStore(secret),
            MemoryOneWayCounter(),
            MemoryArchivalStore(),
            chunk_config or ChunkStoreConfig(),
            object_config or ObjectStoreConfig(),
            collection_config or CollectionStoreConfig(),
            registry,
            fresh=True,
        )

    @staticmethod
    def _file_parts(directory: str, create_secret: bool):
        directory = os.path.abspath(directory)
        os.makedirs(directory, exist_ok=True)
        untrusted = FileUntrustedStore(os.path.join(directory, "data"))
        secret = FileSecretStore(
            os.path.join(directory, "secret.key"), create=create_secret
        )
        counter = FileOneWayCounter(os.path.join(directory, "counter"))
        archival = FileArchivalStore(os.path.join(directory, "archive"))
        return untrusted, secret, counter, archival

    # ------------------------------------------------------------------
    # Registration conveniences
    # ------------------------------------------------------------------

    def register_class(self, cls: Type[Persistent]) -> Type[Persistent]:
        """Register a persistent class with this database's registry."""
        return self._require_objects().registry.register(cls)

    def register_indexer(self, indexer: Indexer) -> Indexer:
        """Register an indexer (must be repeated after each open)."""
        self._require_objects()
        return self.collection_store.register_indexer(indexer)

    def _require_objects(self) -> ObjectStore:
        if self.object_store is None:
            raise TDBError(
                "the object layer is unavailable: its catalog chunk did not "
                "survive; use scrub()/export_surviving() at the chunk level"
            )
        return self.object_store

    # ------------------------------------------------------------------
    # Work
    # ------------------------------------------------------------------

    def transaction(self) -> Transaction:
        """Begin an object-store transaction."""
        return self._require_objects().transaction()

    def ctransaction(self) -> CTransaction:
        """Begin a collection-store transaction."""
        self._require_objects()
        return self.collection_store.transaction()

    def scrub(self, deep: bool = True):
        """Merkle-verify the whole chunk level; returns a DamageReport.

        ``deep=False`` runs the memo-accelerated incremental scrub (see
        :meth:`~repro.chunkstore.store.ChunkStore.scrub`).
        """
        return self.chunk_store.scrub(deep=deep)

    def export_surviving(self):
        """Scrub and return ``(DamageReport, {chunk_id: plaintext})``."""
        return self.chunk_store.export_surviving()

    def backup_store(self) -> BackupStore:
        """A backup store over this database's archival store and secret."""
        return BackupStore(self.archival, self.chunk_store.secret_store)

    def snapshot(self):
        """Copy-on-write snapshot of the chunk level."""
        return self.chunk_store.snapshot()

    def stats(self):
        """Chunk-store statistics (size, utilization, cleaner counters)."""
        return self.chunk_store.stats()

    def io_stats(self):
        """The untrusted store's :class:`~repro.platform.iostats.IOStats`."""
        return self.chunk_store.untrusted.stats

    def perf_stats(self):
        """The chunk store's :class:`~repro.perf.PerfStats` (crypto kernels)."""
        return self.chunk_store.perf

    # ------------------------------------------------------------------
    # Group commit (service layer)
    # ------------------------------------------------------------------

    @property
    def group_commit(self):
        """The installed group-commit coordinator, or ``None``."""
        return self._group_commit

    def enable_group_commit(
        self,
        max_batch: int = 32,
        max_delay: float = 0.005,
        max_pending: int = 256,
        quorum_seal: bool = True,
    ):
        """Route transaction commits through a group-commit coordinator.

        Concurrent committers are merged into a single chunk-store
        commit: one log append, one durable sync, one counter advance
        for the whole batch (their write sets are disjoint under strict
        2PL).  Returns the installed
        :class:`~repro.server.groupcommit.GroupCommitCoordinator`.
        """
        from repro.server.groupcommit import GroupCommitCoordinator

        if self._group_commit is not None:
            return self._group_commit
        store = self._require_objects()
        coordinator = GroupCommitCoordinator(
            self.chunk_store,
            max_batch=max_batch,
            max_delay=max_delay,
            max_pending=max_pending,
            quorum_seal=quorum_seal,
        )
        store.commit_sink = coordinator.commit
        self._group_commit = coordinator
        return coordinator

    def disable_group_commit(self) -> None:
        """Restore the direct chunk-store commit path."""
        if self._group_commit is None:
            return
        store = self._require_objects()
        self._group_commit.close()
        store.commit_sink = self.chunk_store.commit
        self._group_commit = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close the stack.  Idempotent and safe to call from any thread
        (the service layer closes while sessions are still draining)."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        if self._group_commit is not None:
            self._group_commit.close()
            self._group_commit = None
        if self.collection_store is not None:
            self.collection_store.close()  # closes the whole stack
        else:
            self.chunk_store.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
