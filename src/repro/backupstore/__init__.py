"""The backup store: validated full and incremental backups.

The backup store (section 2 and [23] of the paper) creates backups from
chunk-store snapshots and restores them with validation:

* backups are encrypted and MACed under keys derived from the secret
  store — the archival store is as untrusted as the main store,
* only **valid** backups restore (any modification trips the MAC),
* incremental backups restore only **in the same sequence** they were
  created in, on top of the right predecessor (enforced with per-backup
  UUIDs, sequence numbers, and base-backup links),
* incrementals contain only the chunks that changed, computed by the
  Merkle-diff of two snapshots, so they stay small and can be taken
  often.
"""

from repro.backupstore.stream import BackupHeader, BACKUP_FULL, BACKUP_INCREMENTAL
from repro.backupstore.store import BackupInfo, BackupStore

__all__ = [
    "BackupStore",
    "BackupInfo",
    "BackupHeader",
    "BACKUP_FULL",
    "BACKUP_INCREMENTAL",
]
