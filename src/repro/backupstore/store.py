"""The :class:`BackupStore`: create and restore validated backups.

Creation uses the chunk store's copy-on-write snapshots: a full backup
streams every chunk of one snapshot; an incremental backup retains the
previous snapshot and streams only the Merkle-diff against it.  The
retained snapshot is what makes "compare two location-map snapshots"
cheap (paper section 3.2.1).

Restore validates each stream's MAC, checks that it belongs to the same
database, and enforces the creation order: a full backup first, then its
incrementals chained by base-backup UUID with consecutive sequence
numbers.  The result is a freshly formatted chunk store bound to the
*current* one-way counter value, so a restored database cannot itself be
used as a replay vehicle.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from hmac import compare_digest as hmac_compare
from typing import Dict, List, Optional

from repro.backupstore.stream import (
    BACKUP_FULL,
    BACKUP_INCREMENTAL,
    BackupHeader,
    decode_backup,
    encode_backup,
)
from repro.chunkstore import ChunkStore
from repro.config import ChunkStoreConfig
from repro.crypto.mac import create_mac
from repro.crypto.pool import DigestPool
from repro.errors import BackupError, RestoreSequenceError
from repro.platform.archival import ArchivalStore
from repro.platform.counter import OneWayCounter
from repro.platform.secret import SecretStore
from repro.platform.untrusted import UntrustedStore

__all__ = ["BackupStore", "BackupInfo"]

_ZERO_UUID = b"\x00" * 16


@dataclass(frozen=True)
class BackupInfo:
    """Metadata describing one backup stream."""

    name: str
    backup_type: int
    backup_uuid: bytes
    db_uuid: bytes
    base_uuid: bytes
    sequence: int
    commit_seqno: int
    entry_count: int
    stream_bytes: int

    @property
    def is_full(self) -> bool:
        return self.backup_type == BACKUP_FULL


class BackupStore:
    """Creates and restores backups of one chunk store."""

    def __init__(self, archival: ArchivalStore, secret_store: SecretStore) -> None:
        self.archival = archival
        self.secret_store = secret_store
        self._encryption_key = secret_store.derive_key("tdb-backup-encryption", 16)
        self._mac_key = secret_store.derive_key("tdb-backup-mac", 32)
        self._mac = create_mac(self._mac_key, "sha256")
        self._retained_snapshot = None
        self._last_backup_uuid: Optional[bytes] = None
        self._next_sequence = 1

    # ------------------------------------------------------------------
    # Creation
    # ------------------------------------------------------------------

    def create_full(self, store: ChunkStore, name: str) -> BackupInfo:
        """Stream a full backup of the store's current state."""
        snapshot = store.snapshot()
        try:
            writes = [(cid, snapshot.read(cid)) for cid in snapshot.chunk_ids()]
        except Exception:
            snapshot.release()
            raise
        header = BackupHeader(
            backup_type=BACKUP_FULL,
            backup_uuid=os.urandom(16),
            db_uuid=store._db_uuid,
            base_uuid=_ZERO_UUID,
            sequence=self._next_sequence,
            commit_seqno=snapshot.commit_seqno,
            entry_count=0,
            body_length=0,
        )
        info = self._write_stream(name, header, writes, [])
        self._swap_retained(snapshot)
        self._last_backup_uuid = header.backup_uuid
        self._next_sequence += 1
        return info

    def create_incremental(self, store: ChunkStore, name: str) -> BackupInfo:
        """Stream only the changes since the previous backup.

        Requires a previous :meth:`create_full` or :meth:`create_incremental`
        in this backup store's lifetime (the previous snapshot is retained
        for the Merkle diff).
        """
        if self._retained_snapshot is None or self._last_backup_uuid is None:
            raise BackupError(
                "no base snapshot retained: take a full backup first"
            )
        snapshot = store.snapshot()
        try:
            diff = snapshot.diff_from(self._retained_snapshot)
            writes = [(cid, snapshot.read(cid)) for cid in diff.changed]
            removes = list(diff.removed)
        except Exception:
            snapshot.release()
            raise
        header = BackupHeader(
            backup_type=BACKUP_INCREMENTAL,
            backup_uuid=os.urandom(16),
            db_uuid=store._db_uuid,
            base_uuid=self._last_backup_uuid,
            sequence=self._next_sequence,
            commit_seqno=snapshot.commit_seqno,
            entry_count=0,
            body_length=0,
        )
        info = self._write_stream(name, header, writes, removes)
        self._swap_retained(snapshot)
        self._last_backup_uuid = header.backup_uuid
        self._next_sequence += 1
        return info

    def _swap_retained(self, snapshot) -> None:
        if self._retained_snapshot is not None:
            self._retained_snapshot.release()
        self._retained_snapshot = snapshot

    def close(self) -> None:
        """Release the retained snapshot (stops pinning the store's log)."""
        if self._retained_snapshot is not None:
            self._retained_snapshot.release()
            self._retained_snapshot = None

    def _write_stream(
        self,
        name: str,
        header: BackupHeader,
        writes: List,
        removes: List[int],
    ) -> BackupInfo:
        blob = encode_backup(header, writes, removes, self._encryption_key, self._mac)
        stream = self.archival.create_stream(name)
        try:
            stream.write(blob)
        finally:
            stream.close()
        return BackupInfo(
            name=name,
            backup_type=header.backup_type,
            backup_uuid=header.backup_uuid,
            db_uuid=header.db_uuid,
            base_uuid=header.base_uuid,
            sequence=header.sequence,
            commit_seqno=header.commit_seqno,
            entry_count=len(writes) + len(removes),
            stream_bytes=len(blob),
        )

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def inspect(self, name: str) -> BackupInfo:
        """Validate one stream and return its metadata."""
        header, writes, removes = self._load(name)
        with self.archival.open_stream(name) as stream:
            size = len(stream.read())
        return BackupInfo(
            name=name,
            backup_type=header.backup_type,
            backup_uuid=header.backup_uuid,
            db_uuid=header.db_uuid,
            base_uuid=header.base_uuid,
            sequence=header.sequence,
            commit_seqno=header.commit_seqno,
            entry_count=header.entry_count,
            stream_bytes=size,
        )

    def _load(self, name: str):
        with self.archival.open_stream(name) as stream:
            blob = stream.read()
        return decode_backup(blob, self._encryption_key, self._mac)

    def verify_streams(
        self, names: List[str], pool: Optional["DigestPool"] = None
    ) -> Dict[str, Optional[str]]:
        """Authenticate many backup streams, fanning the MACs over a pool.

        Returns ``{name: None}`` for every stream whose HMAC tag
        verifies and ``{name: reason}`` otherwise.  The backup MAC is
        standard HMAC-SHA256, so a :class:`~repro.crypto.pool.DigestPool`
        can recompute the tags in worker processes; with no pool (or a
        serial one) everything runs in-process.  Streams too short to
        even carry a tag are reported without being dispatched.
        """
        if pool is None:
            pool = DigestPool(max_workers=1)
        results: Dict[str, Optional[str]] = {}
        jobs: List[tuple] = []  # (name, authenticated_region, claimed_tag)
        tag_size = self._mac.tag_size
        for name in names:
            try:
                with self.archival.open_stream(name) as stream:
                    blob = stream.read()
            except Exception as exc:  # noqa: BLE001 - verdict, not control flow
                results[name] = f"{type(exc).__name__}: {exc}"
                continue
            if len(blob) < BackupHeader.size() + tag_size:
                results[name] = "backup stream is too short"
                continue
            jobs.append((name, blob[:-tag_size], blob[-tag_size:]))
        tags = pool.hmac_sha256_many(self._mac_key, [body for _, body, _ in jobs])
        for (name, _, claimed), computed in zip(jobs, tags):
            if hmac_compare(computed, claimed):
                results[name] = None
            else:
                results[name] = "backup stream failed authentication"
        return results

    # ------------------------------------------------------------------
    # Restore
    # ------------------------------------------------------------------

    def load_chain_state(
        self, names_in_order: List[str]
    ) -> "tuple[Dict[int, bytes], bytes]":
        """Validate a backup chain and fold it into one logical state.

        ``names_in_order`` must start with a full backup; each following
        incremental must chain to its predecessor by base-backup UUID
        with consecutive sequence numbers.  Returns the folded
        ``{chunk_id: plaintext}`` state and the database UUID the chain
        belongs to.  Shared by :meth:`restore` and the repair engine's
        selective re-materialization.
        """
        if not names_in_order:
            raise BackupError("a backup chain needs at least one stream")
        state: Dict[int, bytes] = {}
        previous_uuid: Optional[bytes] = None
        previous_sequence: Optional[int] = None
        db_uuid: Optional[bytes] = None
        for position, name in enumerate(names_in_order):
            header, writes, removes = self._load(name)
            if position == 0:
                if header.backup_type != BACKUP_FULL:
                    raise RestoreSequenceError(
                        f"restore must start from a full backup; {name!r} is "
                        "incremental"
                    )
                db_uuid = header.db_uuid
            else:
                if header.backup_type != BACKUP_INCREMENTAL:
                    raise RestoreSequenceError(
                        f"{name!r} is a full backup in the middle of a chain"
                    )
                if header.db_uuid != db_uuid:
                    raise RestoreSequenceError(
                        f"{name!r} belongs to a different database"
                    )
                if header.base_uuid != previous_uuid:
                    raise RestoreSequenceError(
                        f"{name!r} does not chain to the previous backup"
                    )
                if header.sequence != previous_sequence + 1:
                    raise RestoreSequenceError(
                        f"{name!r} is out of sequence: expected "
                        f"{previous_sequence + 1}, found {header.sequence}"
                    )
            for chunk_id, data in writes.items():
                state[chunk_id] = data
            for chunk_id in removes:
                state.pop(chunk_id, None)
            previous_uuid = header.backup_uuid
            previous_sequence = header.sequence
        return state, db_uuid

    def restore(
        self,
        names_in_order: List[str],
        untrusted: UntrustedStore,
        secret_store: SecretStore,
        counter: OneWayCounter,
        config: Optional[ChunkStoreConfig] = None,
    ) -> ChunkStore:
        """Rebuild a chunk store from a full backup plus incrementals.

        ``names_in_order`` must start with a full backup; each following
        incremental must chain to its predecessor (validated against the
        creation sequence).  Returns the restored, open chunk store.
        """
        state, _ = self.load_chain_state(names_in_order)
        store = ChunkStore.format(untrusted, secret_store, counter, config)
        for chunk_id in state:
            store.adopt_chunk_id(chunk_id)
        store.commit(state, durable=True)
        store.checkpoint()
        return store
