"""Backup stream format: framing, encryption, authentication.

A backup stream is::

    header  := magic(8) | version(2) | type(1) | backup_uuid(16) |
               db_uuid(16) | base_uuid(16) | sequence(8) |
               commit_seqno(8) | entry_count(4) | body_len(8)
    body    := CTR-encrypted sequence of entries
    tag     := HMAC-SHA256(header || encrypted_body)

Entries (inside the encrypted body)::

    WRITE  := 0x01 | chunk_id(8) | length(4) | state bytes
    REMOVE := 0x02 | chunk_id(8)

The CTR nonce is derived from the backup UUID, so every backup has a
fresh keystream under the same derived key.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.crypto.mac import Hmac
from repro.crypto.native import best_aes
from repro.crypto.modes import ctr_transform
from repro.errors import BackupError, TamperDetectedError

__all__ = [
    "BACKUP_FULL",
    "BACKUP_INCREMENTAL",
    "BackupHeader",
    "encode_backup",
    "decode_backup",
]

_MAGIC = b"TDBBKUP\x01"
_HEADER = struct.Struct(">8sHB16s16s16sQQIQ")
_WRITE_HEAD = struct.Struct(">BQI")
_REMOVE_HEAD = struct.Struct(">BQ")

BACKUP_FULL = 1
BACKUP_INCREMENTAL = 2

_ENTRY_WRITE = 0x01
_ENTRY_REMOVE = 0x02


@dataclass(frozen=True)
class BackupHeader:
    """Decoded plaintext header of a backup stream."""

    backup_type: int
    backup_uuid: bytes
    db_uuid: bytes
    base_uuid: bytes
    sequence: int
    commit_seqno: int
    entry_count: int
    body_length: int

    def encode(self) -> bytes:
        return _HEADER.pack(
            _MAGIC,
            1,
            self.backup_type,
            self.backup_uuid,
            self.db_uuid,
            self.base_uuid,
            self.sequence,
            self.commit_seqno,
            self.entry_count,
            self.body_length,
        )

    @classmethod
    def decode(cls, data: bytes) -> "BackupHeader":
        try:
            (
                magic,
                version,
                backup_type,
                backup_uuid,
                db_uuid,
                base_uuid,
                sequence,
                commit_seqno,
                entry_count,
                body_length,
            ) = _HEADER.unpack_from(data, 0)
        except struct.error as exc:
            raise BackupError(f"malformed backup header: {exc}") from exc
        if magic != _MAGIC:
            raise BackupError("not a TDB backup stream (bad magic)")
        if version != 1:
            raise BackupError(f"unsupported backup format version {version}")
        if backup_type not in (BACKUP_FULL, BACKUP_INCREMENTAL):
            raise BackupError(f"unknown backup type {backup_type}")
        return cls(
            backup_type=backup_type,
            backup_uuid=backup_uuid,
            db_uuid=db_uuid,
            base_uuid=base_uuid,
            sequence=sequence,
            commit_seqno=commit_seqno,
            entry_count=entry_count,
            body_length=body_length,
        )

    @classmethod
    def size(cls) -> int:
        return _HEADER.size


def _keystream_cipher(key: bytes):
    # CTR keystream bytes are identical under every AES engine, so the
    # wire format is stable; pick the fastest one available.
    return best_aes(key[:16])


def encode_backup(
    header_fields: BackupHeader,
    writes: List[Tuple[int, bytes]],
    removes: List[int],
    encryption_key: bytes,
    mac: Hmac,
) -> bytes:
    """Serialize, encrypt, and authenticate one backup stream."""
    parts = []
    for chunk_id, state in writes:
        parts.append(_WRITE_HEAD.pack(_ENTRY_WRITE, chunk_id, len(state)))
        parts.append(state)
    for chunk_id in removes:
        parts.append(_REMOVE_HEAD.pack(_ENTRY_REMOVE, chunk_id))
    body = b"".join(parts)
    encrypted = ctr_transform(
        _keystream_cipher(encryption_key), body, header_fields.backup_uuid[:12]
    )
    header = BackupHeader(
        backup_type=header_fields.backup_type,
        backup_uuid=header_fields.backup_uuid,
        db_uuid=header_fields.db_uuid,
        base_uuid=header_fields.base_uuid,
        sequence=header_fields.sequence,
        commit_seqno=header_fields.commit_seqno,
        entry_count=len(writes) + len(removes),
        body_length=len(encrypted),
    ).encode()
    tag = mac.tag(header + encrypted)
    return header + encrypted + tag


def decode_backup(
    blob: bytes, encryption_key: bytes, mac: Hmac
) -> Tuple[BackupHeader, Dict[int, bytes], Set[int]]:
    """Validate and decrypt one backup stream.

    Returns ``(header, writes, removes)``.  Raises
    :class:`TamperDetectedError` when the stream fails authentication and
    :class:`BackupError` when it is structurally broken.
    """
    if len(blob) < BackupHeader.size() + mac.tag_size:
        raise BackupError("backup stream is too short")
    header = BackupHeader.decode(blob)
    body_end = BackupHeader.size() + header.body_length
    if len(blob) != body_end + mac.tag_size:
        raise BackupError(
            f"backup stream length mismatch: {len(blob)} bytes, "
            f"expected {body_end + mac.tag_size}"
        )
    authenticated = blob[:body_end]
    tag = blob[body_end:]
    if not mac.verify(authenticated, tag):
        raise TamperDetectedError("backup stream failed authentication")
    encrypted = blob[BackupHeader.size():body_end]
    body = ctr_transform(
        _keystream_cipher(encryption_key), encrypted, header.backup_uuid[:12]
    )
    writes: Dict[int, bytes] = {}
    removes: Set[int] = set()
    offset = 0
    for _ in range(header.entry_count):
        if offset >= len(body):
            raise BackupError("backup body ends before all entries were read")
        entry_kind = body[offset]
        if entry_kind == _ENTRY_WRITE:
            try:
                _, chunk_id, length = _WRITE_HEAD.unpack_from(body, offset)
            except struct.error as exc:
                raise BackupError(f"malformed backup write entry: {exc}") from exc
            offset += _WRITE_HEAD.size
            state = body[offset:offset + length]
            if len(state) != length:
                raise BackupError("truncated backup write entry")
            offset += length
            writes[chunk_id] = bytes(state)
        elif entry_kind == _ENTRY_REMOVE:
            try:
                _, chunk_id = _REMOVE_HEAD.unpack_from(body, offset)
            except struct.error as exc:
                raise BackupError(f"malformed backup remove entry: {exc}") from exc
            offset += _REMOVE_HEAD.size
            removes.add(chunk_id)
        else:
            raise BackupError(f"unknown backup entry kind {entry_kind}")
    if offset != len(body):
        raise BackupError("trailing garbage inside backup body")
    return header, writes, removes
