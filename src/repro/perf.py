"""Performance counters for the crypto/hashing hot path.

The I/O layer already meters traffic (:mod:`repro.platform.iostats`);
this module does the same for CPU: every cipher and hash kernel the
chunk store drives is wrapped so its calls, bytes, and nanoseconds are
tallied per kernel name, and the chunk-digest memo reports its
hit-rate.  The counters surface in three places: ``PerfStats.as_dict``,
the owning store's ``IOStats.as_dict`` (as an attached section), and
the server's ``stats`` verb — so a benchmark or a live operator can see
exactly where crypto time goes and how much re-hashing the memo saved.

Snapshots are detached copies; the live object is shared across the
server's session threads and is locked accordingly.  Instrumentation
costs one lock acquisition per whole-payload operation (not per block),
which is noise next to the kernels themselves.
"""

from __future__ import annotations

import threading
from typing import Dict

__all__ = ["KernelCounter", "PerfStats"]


class KernelCounter:
    """Calls / bytes / nanoseconds of one named kernel."""

    __slots__ = ("calls", "nbytes", "ns")

    def __init__(self, calls: int = 0, nbytes: int = 0, ns: int = 0) -> None:
        self.calls = calls
        self.nbytes = nbytes
        self.ns = ns

    @property
    def mb_per_s(self) -> float:
        if not self.ns:
            return 0.0
        return (self.nbytes / (1024 * 1024)) / (self.ns / 1e9)

    def as_dict(self) -> Dict[str, object]:
        return {
            "calls": self.calls,
            "bytes": self.nbytes,
            "ns": self.ns,
            "mb_per_s": round(self.mb_per_s, 3),
        }


class PerfStats:
    """Counters of crypto-kernel work and digest-memo effectiveness.

    ``record_kernel`` feeds the per-kernel table; ``incr`` feeds plain
    named counters (``payload_digests`` is the one the acceptance tests
    watch: every content digest of a chunk or map-node payload bumps
    it, so "scrub re-hashed nothing" is directly observable).  The memo
    counters are written by the chunk store's
    :class:`~repro.chunkstore.digestmemo.DigestMemo`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._kernels: Dict[str, KernelCounter] = {}
        self._counters: Dict[str, int] = {}
        self.memo_hits = 0
        self.memo_misses = 0
        self.memo_invalidations = 0

    # -- recording -----------------------------------------------------

    def record_kernel(self, name: str, nbytes: int, ns: int, calls: int = 1) -> None:
        with self._lock:
            counter = self._kernels.get(name)
            if counter is None:
                counter = self._kernels[name] = KernelCounter()
            counter.calls += calls
            counter.nbytes += nbytes
            counter.ns += ns

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def record_memo(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.memo_hits += 1
            else:
                self.memo_misses += 1

    def record_memo_invalidation(self, amount: int = 1) -> None:
        with self._lock:
            self.memo_invalidations += amount

    # -- reading -------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def kernel(self, name: str) -> KernelCounter:
        """Detached copy of one kernel's counters (zeros if never run)."""
        with self._lock:
            counter = self._kernels.get(name)
            if counter is None:
                return KernelCounter()
            return KernelCounter(counter.calls, counter.nbytes, counter.ns)

    @property
    def memo_hit_rate(self) -> float:
        with self._lock:
            probes = self.memo_hits + self.memo_misses
            return self.memo_hits / probes if probes else 0.0

    def snapshot(self) -> "PerfStats":
        """Return an independent copy of the current counters."""
        with self._lock:
            copy = PerfStats()
            copy._kernels = {
                name: KernelCounter(c.calls, c.nbytes, c.ns)
                for name, c in self._kernels.items()
            }
            copy._counters = dict(self._counters)
            copy.memo_hits = self.memo_hits
            copy.memo_misses = self.memo_misses
            copy.memo_invalidations = self.memo_invalidations
            return copy

    def reset(self) -> None:
        """Zero all counters (used between benchmark phases)."""
        with self._lock:
            self._kernels.clear()
            self._counters.clear()
            self.memo_hits = 0
            self.memo_misses = 0
            self.memo_invalidations = 0

    def as_dict(self) -> Dict[str, object]:
        """JSON-able view (nested under ``io.perf`` in the stats verb)."""
        with self._lock:
            probes = self.memo_hits + self.memo_misses
            return {
                "kernels": {
                    name: counter.as_dict()
                    for name, counter in sorted(self._kernels.items())
                },
                "counters": dict(sorted(self._counters.items())),
                "digest_memo": {
                    "hits": self.memo_hits,
                    "misses": self.memo_misses,
                    "invalidations": self.memo_invalidations,
                    "hit_rate": round(
                        self.memo_hits / probes if probes else 0.0, 4
                    ),
                },
            }
