"""The repair engine: scrub-guided selective healing with full-restore fallback.

Strategy ladder, cheapest rung first:

1. **Clean** — the store opens and scrubs clean; nothing to do.
2. **Selective repair** — the store opens but the scrub reports damage
   below an intact map root: damaged map nodes are pruned from their
   (verified) parents, and every damaged or pruned-away chunk that the
   backup chain knows is committed back with fresh payload bytes.  A
   second scrub must come back clean or the engine escalates.
3. **Full restore** — the map root is gone, the store does not open at
   all (tampered residual log, unusable master, replayed image), or
   selective repair did not converge: the untrusted store is wiped and
   rebuilt from the whole chain.

Every path ends bound to the *current* one-way counter — selective
repair runs inside a store whose counter check already passed, and a
full restore formats a fresh store around ``counter.read()`` — so a
repair can never be used to smuggle an old image past replay detection.

Honest limitations, accepted and surfaced in :class:`RepairResult`:
chunks written after the newest backup and then damaged are lost
(``lost_chunks`` / ``pruned_ranges``), and a selective repair may
resurrect the backup's version of a chunk that was deallocated after
the backup was taken — the result is a verified hybrid of live and
backup state, which is why the second scrub is mandatory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.backupstore.store import BackupStore
from repro.chunkstore import ChunkStore, DamageReport
from repro.config import ChunkStoreConfig
from repro.errors import RepairError, ReplayDetectedError, TDBError
from repro.platform.counter import OneWayCounter
from repro.platform.secret import SecretStore
from repro.platform.untrusted import UntrustedStore

__all__ = ["RepairEngine", "RepairResult"]


@dataclass
class RepairResult:
    """Outcome of one :meth:`RepairEngine.heal` run.

    ``store`` is the healed, *open* chunk store — the caller owns
    closing it.  ``action`` is ``"clean"``, ``"selective"`` or
    ``"full_restore"``.
    """

    action: str
    store: ChunkStore
    report_before: Optional[DamageReport]
    report_after: Optional[DamageReport]
    repaired_chunks: List[int] = field(default_factory=list)
    lost_chunks: List[int] = field(default_factory=list)
    pruned_ranges: List[Tuple[int, int]] = field(default_factory=list)
    replay_detected: bool = False
    open_error: Optional[str] = None

    @property
    def healthy(self) -> bool:
        return self.report_after is not None and self.report_after.clean


class RepairEngine:
    """Heals one untrusted store from an ordered backup chain."""

    def __init__(self, backup_store: BackupStore, backup_names: List[str]) -> None:
        if not backup_names:
            raise RepairError("repair needs at least one backup stream")
        self.backup_store = backup_store
        self.backup_names = list(backup_names)

    def heal(
        self,
        untrusted: UntrustedStore,
        secret_store: SecretStore,
        counter: OneWayCounter,
        config: Optional[ChunkStoreConfig] = None,
    ) -> RepairResult:
        """Diagnose the store and repair it as locally as the damage allows."""
        store: Optional[ChunkStore] = None
        replay_detected = False
        open_error: Optional[str] = None
        try:
            store = ChunkStore.open(untrusted, secret_store, counter, config)
        except ReplayDetectedError as exc:
            replay_detected = True
            open_error = f"{type(exc).__name__}: {exc}"
        except TDBError as exc:
            open_error = f"{type(exc).__name__}: {exc}"

        report: Optional[DamageReport] = None
        if store is not None:
            report = store.scrub()
            if report.clean:
                return RepairResult(
                    action="clean",
                    store=store,
                    report_before=report,
                    report_after=report,
                )
            # Damage confirmed: past verifications say nothing about the
            # media any more, so the digest memo must start over.
            store.reset_digest_memo()
            if not report.root_lost:
                try:
                    return self._selective(store, report)
                except TDBError:
                    pass  # escalate to the full restore below
            try:
                store.close()
            except TDBError:
                pass

        store = self._full_restore(untrusted, secret_store, counter, config)
        report_after = store.scrub()
        if not report_after.clean:
            raise RepairError(
                "store still damaged after a full restore: "
                + report_after.summary()
            )
        return RepairResult(
            action="full_restore",
            store=store,
            report_before=report,
            report_after=report_after,
            replay_detected=replay_detected,
            open_error=open_error,
        )

    # ------------------------------------------------------------------
    # Rungs
    # ------------------------------------------------------------------

    def _selective(self, store: ChunkStore, report: DamageReport) -> RepairResult:
        state, db_uuid = self.backup_store.load_chain_state(self.backup_names)
        if db_uuid != store._db_uuid:
            raise RepairError("backup chain belongs to a different database")

        # Detach every damaged map node from its (verified) parent; the
        # ids it covered now read as unmapped.  Reported nodes are never
        # each other's ancestors, so every prune path is intact.
        pruned_ranges: List[Tuple[int, int]] = []
        for node in report.damaged_nodes:
            store.location_map.prune_child(node.level, node.index)
            pruned_ranges.append((node.id_lo, node.id_hi))

        writes: Dict[int, bytes] = {}
        lost: List[int] = []
        for damaged in report.damaged_chunks:
            if damaged.chunk_id in state:
                writes[damaged.chunk_id] = state[damaged.chunk_id]
            else:
                # Written after the newest backup, then damaged: gone.
                lost.append(damaged.chunk_id)
        for lo, hi in pruned_ranges:
            for chunk_id, payload in state.items():
                if lo <= chunk_id < hi:
                    writes[chunk_id] = payload

        for chunk_id in writes:
            if store.location_map.lookup(chunk_id) is None:
                store.adopt_chunk_id(chunk_id)
        if writes or lost:
            store.commit(writes, deallocs=lost, durable=True)
        store.checkpoint(force=True)

        report_after = store.scrub()
        if not report_after.clean:
            raise RepairError(
                "selective repair did not converge: " + report_after.summary()
            )
        return RepairResult(
            action="selective",
            store=store,
            report_before=report,
            report_after=report_after,
            repaired_chunks=sorted(writes),
            lost_chunks=sorted(lost),
            pruned_ranges=sorted(pruned_ranges),
        )

    def _full_restore(
        self,
        untrusted: UntrustedStore,
        secret_store: SecretStore,
        counter: OneWayCounter,
        config: Optional[ChunkStoreConfig],
    ) -> ChunkStore:
        for name in list(untrusted.list_files()):
            untrusted.delete(name)
        return self.backup_store.restore(
            self.backup_names, untrusted, secret_store, counter, config
        )
