"""Repair: heal a damaged chunk store from its archival backup chain.

The paper's only remedy for tampering is a full restore (section 6);
this package narrows that hammer.  Given a scrub's
:class:`~repro.chunkstore.scrub.DamageReport`, the
:class:`~repro.repair.engine.RepairEngine` re-materializes only the
damaged chunks from the newest backup containing them, falling back to
a full restore when the Merkle root itself (or the store's ability to
open at all) is gone.
"""

from repro.repair.engine import RepairEngine, RepairResult

__all__ = ["RepairEngine", "RepairResult"]
