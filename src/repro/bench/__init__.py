"""Benchmark harness reproducing the paper's evaluation (Figures 8-11).

Modules:

* :mod:`repro.bench.metrics` — disk model, latency statistics,
  I/O accounting helpers,
* :mod:`repro.bench.tpcb` — the paper's TPC-B schema and drivers for both
  TDB (collection store) and the Berkeley-DB-style baseline,
* :mod:`repro.bench.figure10` — response-time comparison
  (BerkeleyDB / TDB / TDB-S),
* :mod:`repro.bench.figure11` — utilization sweep (response time and
  database size vs maximum utilization),
* :mod:`repro.bench.footprint` — the code-footprint table (Figure 8),
* :mod:`repro.bench.ablation` — design-choice ablations called out in
  DESIGN.md (crypto, chunking, cache size, index kind).

Each figure module is runnable: ``python -m repro.bench.figure10 --help``.
"""

from repro.bench.metrics import DiskModel, LatencyStats, TxnMetrics
from repro.bench.tpcb import TpcbScale, TdbTpcbDriver, BaselineTpcbDriver

__all__ = [
    "DiskModel",
    "LatencyStats",
    "TxnMetrics",
    "TpcbScale",
    "TdbTpcbDriver",
    "BaselineTpcbDriver",
]
