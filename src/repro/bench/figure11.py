"""Figure 11: TDB response time and database size vs maximum utilization.

The paper sweeps the maximum-utilization knob from 0.5 to 0.9 on TDB
(without security) and finds:

* response time dips slightly up to ~0.7 (denser database, better
  file-cache hit rate) and climbs steeply after (cleaning copies more
  live bytes per reclaimed segment),
* the database size falls as utilization rises, while Berkeley DB's
  footprint is far larger because it never checkpoints its log during the
  run.

Run: ``python -m repro.bench.figure11 [--txns N] ...``
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List

from repro.bench.metrics import DiskModel, TxnMetrics
from repro.bench.tpcb import BaselineTpcbDriver, TdbTpcbDriver, TpcbScale
from repro.config import ChunkStoreConfig, SecurityProfile

__all__ = ["run_figure11", "UtilizationPoint"]

UTILIZATIONS = (0.5, 0.6, 0.7, 0.8, 0.9)


@dataclass
class UtilizationPoint:
    """One point of the sweep."""

    max_utilization: float
    metrics: TxnMetrics
    cleaner_bytes_copied: int
    cleaner_segments_freed: int
    achieved_utilization: float


def _tdb_config(max_utilization: float, secure: bool) -> ChunkStoreConfig:
    # Small segments and a short residual log so high utilization targets
    # are actually reachable at benchmark scale: the residual log, the
    # tail, and one free slot are uncleanable, which caps achievable
    # utilization at roughly live / (live + residual + 2 segments).
    return ChunkStoreConfig(
        segment_size=16 * 1024,
        initial_segments=4,
        checkpoint_residual_bytes=32 * 1024,
        map_fanout=64,
        max_utilization=max_utilization,
        fsync=True,
        security=SecurityProfile() if secure else SecurityProfile.insecure(),
    )


def run_figure11(
    txns: int = 2000,
    warmup: int = 500,
    accounts: int = 2000,
    tellers: int = 200,
    branches: int = 20,
    cache_bytes: int = 128 * 1024,
    utilizations=UTILIZATIONS,
) -> Dict[str, object]:
    """Run the utilization sweep plus one baseline reference run."""
    scale = TpcbScale(accounts=accounts, tellers=tellers, branches=branches)
    model = DiskModel()
    points: List[UtilizationPoint] = []
    for utilization in utilizations:
        driver = TdbTpcbDriver(
            scale,
            secure=False,
            chunk_config=_tdb_config(utilization, secure=False),
            cache_bytes=cache_bytes,
        )
        driver.load()
        driver.run(warmup)
        before_io = driver.untrusted.stats.snapshot()
        before_cleaner = driver.chunk_store.cleaner.stats
        copied_before = before_cleaner.bytes_copied
        freed_before = before_cleaner.segments_freed
        latency = driver.run(txns)
        io_delta = driver.untrusted.stats.delta_since(before_io)
        stats = driver.chunk_store.stats()
        metrics = TxnMetrics.collect(
            f"TDB@{utilization}",
            latency,
            io_delta,
            model,
            driver.db_size_bytes(),
        )
        points.append(
            UtilizationPoint(
                max_utilization=utilization,
                metrics=metrics,
                cleaner_bytes_copied=stats.cleaner.bytes_copied - copied_before,
                cleaner_segments_freed=stats.cleaner.segments_freed - freed_before,
                achieved_utilization=stats.utilization,
            )
        )
        driver.close()

    baseline = BaselineTpcbDriver(scale, cache_bytes=cache_bytes)
    baseline.load()
    baseline.run(warmup)
    before_io = baseline.untrusted.stats.snapshot()
    latency = baseline.run(txns)
    io_delta = baseline.untrusted.stats.delta_since(before_io)
    baseline_metrics = TxnMetrics.collect(
        "BerkeleyDB", latency, io_delta, model, baseline.db_size_bytes()
    )
    baseline.close()
    return {"points": points, "baseline": baseline_metrics}


def print_report(result: Dict[str, object]) -> None:
    points: List[UtilizationPoint] = result["points"]
    baseline: TxnMetrics = result["baseline"]
    print("=" * 78)
    print("Figure 11 — response time and database size vs maximum utilization")
    print("=" * 78)
    print(
        f"{'max util':>8} {'wall ms':>9} {'modeled ms':>11} {'db size KB':>11} "
        f"{'achieved':>9} {'cleaner copied KB':>18}"
    )
    for point in points:
        print(
            f"{point.max_utilization:8.1f} {point.metrics.wall_ms_mean:9.3f} "
            f"{point.metrics.modeled_disk_ms_per_txn:11.3f} "
            f"{point.metrics.db_size_bytes / 1024:11.1f} "
            f"{point.achieved_utilization:9.3f} "
            f"{point.cleaner_bytes_copied / 1024:18.1f}"
        )
    print("-" * 78)
    print(
        f"BerkeleyDB reference: wall={baseline.wall_ms_mean:.3f} ms, "
        f"modeled={baseline.modeled_disk_ms_per_txn:.3f} ms, "
        f"db={baseline.db_size_bytes / 1024:.1f} KB (log never checkpointed)"
    )
    print(
        "paper shape: response time dips to ~0.7 then climbs; size strictly "
        "decreasing in utilization; BerkeleyDB size much larger"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--txns", type=int, default=2000)
    parser.add_argument("--warmup", type=int, default=500)
    parser.add_argument("--accounts", type=int, default=2000)
    parser.add_argument("--tellers", type=int, default=200)
    parser.add_argument("--branches", type=int, default=20)
    parser.add_argument("--cache-kb", type=int, default=128)
    args = parser.parse_args()
    result = run_figure11(
        txns=args.txns,
        warmup=args.warmup,
        accounts=args.accounts,
        tellers=args.tellers,
        branches=args.branches,
        cache_bytes=args.cache_kb * 1024,
    )
    print_report(result)


if __name__ == "__main__":
    main()
