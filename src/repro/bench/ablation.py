"""Ablation benches for the design choices DESIGN.md calls out.

* ``crypto``   — cost split of the secure profile: hash engine and cipher
  choices (the paper claims crypto < 10% of CPU with optimized C
  implementations; pure Python shifts that balance, quantified here),
* ``chunking`` — single- vs multi-object chunks (paper section 4.2.1),
* ``cache``    — object-cache size sweep (the cacheable-working-set
  assumption of section 1),
* ``index``    — B+tree vs dynamic hash vs list on exact-match lookups
  (section 5.2.4).

Run: ``python -m repro.bench.ablation [crypto|chunking|cache|index|all]``
"""

from __future__ import annotations

import argparse
import random
import time
from typing import Dict, List

from repro.cache import SharedLruCache
from repro.chunkstore import ChunkStore
from repro.collectionstore import CollectionStore, Indexer
from repro.config import (
    ChunkStoreConfig,
    CollectionStoreConfig,
    ObjectStoreConfig,
    SecurityProfile,
)
from repro.objectstore import ClassRegistry, ObjectStore
from repro.bench.tpcb import AccountRec
from repro.platform import (
    MemoryOneWayCounter,
    MemorySecretStore,
    MemoryUntrustedStore,
)

__all__ = [
    "ablate_crypto",
    "ablate_chunking",
    "ablate_cache",
    "ablate_index",
]

_SECRET = b"ablation-benchmark-secret-012345"


def _chunk_store(profile: SecurityProfile, segment_size=64 * 1024) -> ChunkStore:
    return ChunkStore.format(
        MemoryUntrustedStore(),
        MemorySecretStore(_SECRET),
        MemoryOneWayCounter(),
        ChunkStoreConfig(
            segment_size=segment_size,
            initial_segments=4,
            checkpoint_residual_bytes=512 * 1024,
            map_fanout=64,
            security=profile,
        ),
    )


def ablate_crypto(operations: int = 300, payload: int = 200) -> List[Dict]:
    """Write+read round trips per security configuration."""
    profiles = [
        ("insecure", SecurityProfile.insecure()),
        ("sha1 + null cipher", SecurityProfile(True, "sha1", "null")),
        ("sha1 + aes-128", SecurityProfile(True, "sha1", "aes-128")),
        ("sha1 + aes-256", SecurityProfile(True, "sha1", "aes-256")),
        ("sha1 + 3des", SecurityProfile(True, "sha1", "3des")),
        ("sha1-pure + aes-128", SecurityProfile(True, "sha1-pure", "aes-128")),
        ("sha256 + aes-128", SecurityProfile(True, "sha256", "aes-128")),
    ]
    rows = []
    data = bytes(range(256)) * (payload // 256 + 1)
    data = data[:payload]
    for name, profile in profiles:
        store = _chunk_store(profile)
        cid = store.allocate_chunk_id()
        store.write(cid, data)
        start = time.perf_counter()
        for _ in range(operations):
            store.write(cid, data)
            store.read(cid)
        elapsed_ms = (time.perf_counter() - start) * 1000 / operations
        rows.append(
            {
                "profile": name,
                "ms_per_op": elapsed_ms,
                "bytes_written": store.untrusted.stats.bytes_written,
            }
        )
        store.close()
    return rows


def ablate_chunking(objects: int = 64, object_size: int = 100, rounds: int = 50) -> List[Dict]:
    """Single- vs multi-object chunks (paper section 4.2.1).

    TDB stores one object per chunk; the alternative packs k objects into
    one chunk, so updating one object rewrites its whole container.  This
    bench updates one random object per commit under both layouts and
    reports log volume — the quantity the paper's trade-off discussion is
    about.
    """
    rng = random.Random(5)
    rows = []
    for per_chunk in (1, 4, 16, 64):
        if per_chunk > objects:
            continue
        store = _chunk_store(SecurityProfile.insecure())
        chunk_count = max(1, objects // per_chunk)
        cids = [store.allocate_chunk_id() for _ in range(chunk_count)]
        blob = bytes(object_size * per_chunk)
        for cid in cids:
            store.write(cid, blob)
        base = store.untrusted.stats.bytes_written
        start = time.perf_counter()
        for _ in range(rounds):
            victim = rng.choice(cids)
            store.write(victim, bytes(object_size * per_chunk))
        elapsed_ms = (time.perf_counter() - start) * 1000 / rounds
        written = store.untrusted.stats.bytes_written - base
        rows.append(
            {
                "objects_per_chunk": per_chunk,
                "bytes_per_update": written / rounds,
                "ms_per_update": elapsed_ms,
            }
        )
        store.close()
    return rows


def _object_stack(cache_bytes: int):
    registry = ClassRegistry()
    registry.register(AccountRec)
    cache = SharedLruCache(cache_bytes)
    chunk_store = ChunkStore.format(
        MemoryUntrustedStore(),
        MemorySecretStore(_SECRET),
        MemoryOneWayCounter(),
        ChunkStoreConfig(
            segment_size=64 * 1024,
            initial_segments=4,
            checkpoint_residual_bytes=512 * 1024,
            map_fanout=64,
            security=SecurityProfile.insecure(),
        ),
        cache=cache,
    )
    return ObjectStore.create(
        chunk_store, ObjectStoreConfig(locking=False), registry
    ), cache


def ablate_cache(objects: int = 2000, reads: int = 4000) -> List[Dict]:
    """Read latency and hit rate vs shared-cache budget."""
    rows = []
    for cache_kb in (16, 64, 256, 1024):
        store, cache = _object_stack(cache_kb * 1024)
        oids = []
        with store.transaction() as txn:
            for index in range(objects):
                oids.append(txn.insert(AccountRec(index)))
        rng = random.Random(3)
        hits_before = cache.stats.hits
        misses_before = cache.stats.misses
        start = time.perf_counter()
        for _ in range(reads):
            with store.transaction() as txn:
                txn.open_readonly(rng.choice(oids))
                txn.abort()
        elapsed_us = (time.perf_counter() - start) * 1e6 / reads
        hits = cache.stats.hits - hits_before
        misses = cache.stats.misses - misses_before
        rows.append(
            {
                "cache_kb": cache_kb,
                "us_per_read": elapsed_us,
                "hit_rate": hits / max(1, hits + misses),
            }
        )
        store.close()
    return rows


def ablate_index(members: int = 2000, lookups: int = 500) -> List[Dict]:
    """Exact-match lookup cost per index kind (section 5.2.4)."""
    rows = []
    for kind in ("btree", "hash", "list"):
        registry = ClassRegistry()
        registry.register(AccountRec)
        chunk_store = ChunkStore.format(
            MemoryUntrustedStore(),
            MemorySecretStore(_SECRET),
            MemoryOneWayCounter(),
            ChunkStoreConfig(
                segment_size=64 * 1024,
                initial_segments=4,
                checkpoint_residual_bytes=1024 * 1024,
                map_fanout=64,
                security=SecurityProfile.insecure(),
            ),
        )
        object_store = ObjectStore.create(
            chunk_store, ObjectStoreConfig(locking=False), registry
        )
        collections = CollectionStore(object_store, CollectionStoreConfig())
        indexer = Indexer("by-id", AccountRec, lambda r: r.rec_id, kind=kind)
        ct = collections.transaction()
        handle = ct.create_collection("records", indexer)
        for index in range(members):
            handle.insert(AccountRec(index))
        ct.commit()
        rng = random.Random(11)
        start = time.perf_counter()
        ct = collections.transaction()
        handle = ct.read_collection("records")
        for _ in range(lookups):
            iterator = handle.query_match(indexer, rng.randrange(members))
            assert not iterator.end()
            iterator.close()
        ct.abort()
        elapsed_us = (time.perf_counter() - start) * 1e6 / lookups
        rows.append({"kind": kind, "us_per_lookup": elapsed_us})
        collections.close()
    return rows


def _print(title: str, rows: List[Dict]) -> None:
    print("=" * 70)
    print(title)
    print("=" * 70)
    for row in rows:
        print("  " + "  ".join(f"{key}={value:.3f}" if isinstance(value, float)
                               else f"{key}={value}" for key, value in row.items()))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "which",
        nargs="?",
        default="all",
        choices=("crypto", "chunking", "cache", "index", "all"),
    )
    args = parser.parse_args()
    if args.which in ("crypto", "all"):
        _print("abl-crypto: security profile cost", ablate_crypto())
    if args.which in ("chunking", "all"):
        _print("abl-chunk: objects per chunk (update cost)", ablate_chunking())
    if args.which in ("cache", "all"):
        _print("abl-cache: shared cache size", ablate_cache())
    if args.which in ("index", "all"):
        _print("abl-index: exact-match by index kind", ablate_index())


if __name__ == "__main__":
    main()
