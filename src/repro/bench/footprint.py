"""Figure 8: code footprint per module.

The paper measures the ``.text`` segment of each system on x86:

    Berkeley DB 186 KB | C-ISAM 344 KB | Faircom 211 KB | RDB 284 KB
    TDB (all modules) 250 KB
      collection store 45 | object store 41 | backup store 22
      chunk store 115 | support utilities 27
    TDB minimal configuration (chunk store + support): 142 KB

Python has no ``.text`` segment; the closest analogues are source size
and compiled bytecode size, reported here per module group with the same
breakdown.  What the figure is really arguing — the relative weight of
the modules, the chunk store dominating, and a minimal configuration
roughly half the full system — is directly comparable.

Run: ``python -m repro.bench.footprint``
"""

from __future__ import annotations

import os
import py_compile
import tempfile
from dataclasses import dataclass
from typing import Dict, List

import repro

__all__ = ["measure_footprint", "ModuleFootprint", "PAPER_TEXT_KB"]

PAPER_TEXT_KB = {
    "Berkeley DB": 186,
    "C-ISAM": 344,
    "Faircom": 211,
    "RDB": 284,
    "TDB - all modules": 250,
    "collection store": 45,
    "object store": 41,
    "backup store": 22,
    "chunk store": 115,
    "support utilities": 27,
    "TDB minimal configuration": 142,
}

# Module groups mirroring the paper's Figure 8 rows.  The crypto package
# is chunk-store substrate (hashing/encryption are chunk-store features);
# the platform package and small shared modules are "support utilities".
GROUPS = {
    "collection store": ["collectionstore"],
    "object store": ["objectstore"],
    "backup store": ["backupstore"],
    "chunk store": ["chunkstore", "crypto"],
    "support utilities": ["platform", "cache.py", "config.py", "errors.py", "db.py"],
}

BASELINE_GROUP = ["baseline"]


@dataclass
class ModuleFootprint:
    """Measured sizes of one module group."""

    name: str
    source_lines: int
    source_bytes: int
    bytecode_bytes: int


def _python_files(root: str, entries: List[str]) -> List[str]:
    files: List[str] = []
    for entry in entries:
        path = os.path.join(root, entry)
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for dirpath, _dirnames, filenames in os.walk(path):
                files.extend(
                    os.path.join(dirpath, name)
                    for name in filenames
                    if name.endswith(".py")
                )
    return sorted(files)


def _measure(name: str, files: List[str]) -> ModuleFootprint:
    lines = 0
    source_bytes = 0
    bytecode_bytes = 0
    with tempfile.TemporaryDirectory() as scratch:
        for index, path in enumerate(files):
            with open(path, "rb") as handle:
                blob = handle.read()
            source_bytes += len(blob)
            lines += sum(
                1
                for line in blob.decode("utf-8").splitlines()
                if line.strip() and not line.strip().startswith("#")
            )
            target = os.path.join(scratch, f"{index}.pyc")
            py_compile.compile(path, cfile=target, doraise=True)
            bytecode_bytes += os.path.getsize(target)
    return ModuleFootprint(name, lines, source_bytes, bytecode_bytes)


def measure_footprint() -> Dict[str, ModuleFootprint]:
    """Measure every Figure 8 module group of this package."""
    root = os.path.dirname(os.path.abspath(repro.__file__))
    results: Dict[str, ModuleFootprint] = {}
    for group, entries in GROUPS.items():
        results[group] = _measure(group, _python_files(root, entries))
    results["TDB - all modules"] = ModuleFootprint(
        "TDB - all modules",
        sum(f.source_lines for f in results.values()),
        sum(f.source_bytes for f in results.values()),
        sum(f.bytecode_bytes for f in results.values()),
    )
    results["TDB minimal configuration"] = ModuleFootprint(
        "TDB minimal configuration",
        results["chunk store"].source_lines
        + results["support utilities"].source_lines,
        results["chunk store"].source_bytes
        + results["support utilities"].source_bytes,
        results["chunk store"].bytecode_bytes
        + results["support utilities"].bytecode_bytes,
    )
    results["Berkeley DB (baseline stand-in)"] = _measure(
        "Berkeley DB (baseline stand-in)", _python_files(root, BASELINE_GROUP)
    )
    return results


def print_report(results: Dict[str, ModuleFootprint]) -> None:
    print("=" * 78)
    print("Figure 8 — code footprint")
    print("=" * 78)
    print(f"{'module':<32} {'LoC':>7} {'src KB':>8} {'pyc KB':>8} {'paper .text KB':>15}")
    order = [
        "Berkeley DB (baseline stand-in)",
        "TDB - all modules",
        "collection store",
        "object store",
        "backup store",
        "chunk store",
        "support utilities",
        "TDB minimal configuration",
    ]
    for name in order:
        footprint = results[name]
        paper_key = "Berkeley DB" if name.startswith("Berkeley DB") else name
        paper = PAPER_TEXT_KB.get(paper_key, "")
        print(
            f"{name:<32} {footprint.source_lines:>7} "
            f"{footprint.source_bytes / 1024:>8.1f} "
            f"{footprint.bytecode_bytes / 1024:>8.1f} {paper!s:>15}"
        )
    print("-" * 78)
    full = results["TDB - all modules"]
    minimal = results["TDB minimal configuration"]
    print(
        f"minimal/full ratio: {minimal.bytecode_bytes / full.bytecode_bytes:4.2f} "
        f"(paper: {142 / 250:4.2f})"
    )


def main() -> None:
    print_report(measure_footprint())


if __name__ == "__main__":
    main()
