"""Figure 10: average TPC-B response time — Berkeley DB vs TDB vs TDB-S.

Paper values (733 MHz P3, 7200 rpm EIDE disk, 4 MB caches, 60% maximum
utilization, 200 000 transactions):

    BerkeleyDB 6.8 ms      TDB 3.8 ms (56%)      TDB-S 5.8 ms (85%)

Run: ``python -m repro.bench.figure10 [--txns N] [--accounts N] ...``

The harness reports wall-clock latency of the Python implementation, the
raw I/O profile (the paper's "TDB writes ~523 bytes per transaction vs
~1100 for Berkeley DB" appears here as the bytes/txn column) and the
modeled disk time (see :class:`repro.bench.metrics.DiskModel`), which is
where the paper's ratios are expected to reappear.
"""

from __future__ import annotations

import argparse
from typing import Dict, List

from repro.bench.metrics import DiskModel, TxnMetrics
from repro.bench.tpcb import BaselineTpcbDriver, TdbTpcbDriver, TpcbScale

__all__ = ["run_figure10", "PAPER_MS"]

PAPER_MS = {"BerkeleyDB": 6.8, "TDB": 3.8, "TDB-S": 5.8}


def run_system(name: str, driver, warmup: int, txns: int) -> TxnMetrics:
    """Load, warm up, and measure one driver."""
    driver.load()
    driver.run(warmup)
    before = driver.untrusted.stats.snapshot()
    counter_before = driver.counter.read() if hasattr(driver, "counter") else 0
    latency = driver.run(txns)
    io_delta = driver.untrusted.stats.delta_since(before)
    counter_bumps = (
        driver.counter.read() - counter_before if hasattr(driver, "counter") else 0
    )
    metrics = TxnMetrics.collect(
        name,
        latency,
        io_delta,
        DiskModel(),
        driver.db_size_bytes(),
        counter_bumps=counter_bumps,
    )
    driver.close()
    return metrics


def run_figure10(
    txns: int = 2000,
    warmup: int = 500,
    accounts: int = 2000,
    tellers: int = 200,
    branches: int = 20,
    cache_bytes: int = 128 * 1024,
    systems: List[str] = ("TDB", "TDB-S", "BerkeleyDB"),
) -> Dict[str, TxnMetrics]:
    """Run the Figure 10 comparison; return metrics per system.

    The default scale shrinks the paper's 100 000-account database and
    its 4 MB cache by the same factor, preserving the cache-pressure
    ratio that drives Berkeley DB's page write-back traffic.
    """
    scale = TpcbScale(accounts=accounts, tellers=tellers, branches=branches)
    makers = {
        "TDB": lambda: TdbTpcbDriver(scale, secure=False, cache_bytes=cache_bytes),
        "TDB-S": lambda: TdbTpcbDriver(scale, secure=True, cache_bytes=cache_bytes),
        "BerkeleyDB": lambda: BaselineTpcbDriver(scale, cache_bytes=cache_bytes),
    }
    results: Dict[str, TxnMetrics] = {}
    for system in systems:
        results[system] = run_system(system, makers[system](), warmup, txns)
    return results


def print_report(results: Dict[str, TxnMetrics]) -> None:
    print("=" * 78)
    print("Figure 10 — TPC-B average response time per transaction")
    print("=" * 78)
    for system, metrics in results.items():
        print(metrics.row())
    baseline = results.get("BerkeleyDB")
    print("-" * 78)
    if baseline is not None:
        for system, metrics in results.items():
            measured = metrics.modeled_disk_ms_per_txn / max(
                1e-9, baseline.modeled_disk_ms_per_txn
            )
            paper = PAPER_MS[system] / PAPER_MS["BerkeleyDB"]
            print(
                f"{system:<12} modeled/baseline = {measured:4.2f}   "
                f"(paper: {PAPER_MS[system]:.1f} ms / {PAPER_MS['BerkeleyDB']:.1f} ms"
                f" = {paper:4.2f})"
            )
    print(
        "paper write volume: TDB ~523 bytes/txn, BerkeleyDB ~1100 bytes/txn "
        "(log only; page write-back extra)"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--txns", type=int, default=2000)
    parser.add_argument("--warmup", type=int, default=500)
    parser.add_argument("--accounts", type=int, default=2000)
    parser.add_argument("--tellers", type=int, default=200)
    parser.add_argument("--branches", type=int, default=20)
    parser.add_argument("--cache-kb", type=int, default=128)
    args = parser.parse_args()
    results = run_figure10(
        txns=args.txns,
        warmup=args.warmup,
        accounts=args.accounts,
        tellers=args.tellers,
        branches=args.branches,
        cache_bytes=args.cache_kb * 1024,
    )
    print_report(results)


if __name__ == "__main__":
    main()
