"""Read-scaling driver: a write-busy primary plus N read replicas.

The paper-level claim under test: a TDB primary saturated with durable
commits is a poor read server — every group-commit batch holds the store
lock across a real ``fsync`` — while read replicas, which never sync,
serve verified reads at full speed.  The driver therefore measures
*system* read throughput for the same client population pointed at

* the primary alone (0 replicas), versus
* the primary plus 1..N verifying replicas (readers spread round-robin),

with an identical background writer hammering the primary in every
configuration, and it samples each replica's commit-seqno lag while the
writer runs (the staleness bound that makes the extra throughput
honest).

Every server and every load generator is a separate **process** (spawned
via ``python -m repro.tools`` / ``python -m repro.bench.replload``), not
a thread: a single Python process time-slices its threads under the GIL
and would serialize exactly the parallelism replication exists to buy.

Runnable:

* ``python -m repro.bench.replload`` — full scaling run, JSON to stdout.
* ``python -m repro.bench.replload --reader H:P --seconds S`` — one
  reader process (used by the orchestrator; prints its own counts).
* ``python -m repro.bench.replload --writer H:P --seconds S`` — the
  background writer process.
"""

from __future__ import annotations

import json
import os
import shutil
import socket
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["ReplicationScalingResult", "run_replication_scaling"]

_POPULATE = 64  # named objects the readers cycle over
_VALUE_PAD = 120


# ---------------------------------------------------------------------------
# Subprocess plumbing
# ---------------------------------------------------------------------------


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _child_env() -> Dict[str, str]:
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    parts = [src] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
    return env


def _spawn(args: Sequence[str]) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m"] + list(args),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_child_env(),
    )


def _wait_for_server(port: int, deadline_s: float = 30.0) -> None:
    from repro.server import TdbClient

    deadline = time.monotonic() + deadline_s
    last: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            with TdbClient("127.0.0.1", port, timeout=5) as client:
                client.stats()
                return
        except Exception as exc:  # noqa: BLE001 — retried until deadline
            last = exc
            time.sleep(0.1)
    raise RuntimeError(f"server on port {port} never came up: {last}")


def _stop(proc: Optional[subprocess.Popen]) -> None:
    if proc is None or proc.poll() is not None:
        return
    proc.terminate()
    try:
        proc.wait(timeout=10)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=10)


# ---------------------------------------------------------------------------
# Reader / writer child processes
# ---------------------------------------------------------------------------


def _run_reader(endpoint: str, seconds: float) -> None:
    """Loop ``obj.get`` over the populated names; print counts as JSON."""
    from repro.server import TdbClient

    host, _, port = endpoint.rpartition(":")
    reads = 0
    started = time.monotonic()
    with TdbClient(host, int(port), timeout=30) as client:
        with client.transaction() as txn:
            oids = [
                txn.lookup(f"bench-{i}") for i in range(_POPULATE)
            ]
        deadline = started + seconds
        index = 0
        while time.monotonic() < deadline:
            with client.transaction() as txn:
                for _ in range(16):
                    txn.get(oids[index % len(oids)])
                    index += 1
                    reads += 1
    print(json.dumps({"reads": reads, "elapsed": time.monotonic() - started}))


def _run_writer(endpoint: str, seconds: float) -> None:
    """Durably update objects on the primary until the clock runs out."""
    from repro.server import TdbClient

    host, _, port = endpoint.rpartition(":")
    commits = 0
    started = time.monotonic()
    with TdbClient(host, int(port), timeout=30) as client:
        with client.transaction() as txn:
            oids = [txn.lookup(f"bench-{i}") for i in range(8)]
        deadline = started + seconds
        while time.monotonic() < deadline:
            with client.transaction() as txn:
                oid = oids[commits % len(oids)]
                txn.put({"n": commits, "pad": "w" * _VALUE_PAD}, oid=oid)
            commits += 1
    print(json.dumps({"commits": commits, "elapsed": time.monotonic() - started}))


# ---------------------------------------------------------------------------
# Orchestration
# ---------------------------------------------------------------------------


@dataclass
class ReplicationScalingResult:
    """One configuration's numbers (``replicas`` read servers + primary)."""

    replicas: int
    readers: int
    reads: int
    elapsed_s: float
    reads_per_s: float
    writer_commits: int
    lag_seqno_samples: List[int] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        samples = self.lag_seqno_samples
        return {
            "replicas": self.replicas,
            "readers": self.readers,
            "reads": self.reads,
            "elapsed_s": round(self.elapsed_s, 3),
            "reads_per_s": round(self.reads_per_s, 1),
            "writer_commits": self.writer_commits,
            "lag_seqno_mean": (
                round(sum(samples) / len(samples), 2) if samples else 0.0
            ),
            "lag_seqno_max": max(samples, default=0),
        }


def _replica_lag(port: int) -> int:
    from repro.server import TdbClient

    with TdbClient("127.0.0.1", port, timeout=10) as client:
        applier = client.stats()["replication"]["applier"]
        return max(0, int(applier["lag_seqno"]))


def _wait_caught_up(primary_port: int, replica_ports: List[int],
                    deadline_s: float = 60.0) -> float:
    """Seconds until every replica reports zero lag against the primary."""
    from repro.server import TdbClient

    started = time.monotonic()
    deadline = started + deadline_s
    with TdbClient("127.0.0.1", primary_port, timeout=10) as client:
        target = client.stats()["replication"]["shipper"]["commit_seqno"]
    while time.monotonic() < deadline:
        laggards = []
        for port in replica_ports:
            with TdbClient("127.0.0.1", port, timeout=10) as client:
                applier = client.stats()["replication"]["applier"]
                if applier["applied_seqno"] < target:
                    laggards.append(port)
        if not laggards:
            return time.monotonic() - started
        time.sleep(0.1)
    raise RuntimeError(f"replicas {laggards} never caught up to {target}")


def run_replication_scaling(
    replica_counts: Sequence[int] = (0, 1, 2),
    readers: int = 6,
    seconds: float = 4.0,
    poll: float = 0.5,
    workdir: Optional[str] = None,
) -> Dict[str, object]:
    """Measure read throughput and lag for each replica count."""
    from repro.config import ChunkStoreConfig
    from repro.db import Database

    own_tmp = workdir is None
    workdir = workdir or tempfile.mkdtemp(prefix="tdb-repl-bench-")
    pdir = os.path.join(workdir, "primary")
    procs: List[subprocess.Popen] = []
    try:
        # Populate the primary with durable commits enabled: the writer
        # load must pay real syncs or the primary has nothing to escape.
        db = Database.create(pdir, ChunkStoreConfig(fsync=True))
        from repro.server.server import RemoteRecord

        db.register_class(RemoteRecord)
        with db.transaction() as txn:
            for i in range(_POPULATE):
                oid = txn.insert(
                    RemoteRecord({"n": i, "pad": "x" * _VALUE_PAD})
                )
                txn.bind_name(f"bench-{i}", oid)
        db.close()

        primary_port = _free_port()
        procs.append(
            _spawn(["repro.tools", "serve", pdir,
                    "--port", str(primary_port)])
        )
        _wait_for_server(primary_port)

        max_replicas = max(replica_counts)
        replica_ports: List[int] = []
        results: Dict[str, object] = {}
        for count in sorted(replica_counts):
            # Grow the replica fleet to the requested size.
            while len(replica_ports) < count:
                index = len(replica_ports)
                rdir = os.path.join(workdir, f"replica-{index}")
                os.makedirs(rdir, exist_ok=True)
                shutil.copy(
                    os.path.join(pdir, "secret.key"),
                    os.path.join(rdir, "secret.key"),
                )
                rport = _free_port()
                procs.append(
                    _spawn(["repro.tools", "replicate", rdir,
                            "--primary", f"127.0.0.1:{primary_port}",
                            "--serve-port", str(rport),
                            "--poll", str(poll)])
                )
                _wait_for_server(rport)
                replica_ports.append(rport)
            if replica_ports:
                _wait_caught_up(primary_port, replica_ports)

            endpoints = [f"127.0.0.1:{primary_port}"] + [
                f"127.0.0.1:{port}" for port in replica_ports
            ]
            writer = _spawn(["repro.bench.replload",
                             "--writer", f"127.0.0.1:{primary_port}",
                             "--seconds", str(seconds + 1.0)])
            reader_procs = [
                _spawn(["repro.bench.replload",
                        "--reader", endpoints[i % len(endpoints)],
                        "--seconds", str(seconds)])
                for i in range(readers)
            ]
            lag_samples: List[int] = []
            sample_deadline = time.monotonic() + seconds
            while time.monotonic() < sample_deadline:
                time.sleep(max(seconds / 4, 0.5))
                for port in replica_ports:
                    try:
                        lag_samples.append(_replica_lag(port))
                    except Exception:  # noqa: BLE001 — sampling is best-effort
                        pass
            total_reads, elapsed = 0, 0.0
            for proc in reader_procs:
                out, _ = proc.communicate(timeout=seconds * 10 + 60)
                line = out.strip().splitlines()[-1]
                payload = json.loads(line)
                total_reads += payload["reads"]
                elapsed = max(elapsed, payload["elapsed"])
            out, _ = writer.communicate(timeout=seconds * 10 + 60)
            writer_commits = json.loads(out.strip().splitlines()[-1])["commits"]

            result = ReplicationScalingResult(
                replicas=count,
                readers=readers,
                reads=total_reads,
                elapsed_s=elapsed,
                reads_per_s=total_reads / elapsed if elapsed else 0.0,
                writer_commits=writer_commits,
                lag_seqno_samples=lag_samples,
            )
            results[str(count)] = result.as_dict()

        # Bounded staleness: with the writer stopped, every replica must
        # drain its lag to zero within the catch-up deadline.
        catch_up_s = (
            _wait_caught_up(primary_port, replica_ports)
            if replica_ports
            else 0.0
        )
        baseline = results[str(min(replica_counts))]["reads_per_s"]
        top = results[str(max_replicas)]["reads_per_s"]
        return {
            "configurations": results,
            "speedup_max_vs_single": round(top / baseline, 3) if baseline else 0.0,
            "catch_up_s": round(catch_up_s, 3),
            "readers": readers,
            "seconds": seconds,
            "cpu_count": os.cpu_count(),
        }
    finally:
        for proc in procs:
            _stop(proc)
        if own_tmp:
            shutil.rmtree(workdir, ignore_errors=True)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reader", metavar="HOST:PORT", default=None)
    parser.add_argument("--writer", metavar="HOST:PORT", default=None)
    parser.add_argument("--seconds", type=float, default=4.0)
    parser.add_argument("--readers", type=int, default=6)
    parser.add_argument("--replicas", type=int, nargs="+", default=[0, 1, 2])
    parser.add_argument("--poll", type=float, default=0.5)
    args = parser.parse_args(argv)
    if args.reader:
        _run_reader(args.reader, args.seconds)
        return 0
    if args.writer:
        _run_writer(args.writer, args.seconds)
        return 0
    report = run_replication_scaling(
        replica_counts=args.replicas,
        readers=args.readers,
        seconds=args.seconds,
        poll=args.poll,
    )
    json.dump(report, sys.stdout, indent=2)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
