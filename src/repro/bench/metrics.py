"""Measurement plumbing for the reproduction benchmarks.

The paper's numbers come from a 733 MHz Pentium 3 with a 7200 rpm EIDE
disk; pure-Python wall-clock times on modern hardware are not comparable.
What *is* comparable is the mechanism the paper credits for its results:
write volume and forced-write counts ("Berkeley DB writes approximately
twice as much data per transaction as TDB").  The harness therefore
reports three views per system:

* **wall-clock** latency of the Python implementation,
* raw **I/O counts** (bytes written / write calls / sync calls per
  transaction), and
* **modeled disk time**: the I/O trace priced with the paper's drive
  parameters (8.9 ms read seek, 10.9 ms write seek, 4.2 ms average
  rotational latency, early-2000s transfer rate), the way the paper's
  own bottleneck analysis works (section 3.2.1: "the primary performance
  bottleneck then becomes writes").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List

from repro.platform.iostats import IOStats

__all__ = ["DiskModel", "LatencyStats", "TxnMetrics", "Stopwatch"]


@dataclass(frozen=True)
class DiskModel:
    """Prices an I/O trace like the paper's benchmark setup.

    Calibration (fixed once, applied identically to every system):

    * a **forced sequential write** (log flush with WRITE_THROUGH, the
      head already parked at the log tail) pays the average rotational
      latency (``rotational_ms``),
    * a **random write** (page write-back at a scattered offset) pays a
      write seek plus rotational latency, scaled by
      ``random_write_absorption`` because the OS write cache and elevator
      scheduling service scattered write-back in batches,
    * a **one-way-counter bump** (the paper emulated the counter as a
      file on the same NTFS partition, written through the cache) pays
      ``counter_write_ms``,
    * all written bytes stream at ``bandwidth_mb_s``.

    Seek/rotation figures are the paper's drive (section 7.2: 10.9 ms
    write seek, 7200 rpm -> 4.2 ms average rotational latency).
    """

    write_seek_ms: float = 10.9
    rotational_ms: float = 4.2
    bandwidth_mb_s: float = 20.0
    random_write_absorption: float = 0.25
    counter_write_ms: float = 2.0

    def cost_ms(self, stats: IOStats, counter_bumps: int = 0) -> float:
        """Modeled milliseconds for an I/O delta."""
        sync_cost = stats.sync_calls * self.rotational_ms
        random_cost = (
            stats.random_writes
            * (self.write_seek_ms + self.rotational_ms)
            * self.random_write_absorption
        )
        counter_cost = counter_bumps * self.counter_write_ms
        transfer_cost = stats.bytes_written / (self.bandwidth_mb_s * 1000.0)
        return sync_cost + random_cost + counter_cost + transfer_cost


@dataclass
class LatencyStats:
    """Streaming wall-clock latency collector (milliseconds)."""

    samples_ms: List[float] = field(default_factory=list)

    def record(self, seconds: float) -> None:
        self.samples_ms.append(seconds * 1000.0)

    @property
    def count(self) -> int:
        return len(self.samples_ms)

    @property
    def mean(self) -> float:
        return sum(self.samples_ms) / len(self.samples_ms) if self.samples_ms else 0.0

    def percentile(self, fraction: float) -> float:
        if not self.samples_ms:
            return 0.0
        ordered = sorted(self.samples_ms)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)


@dataclass
class TxnMetrics:
    """Aggregated result of one benchmark run."""

    system: str
    transactions: int
    wall_ms_mean: float
    wall_ms_p50: float
    wall_ms_p95: float
    bytes_written_per_txn: float
    write_calls_per_txn: float
    sync_calls_per_txn: float
    modeled_disk_ms_per_txn: float
    db_size_bytes: int
    extra: dict = field(default_factory=dict)

    @classmethod
    def collect(
        cls,
        system: str,
        latency: LatencyStats,
        io_delta: IOStats,
        disk_model: DiskModel,
        db_size_bytes: int,
        counter_bumps: int = 0,
        **extra,
    ) -> "TxnMetrics":
        count = max(1, latency.count)
        modeled_total = disk_model.cost_ms(io_delta, counter_bumps)
        return cls(
            system=system,
            transactions=latency.count,
            wall_ms_mean=latency.mean,
            wall_ms_p50=latency.p50,
            wall_ms_p95=latency.p95,
            bytes_written_per_txn=io_delta.bytes_written / count,
            write_calls_per_txn=io_delta.write_calls / count,
            sync_calls_per_txn=io_delta.sync_calls / count,
            modeled_disk_ms_per_txn=modeled_total / count,
            db_size_bytes=db_size_bytes,
            extra=dict(extra),
        )

    def row(self) -> str:
        return (
            f"{self.system:<12} wall={self.wall_ms_mean:7.3f}ms "
            f"modeled-disk={self.modeled_disk_ms_per_txn:7.3f}ms "
            f"bytes/txn={self.bytes_written_per_txn:8.1f} "
            f"syncs/txn={self.sync_calls_per_txn:5.2f} "
            f"db={self.db_size_bytes / 1024:9.1f}KB"
        )


class Stopwatch:
    """Tiny context-manager timer feeding a LatencyStats."""

    def __init__(self, stats: LatencyStats) -> None:
        self.stats = stats

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stats.record(time.perf_counter() - self._start)
