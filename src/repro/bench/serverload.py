"""Server-throughput driver: N client threads against a live TDB service.

Measures what the service layer adds over the embedded stack — group
commit under the threaded server, multi-process parallelism under the
sharded one.  Both modes run *file-backed* databases with durable syncs
(``fsync=True``) so the two are comparable, served over loopback TCP
and hammered by ``clients`` threads each running small insert
transactions through :class:`~repro.server.client.TdbClient`.

Statistical validity: every client first runs ``warmup_txns``
unrecorded transactions (connection setup, allocator and cache warmup,
JIT-ish first-touch costs), then the measured phase loops until at
least ``duration_s`` seconds have elapsed — not a fixed transaction
count, so fast machines measure more work instead of finishing before
the clock resolution matters.

The result reports throughput, the per-transaction latency
distribution, the commit batch-size distribution, and the two costs
group commit exists to amortize: durable syncs and one-way-counter
advances per committed transaction.  Sharded runs add a per-shard
breakdown (commits, batches, syncs per worker process).

Runnable: ``python -m repro.bench.serverload --clients 32 --shards 4``.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bench.metrics import LatencyStats
from repro.config import ChunkStoreConfig
from repro.db import Database
from repro.server import (
    BackpressureConfig,
    ShardedTdbServer,
    TdbClient,
    TdbServer,
)

__all__ = ["ServerLoadResult", "run_server_load"]


@dataclass
class ServerLoadResult:
    """One load run's numbers, JSON-able for benchmark artifacts."""

    mode: str
    clients: int
    shards: int
    transactions: int
    warmup_txns: int
    duration_target_s: float
    elapsed_s: float
    txns_per_s: float
    mean_batch_size: float
    max_batch_size: int
    batches: int
    syncs_per_txn: float
    counter_advances_per_txn: float
    latency_mean_ms: float
    latency_p50_ms: float
    latency_p95_ms: float
    batch_size_histogram: Dict[str, int] = field(default_factory=dict)
    per_shard: Dict[str, Dict[str, object]] = field(default_factory=dict)
    errors: int = 0

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "mode": self.mode,
            "clients": self.clients,
            "shards": self.shards,
            "transactions": self.transactions,
            "warmup_txns": self.warmup_txns,
            "duration_target_s": self.duration_target_s,
            "elapsed_s": round(self.elapsed_s, 3),
            "txns_per_s": round(self.txns_per_s, 1),
            "mean_batch_size": round(self.mean_batch_size, 3),
            "max_batch_size": self.max_batch_size,
            "batches": self.batches,
            "syncs_per_txn": round(self.syncs_per_txn, 3),
            "counter_advances_per_txn": round(self.counter_advances_per_txn, 3),
            "latency_mean_ms": round(self.latency_mean_ms, 3),
            "latency_p50_ms": round(self.latency_p50_ms, 3),
            "latency_p95_ms": round(self.latency_p95_ms, 3),
            "batch_size_histogram": self.batch_size_histogram,
            "errors": self.errors,
        }
        if self.per_shard:
            out["per_shard"] = self.per_shard
        return out


def _drive_clients(
    address,
    clients: int,
    warmup_txns: int,
    duration_s: float,
    payload_fields: int,
):
    """The measured phase, identical for both server modes."""
    host, port = address
    payload = {f"field{i}": "x" * 16 for i in range(payload_fields)}
    latency = LatencyStats()
    latency_lock = threading.Lock()
    errors: List[Exception] = []
    # +1: the main thread joins both barriers to take clean timestamps.
    warm_barrier = threading.Barrier(clients + 1)
    start_barrier = threading.Barrier(clients + 1)
    stop_at = [0.0]  # set by the main thread at the start barrier

    def client_thread(index: int) -> None:
        try:
            with TdbClient(host, port, timeout=60) as client:
                for n in range(warmup_txns):
                    client.run_transaction(
                        lambda txn: txn.put(dict(payload, warm=index, n=n)),
                        attempts=10,
                    )
                warm_barrier.wait()
                start_barrier.wait()
                n = 0
                while time.monotonic() < stop_at[0]:
                    n += 1
                    started = time.monotonic()
                    client.run_transaction(
                        lambda txn: txn.put(dict(payload, client=index, n=n)),
                        attempts=10,
                    )
                    with latency_lock:
                        latency.record(time.monotonic() - started)
        except Exception as exc:  # noqa: BLE001 — tallied, not fatal
            errors.append(exc)
            # Unblock the barriers so one failed client cannot hang the run.
            for barrier in (warm_barrier, start_barrier):
                try:
                    barrier.wait(timeout=0.1)
                except threading.BrokenBarrierError:
                    pass

    threads = [
        threading.Thread(target=client_thread, args=(i,), daemon=True)
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    warm_barrier.wait()
    stop_at[0] = time.monotonic() + duration_s
    start_barrier.wait()
    started = time.monotonic()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - started
    return latency, elapsed, errors


def _aggregate_sharded_stats(before: Dict, after: Dict):
    """Sum per-shard deltas of the group-commit / io / counter stats."""
    agg = {
        "requests": 0, "batches": 0, "max_batch_size": 0,
        "sync_calls": 0, "counter": 0,
    }
    histogram: Dict[str, int] = {}
    per_shard: Dict[str, Dict[str, object]] = {}
    for shard, now in after.items():
        base = before.get(shard) or {}
        if now is None:
            continue
        gc_now = now.get("group_commit") or {}
        gc_base = (base.get("group_commit") or {}) if base else {}
        requests = gc_now.get("requests", 0) - gc_base.get("requests", 0)
        batches = gc_now.get("batches", 0) - gc_base.get("batches", 0)
        syncs = (now.get("io", {}).get("sync_calls", 0)
                 - (base.get("io", {}) or {}).get("sync_calls", 0))
        counter = (now.get("chunk_store", {}).get("counter_value", 0)
                   - (base.get("chunk_store", {}) or {}).get("counter_value", 0))
        agg["requests"] += requests
        agg["batches"] += batches
        agg["sync_calls"] += syncs
        agg["counter"] += counter
        agg["max_batch_size"] = max(
            agg["max_batch_size"], gc_now.get("max_batch_size", 0)
        )
        for size, count in (gc_now.get("batch_sizes") or {}).items():
            histogram[str(size)] = (
                histogram.get(str(size), 0)
                + count - (gc_base.get("batch_sizes") or {}).get(size, 0)
            )
        per_shard[shard] = {
            "commits": requests,
            "batches": batches,
            "sync_calls": syncs,
            "counter_advances": counter,
            "worker_commits": (now.get("counters") or {}).get("commits", 0),
        }
    return agg, histogram, per_shard


def run_server_load(
    clients: int = 8,
    mode: str = "threaded",
    shards: int = 4,
    warmup_txns: int = 5,
    duration_s: float = 2.0,
    max_batch: int = 32,
    max_delay: float = 0.01,
    payload_fields: int = 4,
    directory: Optional[str] = None,
) -> ServerLoadResult:
    """Run one load point and return its measurements.

    ``mode`` is ``"threaded"`` (one process, group commit) or
    ``"sharded"`` (``shards`` worker processes behind the asyncio front
    door).  Both use a file-backed store under ``directory`` (a fresh
    temporary directory by default) so throughput numbers compare
    like for like.
    """
    if mode not in ("threaded", "sharded"):
        raise ValueError(f"unknown mode {mode!r}")
    own_dir = directory is None
    root = directory or tempfile.mkdtemp(prefix=f"tdb-bench-{mode}-")
    backpressure = BackpressureConfig(
        max_sessions=max(64, clients + 8), idle_timeout=120.0,
        request_timeout=60.0,
    )
    try:
        if mode == "threaded":
            db = Database.create(
                os.path.join(root, "db"),
                chunk_config=ChunkStoreConfig(fsync=True),
            )
            server = TdbServer(
                db,
                backpressure=backpressure,
                max_batch=max_batch,
                max_delay=max_delay,
            ).start()
            shards_running = 1
        else:
            server = ShardedTdbServer(
                os.path.join(root, "db"),
                shards=shards,
                backpressure=backpressure,
                max_batch=max_batch,
                max_delay=max_delay,
                chunk_config=ChunkStoreConfig(fsync=True),
            ).start()
            shards_running = server.layout.shards

        if mode == "threaded":
            io_before = db.io_stats().snapshot()
            counter_before = db.stats().counter_value
            gc_before = server.coordinator.stats_snapshot()
        else:
            with TdbClient(*server.address, timeout=30) as admin:
                shard_before = admin.stats()["per_shard"]

        latency, elapsed, errors = _drive_clients(
            server.address, clients, warmup_txns, duration_s, payload_fields
        )
        transactions = latency.count

        per_shard: Dict[str, Dict[str, object]] = {}
        if mode == "threaded":
            gc_after = server.coordinator.stats_snapshot()
            requests = gc_after.requests - gc_before.requests
            batches = gc_after.batches - gc_before.batches
            mean_batch = requests / batches if batches else 0.0
            max_batch_seen = gc_after.max_batch_size
            histogram = {
                str(k): v - gc_before.batch_sizes.get(k, 0)
                for k, v in sorted(gc_after.batch_sizes.items())
                if v - gc_before.batch_sizes.get(k, 0) > 0
            }
            io_delta = db.io_stats().delta_since(io_before)
            syncs = io_delta.sync_calls
            counter_delta = db.stats().counter_value - counter_before
            server.stop()
            db.close()
        else:
            with TdbClient(*server.address, timeout=30) as admin:
                shard_after = admin.stats()["per_shard"]
            agg, histogram, per_shard = _aggregate_sharded_stats(
                shard_before, shard_after
            )
            mean_batch = (
                agg["requests"] / agg["batches"] if agg["batches"] else 0.0
            )
            batches = agg["batches"]
            max_batch_seen = agg["max_batch_size"]
            syncs = agg["sync_calls"]
            counter_delta = agg["counter"]
            server.stop()
    finally:
        if own_dir:
            shutil.rmtree(root, ignore_errors=True)

    return ServerLoadResult(
        mode=mode,
        clients=clients,
        shards=shards_running,
        transactions=transactions,
        warmup_txns=warmup_txns,
        duration_target_s=duration_s,
        elapsed_s=elapsed,
        txns_per_s=transactions / elapsed if elapsed > 0 else 0.0,
        mean_batch_size=mean_batch,
        max_batch_size=max_batch_seen,
        batches=batches,
        syncs_per_txn=syncs / transactions if transactions else 0.0,
        counter_advances_per_txn=(
            counter_delta / transactions if transactions else 0.0
        ),
        latency_mean_ms=latency.mean,
        latency_p50_ms=latency.percentile(0.50),
        latency_p95_ms=latency.percentile(0.95),
        batch_size_histogram=histogram,
        per_shard=per_shard,
        errors=len(errors),
    )


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--mode", choices=["threaded", "sharded"],
                        default="threaded")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--warmup-txns", type=int, default=5)
    parser.add_argument("--duration", type=float, default=2.0)
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--max-delay", type=float, default=0.01)
    args = parser.parse_args(argv)
    result = run_server_load(
        clients=args.clients,
        mode=args.mode,
        shards=args.shards,
        warmup_txns=args.warmup_txns,
        duration_s=args.duration,
        max_batch=args.max_batch,
        max_delay=args.max_delay,
    )
    print(json.dumps(result.as_dict(), indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
