"""Server-throughput driver: N client threads against a live TdbServer.

Measures what the service layer adds over the embedded stack — the
group-commit amortization under real concurrency.  The driver starts an
in-memory database with durable syncs enabled (``fsync=True``; the
memory store's syncs cost nothing but are *counted*, which is what the
comparison needs), serves it over loopback TCP, and hammers it with
``clients`` threads each running ``txns_per_client`` small insert
transactions through :class:`~repro.server.client.TdbClient`.

The result reports throughput, the per-transaction latency
distribution, the commit batch-size distribution, and the two costs
group commit exists to amortize: durable syncs and one-way-counter
advances per committed transaction.

Runnable: ``python -m repro.bench.serverload --clients 32``.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bench.metrics import LatencyStats
from repro.config import ChunkStoreConfig
from repro.db import Database
from repro.server import BackpressureConfig, TdbClient, TdbServer

__all__ = ["ServerLoadResult", "run_server_load"]


@dataclass
class ServerLoadResult:
    """One load run's numbers, JSON-able for benchmark artifacts."""

    clients: int
    transactions: int
    elapsed_s: float
    txns_per_s: float
    mean_batch_size: float
    max_batch_size: int
    batches: int
    syncs_per_txn: float
    counter_advances_per_txn: float
    latency_mean_ms: float
    latency_p50_ms: float
    latency_p95_ms: float
    batch_size_histogram: Dict[str, int] = field(default_factory=dict)
    errors: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "clients": self.clients,
            "transactions": self.transactions,
            "elapsed_s": round(self.elapsed_s, 3),
            "txns_per_s": round(self.txns_per_s, 1),
            "mean_batch_size": round(self.mean_batch_size, 3),
            "max_batch_size": self.max_batch_size,
            "batches": self.batches,
            "syncs_per_txn": round(self.syncs_per_txn, 3),
            "counter_advances_per_txn": round(self.counter_advances_per_txn, 3),
            "latency_mean_ms": round(self.latency_mean_ms, 3),
            "latency_p50_ms": round(self.latency_p50_ms, 3),
            "latency_p95_ms": round(self.latency_p95_ms, 3),
            "batch_size_histogram": self.batch_size_histogram,
            "errors": self.errors,
        }


def run_server_load(
    clients: int = 8,
    txns_per_client: int = 20,
    max_batch: int = 32,
    max_delay: float = 0.01,
    payload_fields: int = 4,
) -> ServerLoadResult:
    """Run one load point and return its measurements."""
    db = Database.in_memory(chunk_config=ChunkStoreConfig(fsync=True))
    server = TdbServer(
        db,
        backpressure=BackpressureConfig(max_sessions=max(64, clients + 8)),
        max_batch=max_batch,
        max_delay=max_delay,
    ).start()
    host, port = server.address

    payload = {f"field{i}": "x" * 16 for i in range(payload_fields)}
    latency = LatencyStats()
    latency_lock = threading.Lock()
    errors: List[Exception] = []
    start_barrier = threading.Barrier(clients + 1)

    def client_thread(index: int) -> None:
        try:
            with TdbClient(host, port, timeout=60) as client:
                start_barrier.wait()
                for n in range(txns_per_client):
                    started = time.monotonic()
                    client.run_transaction(
                        lambda txn: txn.put(dict(payload, client=index, n=n)),
                        attempts=10,
                    )
                    with latency_lock:
                        latency.record(time.monotonic() - started)
        except Exception as exc:  # noqa: BLE001 — tallied, not fatal
            errors.append(exc)

    threads = [
        threading.Thread(target=client_thread, args=(i,), daemon=True)
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()

    io_before = db.io_stats().snapshot()
    counter_before = db.stats().counter_value
    start_barrier.wait()
    started = time.monotonic()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - started

    stats = server.coordinator.stats_snapshot()
    io_delta = db.io_stats().delta_since(io_before)
    counter_delta = db.stats().counter_value - counter_before
    server.stop()
    db.close()

    transactions = latency.count
    return ServerLoadResult(
        clients=clients,
        transactions=transactions,
        elapsed_s=elapsed,
        txns_per_s=transactions / elapsed if elapsed > 0 else 0.0,
        mean_batch_size=stats.mean_batch_size,
        max_batch_size=stats.max_batch_size,
        batches=stats.batches,
        syncs_per_txn=io_delta.sync_calls / transactions if transactions else 0.0,
        counter_advances_per_txn=(
            counter_delta / transactions if transactions else 0.0
        ),
        latency_mean_ms=latency.mean,
        latency_p50_ms=latency.percentile(0.50),
        latency_p95_ms=latency.percentile(0.95),
        batch_size_histogram={
            str(k): v for k, v in sorted(stats.batch_sizes.items())
        },
        errors=len(errors),
    )


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--txns-per-client", type=int, default=20)
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--max-delay", type=float, default=0.01)
    args = parser.parse_args(argv)
    result = run_server_load(
        clients=args.clients,
        txns_per_client=args.txns_per_client,
        max_batch=args.max_batch,
        max_delay=args.max_delay,
    )
    print(json.dumps(result.as_dict(), indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
