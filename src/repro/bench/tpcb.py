"""TPC-B workload, as the paper runs it (section 7.1, Figure 9).

Schema: four collections — Account, Teller, Branch, History.  All objects
are 100 bytes with 4-byte unique ids.  A transaction reads and updates a
random object from each of Account, Teller and Branch and inserts one new
History object.  The paper's (already scaled-down) sizes:

    Account  100 000        Teller  1 000
    Branch       100        History 252 000 (grown during the run)

``TpcbScale.paper()`` reproduces those; the default scale is shrunk
further so pure-Python runs finish in seconds.  Two drivers implement the
same workload:

* :class:`TdbTpcbDriver` — the full TDB stack (collection store over
  object store over chunk store), secure (TDB-S) or not (TDB),
* :class:`BaselineTpcbDriver` — the Berkeley-DB-style engine.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass
from typing import Optional

from repro.baseline import BaselineDB
from repro.bench.metrics import LatencyStats, Stopwatch
from repro.cache import SharedLruCache
from repro.chunkstore import ChunkStore
from repro.collectionstore import CollectionStore, Indexer
from repro.config import (
    BaselineConfig,
    ChunkStoreConfig,
    CollectionStoreConfig,
    ObjectStoreConfig,
    SecurityProfile,
)
from repro.objectstore import (
    BufferReader,
    BufferWriter,
    ClassRegistry,
    ObjectStore,
    Persistent,
)
from repro.platform import (
    MemoryOneWayCounter,
    MemorySecretStore,
    MemoryUntrustedStore,
)

__all__ = [
    "TpcbScale",
    "AccountRec",
    "TellerRec",
    "BranchRec",
    "HistoryRec",
    "TdbTpcbDriver",
    "BaselineTpcbDriver",
]

_FILLER = b"\x2e" * 76  # pads every record's pickle to ~100 bytes


@dataclass(frozen=True)
class TpcbScale:
    """Initial collection sizes (Figure 9)."""

    accounts: int = 1000
    tellers: int = 100
    branches: int = 10

    @classmethod
    def paper(cls) -> "TpcbScale":
        return cls(accounts=100_000, tellers=1_000, branches=100)

    @classmethod
    def tiny(cls) -> "TpcbScale":
        return cls(accounts=100, tellers=10, branches=2)


class _BalanceRec(Persistent):
    """Common 100-byte record: 4-byte id, 8-byte balance, filler."""

    def __init__(self, rec_id: int = 0, balance: int = 0) -> None:
        self.rec_id = rec_id
        self.balance = balance

    def pickle(self) -> bytes:
        return (
            BufferWriter()
            .write_int(self.rec_id)
            .write_int(self.balance)
            .write_bytes(_FILLER)
            .getvalue()
        )

    @classmethod
    def unpickle(cls, data: bytes):
        reader = BufferReader(data)
        obj = cls(reader.read_int(), reader.read_int())
        reader.read_bytes()
        return obj

    def cache_charge(self) -> int:
        return 160


class AccountRec(_BalanceRec):
    class_id = "tpcb.account"


class TellerRec(_BalanceRec):
    class_id = "tpcb.teller"


class BranchRec(_BalanceRec):
    class_id = "tpcb.branch"


class HistoryRec(Persistent):
    """History record: ids of the rows a transaction touched + delta."""

    class_id = "tpcb.history"

    def __init__(self, hist_id=0, account=0, teller=0, branch=0, delta=0) -> None:
        self.hist_id = hist_id
        self.account = account
        self.teller = teller
        self.branch = branch
        self.delta = delta

    def pickle(self) -> bytes:
        return (
            BufferWriter()
            .write_int(self.hist_id)
            .write_int(self.account)
            .write_int(self.teller)
            .write_int(self.branch)
            .write_int(self.delta)
            .write_bytes(_FILLER[:52])
            .getvalue()
        )

    @classmethod
    def unpickle(cls, data: bytes) -> "HistoryRec":
        reader = BufferReader(data)
        obj = cls(
            reader.read_int(),
            reader.read_int(),
            reader.read_int(),
            reader.read_int(),
            reader.read_int(),
        )
        reader.read_bytes()
        return obj

    def cache_charge(self) -> int:
        return 160


def account_indexer() -> Indexer:
    return Indexer("acct-id", AccountRec, lambda r: r.rec_id, unique=True, kind="hash")


def teller_indexer() -> Indexer:
    return Indexer("teller-id", TellerRec, lambda r: r.rec_id, unique=True, kind="hash")


def branch_indexer() -> Indexer:
    return Indexer("branch-id", BranchRec, lambda r: r.rec_id, unique=True, kind="hash")


def history_indexer() -> Indexer:
    return Indexer("hist-acct", HistoryRec, lambda r: r.account, kind="list")


class TdbTpcbDriver:
    """TPC-B over the full TDB stack."""

    def __init__(
        self,
        scale: TpcbScale,
        secure: bool,
        chunk_config: Optional[ChunkStoreConfig] = None,
        seed: int = 7,
        durable: bool = True,
        cache_bytes: int = 4 * 1024 * 1024,
    ) -> None:
        self.scale = scale
        self.secure = secure
        self.durable = durable
        self.rng = random.Random(seed)
        self.untrusted = MemoryUntrustedStore()
        self.counter = MemoryOneWayCounter()
        secret = MemorySecretStore(b"tpcb-benchmark-secret-0123456789")
        if chunk_config is None:
            chunk_config = ChunkStoreConfig(
                segment_size=64 * 1024,
                initial_segments=4,
                # The paper defers reorganization (checkpointing) to idle
                # periods; a large residual bound amortizes location-map
                # writes the same way under continuous load.
                checkpoint_residual_bytes=1536 * 1024,
                map_fanout=64,
                fsync=True,  # memory-store sync is free but *counted*
                security=(
                    SecurityProfile() if secure else SecurityProfile.insecure()
                ),
            )
        registry = ClassRegistry()
        for cls in (AccountRec, TellerRec, BranchRec, HistoryRec):
            registry.register(cls)
        cache = SharedLruCache(cache_bytes)  # the paper used 4 MB
        chunk_store = ChunkStore.format(
            self.untrusted, secret, self.counter, chunk_config, cache=cache
        )
        object_store = ObjectStore.create(
            chunk_store, ObjectStoreConfig(locking=False), registry
        )
        self.store = CollectionStore(
            object_store, CollectionStoreConfig(list_node_capacity=4)
        )
        self.chunk_store = chunk_store
        self._indexers = {
            "account": account_indexer(),
            "teller": teller_indexer(),
            "branch": branch_indexer(),
            "history": history_indexer(),
        }
        self._history_seq = 0

    # -- setup -----------------------------------------------------------------

    def load(self) -> None:
        """Populate the four collections (batched commits)."""
        plan = [
            ("account", AccountRec, self.scale.accounts, self._indexers["account"]),
            ("teller", TellerRec, self.scale.tellers, self._indexers["teller"]),
            ("branch", BranchRec, self.scale.branches, self._indexers["branch"]),
        ]
        for name, cls, count, indexer in plan:
            ct = self.store.transaction()
            handle = ct.create_collection(name, indexer)
            for rec_id in range(count):
                handle.insert(cls(rec_id, balance=0))
            ct.commit()
        ct = self.store.transaction()
        ct.create_collection("history", self._indexers["history"])
        ct.commit()

    # -- one TPC-B transaction -----------------------------------------------------

    def txn_once(self) -> None:
        account_id = self.rng.randrange(self.scale.accounts)
        teller_id = self.rng.randrange(self.scale.tellers)
        branch_id = self.rng.randrange(self.scale.branches)
        delta = self.rng.randrange(-99999, 99999)
        ct = self.store.transaction()
        try:
            for name, rec_id in (
                ("account", account_id),
                ("teller", teller_id),
                ("branch", branch_id),
            ):
                handle = ct.write_collection(name)
                iterator = handle.query_match(self._indexers[name], rec_id)
                record = iterator.write()
                record.balance += delta
                iterator.next()
                iterator.close()
            history = ct.write_collection("history")
            self._history_seq += 1
            history.insert(
                HistoryRec(self._history_seq, account_id, teller_id, branch_id, delta)
            )
            ct.commit(durable=self.durable)
        except Exception:
            if ct.active:
                ct.abort()
            raise

    # -- measured run ------------------------------------------------------------------

    def run(self, transactions: int) -> LatencyStats:
        latency = LatencyStats()
        for _ in range(transactions):
            with Stopwatch(latency):
                self.txn_once()
        return latency

    def db_size_bytes(self) -> int:
        return self.chunk_store.stats().capacity_bytes

    def close(self) -> None:
        self.store.close()


class BaselineTpcbDriver:
    """TPC-B over the Berkeley-DB-style baseline engine."""

    RECORD = struct.Struct(">Iq88s")  # id, balance, filler = 100 bytes

    def __init__(
        self,
        scale: TpcbScale,
        config: Optional[BaselineConfig] = None,
        seed: int = 7,
        access_method: str = "btree",
        cache_bytes: int = 4 * 1024 * 1024,
    ) -> None:
        self.scale = scale
        self.rng = random.Random(seed)
        self.untrusted = MemoryUntrustedStore()
        self.db = BaselineDB.create(
            self.untrusted,
            config
            or BaselineConfig(page_size=4096, cache_bytes=cache_bytes, fsync=True),
        )
        for table in ("account", "teller", "branch"):
            self.db.create_table(table, access_method)
        self.db.create_table("history", "btree")
        self._history_seq = 0

    @staticmethod
    def key_of(rec_id: int) -> bytes:
        return struct.pack(">I", rec_id)

    def encode(self, rec_id: int, balance: int) -> bytes:
        return self.RECORD.pack(rec_id, balance, b"\x2e" * 88)

    def decode_balance(self, value: bytes) -> int:
        return self.RECORD.unpack(value)[1]

    def load(self) -> None:
        plan = [
            ("account", self.scale.accounts),
            ("teller", self.scale.tellers),
            ("branch", self.scale.branches),
        ]
        for table, count in plan:
            with self.db.begin() as txn:
                for rec_id in range(count):
                    txn.put(table, self.key_of(rec_id), self.encode(rec_id, 0))

    def txn_once(self) -> None:
        account_id = self.rng.randrange(self.scale.accounts)
        teller_id = self.rng.randrange(self.scale.tellers)
        branch_id = self.rng.randrange(self.scale.branches)
        delta = self.rng.randrange(-99999, 99999)
        with self.db.begin() as txn:
            for table, rec_id in (
                ("account", account_id),
                ("teller", teller_id),
                ("branch", branch_id),
            ):
                key = self.key_of(rec_id)
                balance = self.decode_balance(txn.get(table, key))
                txn.put(table, key, self.encode(rec_id, balance + delta))
            self._history_seq += 1
            history_value = struct.pack(
                ">IIIq76s",
                account_id,
                teller_id,
                branch_id,
                delta,
                b"\x2e" * 76,
            )
            txn.put("history", self.key_of(self._history_seq), history_value)

    def run(self, transactions: int) -> LatencyStats:
        latency = LatencyStats()
        for _ in range(transactions):
            with Stopwatch(latency):
                self.txn_once()
        return latency

    def db_size_bytes(self) -> int:
        return self.db.stats().total_bytes

    def close(self) -> None:
        self.db.close()


def _print_figure9(scale: TpcbScale) -> None:
    """Print the Figure 9 table (collections and initial sizes)."""
    print("Figure 9 — TPC-B collections and sizes")
    print(f"{'Collection':<12} {'paper size':>12} {'this run':>12}")
    paper = TpcbScale.paper()
    rows = [
        ("Account", paper.accounts, scale.accounts),
        ("Teller", paper.tellers, scale.tellers),
        ("Branch", paper.branches, scale.branches),
        ("History", 252_000, "grows 1/txn"),
    ]
    for name, paper_size, ours in rows:
        print(f"{name:<12} {paper_size:>12} {ours!s:>12}")
    print(
        "objects are 100 bytes with 4-byte unique ids; a transaction "
        "updates one random Account, Teller, and Branch object and "
        "inserts one History object"
    )


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description="TPC-B workload utilities")
    parser.add_argument(
        "--show-schema", action="store_true", help="print the Figure 9 table"
    )
    parser.add_argument("--accounts", type=int, default=TpcbScale().accounts)
    parser.add_argument("--tellers", type=int, default=TpcbScale().tellers)
    parser.add_argument("--branches", type=int, default=TpcbScale().branches)
    args = parser.parse_args()
    scale = TpcbScale(args.accounts, args.tellers, args.branches)
    _print_figure9(scale)


if __name__ == "__main__":
    main()
