"""Exception hierarchy for the TDB reproduction.

Every error raised by the library derives from :class:`TDBError`, so an
embedding application can catch one type at its top level.  Security
failures (tampering, replay) form their own branch because DRM
applications typically treat them very differently from ordinary
programming or resource errors: the paper's chunk store *signals tamper
detection* rather than returning corrupt data.
"""

from __future__ import annotations

__all__ = [
    "TDBError",
    "ConfigError",
    "SecurityError",
    "TamperDetectedError",
    "ReplayDetectedError",
    "CryptoError",
    "StoreError",
    "TransientStoreError",
    "ChunkStoreError",
    "ChunkNotFoundError",
    "ChunkStoreFullError",
    "RecoveryError",
    "SnapshotError",
    "BackupError",
    "RestoreSequenceError",
    "RepairError",
    "ReadOnlyStoreError",
    "SalvageReadOnlyError",
    "ObjectStoreError",
    "ObjectNotFoundError",
    "TransactionError",
    "TransactionInactiveError",
    "StaleRefError",
    "ReadOnlyViolationError",
    "TypeCheckError",
    "LockTimeoutError",
    "PicklingError",
    "UnknownClassError",
    "CollectionStoreError",
    "DuplicateKeyError",
    "IndexIntegrityError",
    "IteratorStateError",
    "SchemaError",
    "BaselineError",
    "ServerError",
    "ProtocolError",
    "ServerBusyError",
    "SessionStateError",
    "CommitInDoubtError",
    "FeatureUnavailableError",
    "TenancyError",
    "AuthRequiredError",
    "AuthFailedError",
    "PermissionDeniedError",
    "QuotaExceededError",
    "ReplicationError",
    "ReadOnlyReplicaError",
    "ProofError",
    "InvalidProofError",
    "RollbackDetectedError",
    "ForkDetectedError",
]


class TDBError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(TDBError, ValueError):
    """A configuration object was built with invalid knob values.

    Raised *at profile construction time* — an unknown cipher, hash, or
    crypto-engine name fails here with the list of valid names, instead
    of surfacing later as a cryptic error deep inside cipher or store
    construction.  Subclasses :class:`ValueError` so pre-existing
    callers that caught ``ValueError`` keep working.
    """


# ---------------------------------------------------------------------------
# Security failures
# ---------------------------------------------------------------------------

class SecurityError(TDBError):
    """Base class for secrecy / integrity failures."""


class TamperDetectedError(SecurityError):
    """Persistent state failed hash or MAC validation.

    Raised when a chunk, a location-map node, a commit record, the master
    record, or a backup stream does not match its authenticated digest,
    i.e. an attacker (or bit rot) modified the untrusted store.
    """


class ReplayDetectedError(TamperDetectedError):
    """The database image is internally consistent but *old*.

    Detected by comparing the one-way counter value bound into the latest
    durable commit with the actual hardware counter: a consumer restored a
    saved copy of the database to roll back purchases (paper section 3).
    """


class CryptoError(SecurityError):
    """Malformed ciphertext, bad padding, wrong key size, etc."""


# ---------------------------------------------------------------------------
# Storage layers
# ---------------------------------------------------------------------------

class StoreError(TDBError):
    """Base class for platform-store errors (untrusted/archival/counter)."""


class TransientStoreError(StoreError):
    """A media operation failed in a way that may succeed if retried.

    Removable or flaky media (the paper's consumer devices) produce
    transient I/O faults — interrupted system calls, busy devices,
    recoverable read errors.  The resilient store wrapper retries these
    with bounded backoff; only when retries are exhausted does the error
    escape to the caller, still as a :class:`StoreError` subclass.
    """


class ChunkStoreError(TDBError):
    """Base class for chunk-store errors."""


class ChunkNotFoundError(ChunkStoreError, KeyError):
    """The chunk id is not allocated or has no written state."""

    def __str__(self) -> str:  # KeyError quotes its argument; keep message readable
        return Exception.__str__(self)


class ChunkStoreFullError(ChunkStoreError):
    """The store cannot grow and cleaning freed no space."""


class RecoveryError(ChunkStoreError):
    """The residual log or master record is structurally unusable."""


class SnapshotError(ChunkStoreError):
    """Invalid snapshot handle or snapshot-related misuse."""


class BackupError(TDBError):
    """Base class for backup-store errors."""


class RestoreSequenceError(BackupError):
    """Incremental backups presented out of order or on the wrong base."""


class RepairError(TDBError):
    """Damage could not be healed from the available backup chain."""


class ReadOnlyStoreError(ChunkStoreError):
    """Mutation attempted on a store opened in a read-only mode."""


class SalvageReadOnlyError(ReadOnlyStoreError):
    """Mutation attempted on a store opened in read-only salvage mode."""


# ---------------------------------------------------------------------------
# Object store
# ---------------------------------------------------------------------------

class ObjectStoreError(TDBError):
    """Base class for object-store errors."""


class ObjectNotFoundError(ObjectStoreError, KeyError):
    """No object is stored under the given object id."""

    def __str__(self) -> str:
        return Exception.__str__(self)


class TransactionError(ObjectStoreError):
    """Transaction-level misuse (commit twice, use after abort, ...)."""


class TransactionInactiveError(TransactionError):
    """Operation attempted on a committed or aborted transaction."""


class StaleRefError(TransactionError):
    """A Ref outlived the transaction that created it (paper section 4.1)."""


class ReadOnlyViolationError(ObjectStoreError):
    """Attempt to mutate an object through a ReadonlyRef."""


class TypeCheckError(ObjectStoreError, TypeError):
    """Dynamic type check failed when dereferencing or inserting."""


class LockTimeoutError(ObjectStoreError):
    """A transactional lock could not be acquired within the timeout.

    The paper breaks potential deadlocks with lock timeouts; applications
    are expected to retry the operation or abort the transaction.
    """


class PicklingError(ObjectStoreError):
    """Object could not be pickled or unpickled."""


class UnknownClassError(PicklingError):
    """No unpickler registered for the stored class id."""


# ---------------------------------------------------------------------------
# Collection store
# ---------------------------------------------------------------------------

class CollectionStoreError(TDBError):
    """Base class for collection-store errors."""


class DuplicateKeyError(CollectionStoreError):
    """Immediate uniqueness violation on insert or index creation."""

    def __init__(self, message: str, key: object = None) -> None:
        super().__init__(message)
        self.key = key


class IndexIntegrityError(CollectionStoreError):
    """Deferred uniqueness violation detected at iterator close.

    The collection store removed the violating objects from the collection
    (paper section 5.2.3); their ids are carried so the application can
    re-integrate them.
    """

    def __init__(self, message: str, removed_object_ids: list) -> None:
        super().__init__(message)
        self.removed_object_ids = list(removed_object_ids)


class IteratorStateError(CollectionStoreError):
    """Iterator misuse: second writable iterator, dereference past end, ..."""


class SchemaError(CollectionStoreError):
    """Object or key does not conform to the collection schema."""


# ---------------------------------------------------------------------------
# Baseline engine
# ---------------------------------------------------------------------------

class BaselineError(TDBError):
    """Base class for errors from the Berkeley-DB-style baseline engine."""


# ---------------------------------------------------------------------------
# Service layer (repro.server)
# ---------------------------------------------------------------------------

class ServerError(TDBError):
    """Base class for errors of the networked service layer."""


class ProtocolError(ServerError):
    """Malformed frame, unknown verb, or missing / ill-typed parameters."""


class ServerBusyError(ServerError):
    """Admission control rejected the request (session or commit-queue
    limit reached).  Transient by design: clients back off and retry."""


class SessionStateError(ServerError):
    """Verb issued in the wrong session state (no open transaction, a
    transaction already open, or a verb of the other transaction mode)."""


class CommitInDoubtError(ServerError):
    """The outcome of a tokened commit could not be determined.

    Raised client-side when the connection died during ``commit`` and
    ``commit.result`` cannot produce an authoritative answer — the
    server restarted (losing its in-memory token cache) or stayed
    unreachable past the resolution deadline.  Deliberately *not*
    transient: retrying the transaction could double-apply it, so the
    application must reconcile against database state before retrying.
    """


class FeatureUnavailableError(ServerError):
    """The verb exists in the protocol but this frontend cannot serve it.

    Structured refusal for capability gaps — e.g. ``repl.*`` / ``proof.*``
    / ``log.*`` on a sharded layout, whose stores are per-shard so there
    is no single replication stream or transparency head to serve.  Not
    transient: retrying the same verb against the same server cannot
    succeed; clients should consult the ``hello`` feature list (absent
    verbs are advertised there) and route to a frontend that has the
    feature.
    """


# ---------------------------------------------------------------------------
# Multi-tenant hub (repro.tenancy)
# ---------------------------------------------------------------------------

class TenancyError(ServerError):
    """Base class for multi-tenant hub errors (registry, identity, policy)."""


class AuthRequiredError(TenancyError):
    """A verb needing a ``(tenant, principal)`` identity arrived on a
    session that has not completed the ``auth`` challenge–response."""


class AuthFailedError(TenancyError):
    """The ``auth`` challenge–response failed.

    Deliberately one class and one shape of message for every failure
    mode — unknown tenant, unknown principal, wrong key, replayed or
    missing challenge — so the wire leaks nothing about *which* part was
    wrong (a DRM hub must not be a tenant-name oracle)."""


class PermissionDeniedError(TenancyError):
    """The session's principal holds no grant covering the verb's scope.

    Policy is deny-by-default: absence of a matching ``read`` / ``write``
    / ``admin`` grant (exact collection scope, the ``objects`` scope, or
    the ``*`` wildcard) refuses the verb.  Not transient — retrying
    cannot succeed until an admin grants the right."""


class QuotaExceededError(ServerBusyError):
    """A per-tenant quota refused the operation (sessions, pending
    commits, stored bytes, or the txn/s token bucket).

    A :class:`ServerBusyError` subclass so it is marshalled transient:
    well-behaved clients back off and retry, and one tenant saturating
    its budget degrades only that tenant."""


# ---------------------------------------------------------------------------
# Replication (repro.replication)
# ---------------------------------------------------------------------------

class ReplicationError(TDBError):
    """Base class for replication-layer errors (shipper / applier)."""


class ReadOnlyReplicaError(ReplicationError):
    """A mutating verb reached a server running in read-only replica mode.

    Permanent by design: the client must talk to the primary (or wait for
    a ``promote``), so it is *not* marshalled as transient."""


# ---------------------------------------------------------------------------
# Client-verifiable proofs (repro.proofs)
# ---------------------------------------------------------------------------

class ProofError(SecurityError):
    """Base class for proof / transparency-log verification failures.

    A :class:`SecurityError` subclass deliberately — a proof that does
    not verify means the server (or the path to it) cannot be trusted,
    the same severity class as on-media tamper detection."""


class InvalidProofError(ProofError):
    """A Merkle inclusion or non-membership proof failed verification.

    The proof's node chain does not hash up to the signed commit head:
    a digest mismatch, a node identity mismatch, a wrong walk shape, or
    a payload that does not match its leaf locator."""


class RollbackDetectedError(ProofError):
    """The server presented an older commit head than one already verified.

    The client-side analogue of :class:`ReplayDetectedError`: monotonic
    head pinning refuses any head whose index regresses below the pin."""


class ForkDetectedError(ProofError):
    """Two different signed heads claim the same head-log index.

    Equivocation: the signer produced divergent histories (or an attacker
    holds the device secret).  Caught by head gossip between clients,
    auditors, and replicas."""
