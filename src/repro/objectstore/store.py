"""The :class:`ObjectStore` facade.

Assembles the object layer over a chunk store::

    object_store = ObjectStore.create(chunk_store)     # fresh database
    object_store = ObjectStore.attach(chunk_store)     # existing database

    with object_store.transaction() as txn:
        oid = txn.insert(Meter())
        txn.set_root(oid)

The store owns the lock manager, the class registry, and the catalog — a
reserved persistent object holding the root object id and the name
registry (named objects are what the collection store builds on).  The
shared LRU cache is the chunk store's: object-cache entries and
location-map nodes compete for one budget, as in the paper.
"""

from __future__ import annotations

import itertools
import threading
from typing import Dict, Optional

from repro.chunkstore import ChunkStore
from repro.config import ObjectStoreConfig
from repro.errors import ObjectStoreError, PicklingError
from repro.objectstore.encoding import BufferReader, BufferWriter
from repro.objectstore.locks import LockManager
from repro.objectstore.persistent import ClassRegistry, Persistent, global_registry
from repro.objectstore.transaction import _OBJ_NS, Transaction

__all__ = ["ObjectStore", "Catalog"]


class Catalog(Persistent):
    """The reserved object holding the root id and the name registry."""

    class_id = "tdb.catalog"

    def __init__(self) -> None:
        self.root_oid: Optional[int] = None
        self.names: Dict[str, int] = {}

    def pickle(self) -> bytes:
        writer = BufferWriter()
        writer.write_optional_uint(self.root_oid)
        writer.write_list(
            sorted(self.names.items()),
            lambda w, item: (w.write_str(item[0]), w.write_uint(item[1])),
        )
        return writer.getvalue()

    @classmethod
    def unpickle(cls, data: bytes) -> "Catalog":
        reader = BufferReader(data)
        catalog = cls()
        catalog.root_oid = reader.read_optional_uint()
        pairs = reader.read_list(lambda r: (r.read_str(), r.read_uint()))
        catalog.names = dict(pairs)
        reader.expect_end()
        return catalog


class ObjectStore:
    """Type-safe transactional access to named persistent objects."""

    def __init__(
        self,
        chunk_store: ChunkStore,
        config: Optional[ObjectStoreConfig] = None,
        registry: Optional[ClassRegistry] = None,
        catalog_oid: int = 0,
    ) -> None:
        self.chunk_store = chunk_store
        self.config = config or ObjectStoreConfig()
        self.registry = registry or global_registry
        self.cache = chunk_store.cache
        self.mutex = threading.RLock()
        self.locks = LockManager(
            enabled=self.config.locking, timeout=self.config.lock_timeout
        )
        self.catalog_oid = catalog_oid
        self._txn_ids = itertools.count(1)
        self._closed = False
        # Where transaction commits land.  By default straight on the
        # chunk store; the service layer swaps in a group-commit
        # coordinator so concurrent committers share one log append, one
        # sync, and one counter advance.  The callable must have the
        # signature of :meth:`ChunkStore.commit`.
        self.commit_sink = chunk_store.commit
        self.registry.register(Catalog)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        chunk_store: ChunkStore,
        config: Optional[ObjectStoreConfig] = None,
        registry: Optional[ClassRegistry] = None,
    ) -> "ObjectStore":
        """Initialize the object layer on a freshly formatted chunk store."""
        store = cls(chunk_store, config, registry)
        catalog_oid = chunk_store.allocate_chunk_id()
        store.catalog_oid = catalog_oid
        payload = store.registry.pickle_object(Catalog())
        chunk_store.commit({catalog_oid: payload}, durable=True)
        return store

    @classmethod
    def attach(
        cls,
        chunk_store: ChunkStore,
        config: Optional[ObjectStoreConfig] = None,
        registry: Optional[ClassRegistry] = None,
        catalog_oid: int = 0,
    ) -> "ObjectStore":
        """Open the object layer of an existing database."""
        store = cls(chunk_store, config, registry, catalog_oid)
        try:
            payload = chunk_store.read(catalog_oid)
        except Exception as exc:
            raise ObjectStoreError(
                f"no object-store catalog at chunk id {catalog_oid}: {exc}"
            ) from exc
        obj = store.registry.unpickle_object(payload)
        if not isinstance(obj, Catalog):
            raise PicklingError(
                f"chunk {catalog_oid} holds {type(obj).__name__}, not the catalog"
            )
        return store

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def transaction(self) -> Transaction:
        """Begin a new transaction."""
        if self._closed:
            raise ObjectStoreError("object store is closed")
        return Transaction(self, next(self._txn_ids))

    def _transaction_finished(self, txn: Transaction) -> None:
        """Hook for subclasses / bookkeeping; currently a no-op."""

    def evict(self, oid: int) -> None:
        """Drop any cached unpickled instance of ``oid``.

        For callers that apply chunk-level state *around* the object
        layer — crash recovery replaying a redo record straight into the
        chunk store — so the next reader re-unpickles the authoritative
        bytes instead of a stale cached instance.
        """
        with self.mutex:
            self.cache.remove(_OBJ_NS, oid)

    def submit_commit(self, writes, deallocs, durable: bool = True) -> None:
        """Apply a transaction's write set through the commit sink.

        Called by :meth:`Transaction.commit` *outside* the store mutex:
        a group-commit sink blocks the caller until its batch is
        durable, and holding the mutex there would serialize committers
        and forbid batching altogether.  Strict 2PL makes this safe —
        the objects involved stay exclusively locked until the commit
        has returned.
        """
        self.commit_sink(writes, deallocs, durable=durable)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close the object layer and the chunk store beneath it."""
        if self._closed:
            return
        self._closed = True
        self.chunk_store.close()

    def __enter__(self) -> "ObjectStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
