"""Smart references: the ``ReadonlyRef`` / ``WritableRef`` proxies.

The paper's C++ store hands out templatized smart pointers whose misuse
is caught by static and dynamic checks.  In Python everything is dynamic,
so the refs enforce at runtime that

* a ref is only dereferenced while its transaction is active — reusing a
  ref from a previous transaction raises :class:`StaleRefError`, forcing
  the application to re-open (and therefore re-lock) the object,
* a :class:`ReadonlyRef` rejects attribute assignment and deletion with
  :class:`ReadOnlyViolationError`,
* a typed dereference (``expected_type`` at open, mirroring
  ``Ref<MyObject>`` construction) raises :class:`TypeCheckError` on a
  subtype mismatch.

As in the paper, these checks catch common programming mistakes rather
than provide an unyielding safe environment: a read-only ref cannot stop
code that reaches *through* an attribute and mutates shared state.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ReadOnlyViolationError, StaleRefError

__all__ = ["ReadonlyRef", "WritableRef"]

_INTERNAL = ("_transaction", "_oid", "_target")


class _RefBase:
    """Common proxy machinery; never instantiated directly."""

    def __init__(self, transaction, oid: int, target) -> None:
        object.__setattr__(self, "_transaction", transaction)
        object.__setattr__(self, "_oid", oid)
        object.__setattr__(self, "_target", target)

    # -- validity ---------------------------------------------------------------

    def _check_valid(self):
        transaction = object.__getattribute__(self, "_transaction")
        if not transaction.active:
            raise StaleRefError(
                "ref used outside its transaction: open the object again "
                "in the current transaction"
            )
        return object.__getattribute__(self, "_target")

    @property
    def oid(self) -> int:
        """The persistent object id this ref points at (always readable)."""
        return object.__getattribute__(self, "_oid")

    @property
    def valid(self) -> bool:
        return object.__getattribute__(self, "_transaction").active

    def deref(self):
        """Return the underlying object after the validity check.

        The dereference also refreshes the object's LRU position, like
        the paper's ``operator->``.
        """
        target = self._check_valid()
        transaction = object.__getattribute__(self, "_transaction")
        transaction._touch(self.oid)
        return target

    # -- attribute proxying -------------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        return getattr(self.deref(), name)

    def __repr__(self) -> str:
        kind = type(self).__name__
        state = "valid" if self.valid else "stale"
        return f"<{kind} oid={self.oid} {state}>"

    def __eq__(self, other) -> bool:
        if not isinstance(other, _RefBase):
            return NotImplemented
        return (
            self.oid == other.oid
            and object.__getattribute__(self, "_transaction")
            is object.__getattribute__(other, "_transaction")
        )

    def __hash__(self) -> int:
        return hash((id(object.__getattribute__(self, "_transaction")), self.oid))


class ReadonlyRef(_RefBase):
    """Read-only view of a persistent object (const access in the paper)."""

    def __setattr__(self, name: str, value) -> None:
        raise ReadOnlyViolationError(
            f"cannot set {name!r} through a ReadonlyRef; open the object "
            "writable instead"
        )

    def __delattr__(self, name: str) -> None:
        raise ReadOnlyViolationError(
            f"cannot delete {name!r} through a ReadonlyRef"
        )


class WritableRef(_RefBase):
    """Read-write view of a persistent object."""

    def __setattr__(self, name: str, value) -> None:
        if name in _INTERNAL:
            object.__setattr__(self, name, value)
            return
        setattr(self.deref(), name, value)

    def __delattr__(self, name: str) -> None:
        delattr(self.deref(), name)
