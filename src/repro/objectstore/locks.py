"""Transactional locking: shared/exclusive object locks with timeouts.

Strict two-phase locking (paper section 4.2.3): a transaction acquires a
shared lock to read an object and an exclusive lock to insert, write, or
remove it, and holds every lock until it ends.  There is no deadlock
*prevention* — a blocked acquire simply times out and raises
:class:`LockTimeoutError`, breaking the potential deadlock; the
application retries the operation or aborts the transaction.

The lock table has its own mutex, released while waiting (the paper's
"state mutex is released when a thread waits on a transactional lock").
A disabled manager (``enabled=False``) grants everything immediately for
single-threaded embeddings that want zero locking overhead.
"""

from __future__ import annotations

import enum
import threading
import time
from collections import defaultdict
from typing import Dict, Set

from repro.errors import LockTimeoutError

__all__ = ["LockMode", "LockManager"]


class LockMode(enum.Enum):
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


class _ObjectLock:
    """State of one object's lock: holders and their modes."""

    __slots__ = ("sharers", "owner")

    def __init__(self) -> None:
        self.sharers: Set[int] = set()
        self.owner: int = -1  # exclusive holder, -1 when none

    def is_free_for(self, txn_id: int, mode: LockMode) -> bool:
        if self.owner not in (-1, txn_id):
            return False
        if mode is LockMode.SHARED:
            return True
        # Exclusive: no other sharers may remain.
        others = self.sharers - {txn_id}
        return not others


class LockManager:
    """Shared/exclusive lock table keyed by object id."""

    def __init__(self, enabled: bool = True, timeout: float = 2.0) -> None:
        if timeout <= 0:
            raise ValueError("lock timeout must be positive")
        self.enabled = enabled
        self.timeout = timeout
        self._mutex = threading.Lock()
        self._changed = threading.Condition(self._mutex)
        self._locks: Dict[int, _ObjectLock] = {}
        self._held: Dict[int, Set[int]] = defaultdict(set)  # txn -> oids

    def acquire(self, txn_id: int, oid: int, mode: LockMode) -> None:
        """Block until the lock is granted or the timeout expires."""
        if not self.enabled:
            return
        deadline = time.monotonic() + self.timeout
        with self._changed:
            lock = self._locks.setdefault(oid, _ObjectLock())
            while not lock.is_free_for(txn_id, mode):
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._changed.wait(remaining):
                    raise LockTimeoutError(
                        f"transaction {txn_id} timed out waiting for a "
                        f"{mode.value} lock on object {oid} "
                        "(possible deadlock; retry or abort)"
                    )
                # A releasing transaction may have dropped the table entry;
                # waiters must re-fetch it or they would mutate a detached
                # lock object and grant ownership invisibly.
                lock = self._locks.setdefault(oid, _ObjectLock())
            if mode is LockMode.SHARED:
                lock.sharers.add(txn_id)
            else:
                lock.owner = txn_id
                lock.sharers.discard(txn_id)  # upgrade folds the share away
            self._held[txn_id].add(oid)

    def release_all(self, txn_id: int) -> None:
        """Drop every lock a transaction holds (strict 2PL release point)."""
        if not self.enabled:
            return
        with self._changed:
            for oid in self._held.pop(txn_id, set()):
                lock = self._locks.get(oid)
                if lock is None:
                    continue
                lock.sharers.discard(txn_id)
                if lock.owner == txn_id:
                    lock.owner = -1
                if not lock.sharers and lock.owner == -1:
                    del self._locks[oid]
            self._changed.notify_all()

    # -- introspection (tests, debugging) ---------------------------------------

    def holds(self, txn_id: int, oid: int, mode: LockMode) -> bool:
        if not self.enabled:
            return True
        with self._mutex:
            lock = self._locks.get(oid)
            if lock is None:
                return False
            if mode is LockMode.EXCLUSIVE:
                return lock.owner == txn_id
            return txn_id in lock.sharers or lock.owner == txn_id

    def held_object_ids(self, txn_id: int) -> Set[int]:
        with self._mutex:
            return set(self._held.get(txn_id, set()))
