"""The object store: typed, transactional storage of application objects.

Python adaptation of the paper's C++-integrated object store (section 4):

* applications define persistent classes by subclassing
  :class:`Persistent` and registering them under a stable ``class_id``
  with explicit pickle/unpickle implementations (helpers for basic types
  live in :mod:`repro.objectstore.encoding`),
* a :class:`Transaction` inserts, opens, and removes objects; objects are
  accessed through :class:`ReadonlyRef` / :class:`WritableRef` proxies
  that enforce the paper's checks at runtime — refs die with their
  transaction, read-only refs reject mutation, dereferences are
  type-checked,
* isolation is strict two-phase locking with shared/exclusive object
  locks and timeout-based deadlock breaking; locking can be switched off
  for single-threaded embeddings,
* recently-used and dirty objects live in the shared LRU cache (one
  object per chunk, so ``ObjectId == ChunkId``); dirty objects are pinned
  until commit (the no-steal policy).
"""

from repro.objectstore.persistent import (
    Persistent,
    ClassRegistry,
    global_registry,
    register_class,
)
from repro.objectstore.encoding import BufferReader, BufferWriter
from repro.objectstore.refs import ReadonlyRef, WritableRef
from repro.objectstore.locks import LockManager, LockMode
from repro.objectstore.transaction import Transaction
from repro.objectstore.store import ObjectStore

__all__ = [
    "Persistent",
    "ClassRegistry",
    "global_registry",
    "register_class",
    "BufferReader",
    "BufferWriter",
    "ReadonlyRef",
    "WritableRef",
    "LockManager",
    "LockMode",
    "Transaction",
    "ObjectStore",
]
