"""Architecture-independent pickling helpers for basic types.

The paper: "TDB provides implementations of pickling and unpickling
operations for basic types" and suggests an architecture-independent
format so a database can move between platforms.  All encodings here are
big-endian and fixed-width or length-prefixed — no platform-dependent
sizes, no Python ``pickle``.
"""

from __future__ import annotations

import struct
from typing import Callable, List, Optional

from repro.errors import PicklingError

__all__ = ["BufferWriter", "BufferReader"]

_I64 = struct.Struct(">q")
_U64 = struct.Struct(">Q")
_U32 = struct.Struct(">I")
_F64 = struct.Struct(">d")


class BufferWriter:
    """Accumulates an architecture-independent byte encoding."""

    def __init__(self) -> None:
        self._parts: List[bytes] = []

    def getvalue(self) -> bytes:
        return b"".join(self._parts)

    def write_raw(self, data: bytes) -> "BufferWriter":
        """Append raw bytes (caller owns framing)."""
        self._parts.append(bytes(data))
        return self

    def write_int(self, value: int) -> "BufferWriter":
        """Signed 64-bit integer."""
        try:
            self._parts.append(_I64.pack(value))
        except struct.error as exc:
            raise PicklingError(f"integer out of 64-bit range: {value}") from exc
        return self

    def write_uint(self, value: int) -> "BufferWriter":
        """Unsigned 64-bit integer (object ids, counters)."""
        try:
            self._parts.append(_U64.pack(value))
        except struct.error as exc:
            raise PicklingError(f"value out of unsigned 64-bit range: {value}") from exc
        return self

    def write_bool(self, value: bool) -> "BufferWriter":
        self._parts.append(b"\x01" if value else b"\x00")
        return self

    def write_float(self, value: float) -> "BufferWriter":
        """IEEE-754 double."""
        self._parts.append(_F64.pack(value))
        return self

    def write_bytes(self, value: bytes) -> "BufferWriter":
        """Length-prefixed byte string."""
        self._parts.append(_U32.pack(len(value)))
        self._parts.append(bytes(value))
        return self

    def write_str(self, value: str) -> "BufferWriter":
        """Length-prefixed UTF-8 string."""
        return self.write_bytes(value.encode("utf-8"))

    def write_optional_uint(self, value: Optional[int]) -> "BufferWriter":
        """``None`` or an unsigned 64-bit integer."""
        if value is None:
            return self.write_bool(False)
        self.write_bool(True)
        return self.write_uint(value)

    def write_list(self, values, item_writer: Callable) -> "BufferWriter":
        """Length-prefixed list; ``item_writer(writer, item)`` per item."""
        items = list(values)
        self._parts.append(_U32.pack(len(items)))
        for item in items:
            item_writer(self, item)
        return self

    def write_uint_list(self, values) -> "BufferWriter":
        """Length-prefixed list of unsigned 64-bit integers (bulk-packed)."""
        items = list(values)
        try:
            self._parts.append(_U32.pack(len(items)))
            self._parts.append(struct.pack(f">{len(items)}Q", *items))
        except struct.error as exc:
            raise PicklingError(f"uint list out of range: {exc}") from exc
        return self


class BufferReader:
    """Cursor over a :class:`BufferWriter` encoding."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._offset = 0

    def _take(self, nbytes: int) -> bytes:
        end = self._offset + nbytes
        if end > len(self._data):
            raise PicklingError(
                f"truncated pickle: wanted {nbytes} bytes at offset "
                f"{self._offset}, only {len(self._data) - self._offset} left"
            )
        piece = self._data[self._offset:end]
        self._offset = end
        return piece

    def at_end(self) -> bool:
        return self._offset == len(self._data)

    def expect_end(self) -> None:
        """Raise unless the whole pickle was consumed (catches drift)."""
        if not self.at_end():
            raise PicklingError(
                f"{len(self._data) - self._offset} unread bytes after unpickle"
            )

    def read_int(self) -> int:
        return _I64.unpack(self._take(_I64.size))[0]

    def read_uint(self) -> int:
        return _U64.unpack(self._take(_U64.size))[0]

    def read_bool(self) -> bool:
        flag = self._take(1)[0]
        if flag not in (0, 1):
            raise PicklingError(f"invalid boolean byte {flag}")
        return flag == 1

    def read_float(self) -> float:
        return _F64.unpack(self._take(_F64.size))[0]

    def read_bytes(self) -> bytes:
        length = _U32.unpack(self._take(_U32.size))[0]
        return self._take(length)

    def read_str(self) -> str:
        try:
            return self.read_bytes().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise PicklingError(f"invalid UTF-8 in pickled string: {exc}") from exc

    def read_optional_uint(self) -> Optional[int]:
        if not self.read_bool():
            return None
        return self.read_uint()

    def read_list(self, item_reader: Callable) -> list:
        count = _U32.unpack(self._take(_U32.size))[0]
        return [item_reader(self) for _ in range(count)]

    def read_uint_list(self) -> List[int]:
        """Bulk-unpacked counterpart of :meth:`BufferWriter.write_uint_list`."""
        count = _U32.unpack(self._take(_U32.size))[0]
        raw = self._take(count * _U64.size)
        return list(struct.unpack(f">{count}Q", raw))
