"""Persistent object base class and the class registry.

Every persistent object is an instance of an application-defined
subclass of :class:`Persistent` (the paper's ``Object``).  A subclass
must

* declare a ``class_id`` that is unique across all persistent classes and
  stable across restarts (it is stored with every pickled object),
* implement ``pickle()`` returning bytes and the classmethod
  ``unpickle(data)`` returning a new instance, and
* be registered (``register_class`` or ``ClassRegistry.register``) so the
  object store can find the unpickler.

The stored representation of an object is ``class_id`` (length-prefixed)
followed by the subclass's pickled body.
"""

from __future__ import annotations

import struct
from typing import Dict, Type

from repro.errors import PicklingError, UnknownClassError

__all__ = ["Persistent", "ClassRegistry", "global_registry", "register_class"]

_U16 = struct.Struct(">H")


class Persistent:
    """Base class for objects stored in the object store."""

    #: Unique, stable identifier of the persistent class.  The object
    #: store provides no automatic assignment — collisions would corrupt
    #: unpickling, so applications own this namespace explicitly.
    class_id: str = ""

    def pickle(self) -> bytes:
        """Serialize this object's state to bytes (subclass hook)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement pickle()"
        )

    @classmethod
    def unpickle(cls, data: bytes) -> "Persistent":
        """Construct an instance from :meth:`pickle` output (subclass hook)."""
        raise NotImplementedError(
            f"{cls.__name__} does not implement unpickle()"
        )

    def cache_charge(self) -> int:
        """Approximate in-memory footprint for the shared cache.

        Subclasses with large transient state may override; the default
        charges a flat object overhead plus the instance dict.
        """
        base = 96
        attrs = getattr(self, "__dict__", None)
        if attrs:
            base += 64 * len(attrs)
        return base


class ClassRegistry:
    """Maps class ids to unpickling constructors (paper section 4.1)."""

    def __init__(self) -> None:
        self._classes: Dict[str, Type[Persistent]] = {}

    def register(self, cls: Type[Persistent]) -> Type[Persistent]:
        """Register a persistent class; usable as a decorator."""
        if not issubclass(cls, Persistent):
            raise PicklingError(f"{cls.__name__} is not a Persistent subclass")
        class_id = cls.class_id
        if not class_id:
            raise PicklingError(f"{cls.__name__} has an empty class_id")
        existing = self._classes.get(class_id)
        if existing is not None and existing is not cls:
            raise PicklingError(
                f"class_id {class_id!r} already registered by "
                f"{existing.__name__}"
            )
        self._classes[class_id] = cls
        return cls

    def lookup(self, class_id: str) -> Type[Persistent]:
        cls = self._classes.get(class_id)
        if cls is None:
            raise UnknownClassError(
                f"no persistent class registered under {class_id!r}"
            )
        return cls

    def is_registered(self, class_id: str) -> bool:
        return class_id in self._classes

    # -- stored representation -------------------------------------------------

    def pickle_object(self, obj: Persistent) -> bytes:
        """Produce the stored form: class id header + subclass body."""
        cls = type(obj)
        if not self.is_registered(cls.class_id) or self._classes[cls.class_id] is not cls:
            raise PicklingError(
                f"{cls.__name__} (class_id {cls.class_id!r}) is not registered"
            )
        class_id_bytes = cls.class_id.encode("utf-8")
        if len(class_id_bytes) > 0xFFFF:
            raise PicklingError("class_id longer than 65535 bytes")
        body = obj.pickle()
        if not isinstance(body, (bytes, bytearray)):
            raise PicklingError(
                f"{cls.__name__}.pickle() returned {type(body).__name__}, "
                "expected bytes"
            )
        return _U16.pack(len(class_id_bytes)) + class_id_bytes + bytes(body)

    def unpickle_object(self, data: bytes) -> Persistent:
        """Invert :meth:`pickle_object`, dispatching on the class id."""
        if len(data) < _U16.size:
            raise PicklingError("stored object shorter than its class header")
        (id_length,) = _U16.unpack_from(data, 0)
        end = _U16.size + id_length
        if len(data) < end:
            raise PicklingError("stored object truncated inside class id")
        try:
            class_id = data[_U16.size:end].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise PicklingError(f"invalid class id encoding: {exc}") from exc
        cls = self.lookup(class_id)
        obj = cls.unpickle(bytes(data[end:]))
        if not isinstance(obj, cls):
            raise PicklingError(
                f"{cls.__name__}.unpickle() returned {type(obj).__name__}"
            )
        return obj


#: Default registry used by stores unless one is injected.
global_registry = ClassRegistry()


def register_class(cls: Type[Persistent]) -> Type[Persistent]:
    """Register ``cls`` with the global registry (decorator-friendly)."""
    return global_registry.register(cls)
