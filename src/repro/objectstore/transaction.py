"""Transactions over the object store (Figure 3 of the paper).

A transaction tracks the objects it inserted, read, wrote, and removed.
Opening an object takes the corresponding transactional lock (shared for
read-only, exclusive for insert/write/remove); strict two-phase locking
releases everything at commit or abort.  Dirty objects stay pinned in
the shared cache until the end of the transaction (no-steal), and commit
maps straight onto one atomic chunk-store commit — one object per chunk,
so the write set *is* the chunk batch.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Type

from repro.errors import (
    ObjectNotFoundError,
    TransactionInactiveError,
    TypeCheckError,
)
from repro.errors import ChunkNotFoundError
from repro.objectstore.locks import LockMode
from repro.objectstore.persistent import Persistent
from repro.objectstore.refs import ReadonlyRef, WritableRef

__all__ = ["Transaction"]

_OBJ_NS = "obj"


class Transaction:
    """One atomic, isolated unit of object accesses."""

    def __init__(self, store, txn_id: int) -> None:
        self._store = store
        self.txn_id = txn_id
        self.active = True
        self._inserted: Dict[int, Persistent] = {}
        self._written: Dict[int, Persistent] = {}
        self._removed: Set[int] = set()
        self._read_oids: Set[int] = set()
        self._pinned: Set[int] = set()
        # Pickled state captured when an object is first opened writable;
        # commit skips objects whose pickle did not actually change, so a
        # conservative open_writable does not inflate the log (the write
        # volume TDB saves is the paper's headline result).
        self._clean_pickles: Dict[int, bytes] = {}

    # ------------------------------------------------------------------
    # Figure 3 interface
    # ------------------------------------------------------------------

    def insert(self, obj: Persistent) -> int:
        """Insert ``obj`` for persistent storage; return its object id."""
        self._check_active()
        if not isinstance(obj, Persistent):
            raise TypeCheckError(
                f"insert expects a Persistent instance, got {type(obj).__name__}"
            )
        # Fail fast on unregistered classes, before any state changes.
        self._store.registry.lookup(type(obj).class_id)
        oid = self._store.chunk_store.allocate_chunk_id()
        self._store.locks.acquire(self.txn_id, oid, LockMode.EXCLUSIVE)
        with self._store.mutex:
            self._store.cache.put(_OBJ_NS, oid, obj, obj.cache_charge())
            self._pin(oid)
            self._inserted[oid] = obj
        return oid

    def open_readonly(
        self, oid: int, expected_type: Optional[Type[Persistent]] = None
    ) -> ReadonlyRef:
        """Return a read-only view of the named object (shared lock)."""
        self._check_active()
        self._store.locks.acquire(self.txn_id, oid, LockMode.SHARED)
        obj = self._fetch(oid, expected_type)
        with self._store.mutex:
            self._pin(oid)  # refs protect cached objects against eviction
            self._read_oids.add(oid)
        return ReadonlyRef(self, oid, obj)

    def open_writable(
        self, oid: int, expected_type: Optional[Type[Persistent]] = None
    ) -> WritableRef:
        """Return a writable view of the named object (exclusive lock)."""
        self._check_active()
        self._store.locks.acquire(self.txn_id, oid, LockMode.EXCLUSIVE)
        obj = self._fetch(oid, expected_type)
        with self._store.mutex:
            if oid not in self._inserted:
                if oid not in self._written:
                    self._clean_pickles[oid] = self._store.registry.pickle_object(obj)
                self._written[oid] = obj
            self._pin(oid)
        return WritableRef(self, oid, obj)

    def remove(self, oid: int) -> None:
        """Remove the named object and free its id for reuse."""
        self._check_active()
        self._store.locks.acquire(self.txn_id, oid, LockMode.EXCLUSIVE)
        self._fetch(oid, None)  # existence check under the lock
        with self._store.mutex:
            if oid in self._inserted:
                # Inserted and removed in the same transaction: cancel.
                del self._inserted[oid]
                self._unpin(oid)
                self._store.cache.remove(_OBJ_NS, oid)
                self._store.chunk_store.release_chunk_id(oid)
                return
            self._written.pop(oid, None)
            self._removed.add(oid)

    def materialize(self):
        """Compute this transaction's chunk-level effect without committing.

        Returns ``(writes, deallocs)`` — exactly the batch :meth:`commit`
        would submit to the chunk store: ``writes`` maps object id to
        pickled payload (objects opened writable but unchanged are
        skipped), ``deallocs`` is the sorted removed-id list.  No cache,
        lock, or transaction state changes; the transaction stays active
        and a later :meth:`commit` writes byte-identical state.  This is
        the 2PC *prepare* entry point: the sharded server persists the
        batch as a redo record so a decided commit survives a worker
        crash (:mod:`repro.server.shardworker`).
        """
        self._check_active()
        with self._store.mutex:
            writes = {}
            for oid, obj in {**self._inserted, **self._written}.items():
                if oid in self._removed:
                    continue
                payload = self._store.registry.pickle_object(obj)
                if self._clean_pickles.get(oid) == payload:
                    continue
                writes[oid] = payload
            return writes, sorted(self._removed)

    def commit(self, durable: bool = True) -> None:
        """Atomically persist this transaction's effects.

        With ``durable`` false the commit uses the chunk store's
        nondurable mode: it will not survive a crash until a later
        durable commit completes.  Invalidates every Ref created in this
        transaction.
        """
        self._check_active()
        with self._store.mutex:
            writes = {}
            for oid, obj in {**self._inserted, **self._written}.items():
                if oid in self._removed:
                    continue
                payload = self._store.registry.pickle_object(obj)
                if self._clean_pickles.get(oid) == payload:
                    continue  # opened writable but never actually changed
                writes[oid] = payload
                if self._store.cache.contains(_OBJ_NS, oid):
                    self._store.cache.update_charge(_OBJ_NS, oid, obj.cache_charge())
                else:  # possible only with locking switched off
                    self._store.cache.put(_OBJ_NS, oid, obj, obj.cache_charge())
            deallocs = sorted(self._removed)
        # The chunk-store commit runs outside the store mutex so that
        # concurrent committers can meet inside a group-commit sink and
        # share one log append + sync.  Safe under strict 2PL: every
        # object in the write set stays exclusively locked (and pinned)
        # until _finish() below, so no other transaction can observe the
        # dirty cache entries before the commit is durable.  On failure
        # the exception propagates with the transaction still active;
        # the caller aborts, which evicts the dirty entries.
        if writes or deallocs:
            self._store.submit_commit(writes, deallocs, durable=durable)
        with self._store.mutex:
            for oid in deallocs:
                self._unpin(oid)
                self._store.cache.remove(_OBJ_NS, oid)
            self._finish()

    def abort(self) -> None:
        """Undo everything: evict dirty objects, free inserted ids."""
        self._check_active()
        with self._store.mutex:
            for oid in self._written:
                # The cached instance may carry uncommitted mutations; drop
                # it so the next reader re-unpickles the committed state.
                self._unpin(oid)
                self._store.cache.remove(_OBJ_NS, oid)
            for oid in self._inserted:
                self._unpin(oid)
                self._store.cache.remove(_OBJ_NS, oid)
                self._store.chunk_store.release_chunk_id(oid)
            self._finish()

    # ------------------------------------------------------------------
    # Root object and name registry (catalog access)
    # ------------------------------------------------------------------

    def get_root(self) -> Optional[int]:
        """Return the registered root object id, if any."""
        ref = self.open_readonly(self._store.catalog_oid)
        return ref.deref().root_oid

    def set_root(self, oid: Optional[int]) -> None:
        """Register ``oid`` as the navigation root."""
        ref = self.open_writable(self._store.catalog_oid)
        ref.deref().root_oid = oid

    def lookup_name(self, name: str) -> Optional[int]:
        """Resolve a registered name to an object id."""
        ref = self.open_readonly(self._store.catalog_oid)
        return ref.deref().names.get(name)

    def bind_name(self, name: str, oid: int) -> None:
        """Bind ``name`` to ``oid`` in the persistent name registry."""
        ref = self.open_writable(self._store.catalog_oid)
        ref.deref().names[name] = oid

    def unbind_name(self, name: str) -> None:
        """Remove a name binding; missing names raise ``KeyError``."""
        ref = self.open_writable(self._store.catalog_oid)
        catalog = ref.deref()
        if name not in catalog.names:
            raise KeyError(name)
        del catalog.names[name]

    # ------------------------------------------------------------------
    # Context-manager convenience: commit on success, abort on exception
    # ------------------------------------------------------------------

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self.active:
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _check_active(self) -> None:
        if not self.active:
            raise TransactionInactiveError(
                "transaction already committed or aborted"
            )

    def _fetch(self, oid: int, expected_type: Optional[Type[Persistent]]):
        with self._store.mutex:
            if oid in self._removed:
                raise ObjectNotFoundError(
                    f"object {oid} was removed in this transaction"
                )
            obj = self._store.cache.get(_OBJ_NS, oid)
            if obj is None:
                try:
                    payload = self._store.chunk_store.read(oid)
                except ChunkNotFoundError as exc:
                    raise ObjectNotFoundError(f"no object stored under id {oid}") from exc
                obj = self._store.registry.unpickle_object(payload)
                self._store.cache.put(_OBJ_NS, oid, obj, obj.cache_charge())
            if expected_type is not None and not isinstance(obj, expected_type):
                raise TypeCheckError(
                    f"object {oid} is {type(obj).__name__}, expected "
                    f"{expected_type.__name__}"
                )
            return obj

    def _touch(self, oid: int) -> None:
        """Refresh LRU position on ref dereference (paper section 4.2.2)."""
        if self.active:
            self._store.cache.get(_OBJ_NS, oid)

    def _pin(self, oid: int) -> None:
        if oid not in self._pinned:
            self._store.cache.pin(_OBJ_NS, oid)
            self._pinned.add(oid)

    def _unpin(self, oid: int) -> None:
        if oid in self._pinned:
            # With locking switched off, another transaction may have
            # removed the entry (and its pins) out from under us; that is
            # the documented risk of the no-locking mode.
            if self._store.cache.pin_count(_OBJ_NS, oid) > 0:
                self._store.cache.unpin(_OBJ_NS, oid)
            self._pinned.discard(oid)

    def _finish(self) -> None:
        for oid in list(self._pinned):
            self._unpin(oid)
        self.active = False
        self._store.locks.release_all(self.txn_id)
        self._store._transaction_finished(self)
