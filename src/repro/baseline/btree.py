"""Page-based B+tree access method (update-in-place, like Berkeley DB).

Keys and values are byte strings; keys order lexicographically (the TPC-B
driver encodes integer ids big-endian, which preserves numeric order).
One value per key — Berkeley DB's plain (non-DUP) behaviour, and all the
paper's benchmark needs.

The root page number is stable: a root split moves the content into two
fresh pages and turns the root into their parent in place.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Callable, Iterator, Optional, Tuple

from repro.baseline.bufferpool import BufferPool
from repro.baseline.page import BTreeInternalPage, BTreeLeafPage
from repro.errors import BaselineError

__all__ = ["PageBTree"]


class PageBTree:
    """One B+tree bound to a buffer pool and a transaction id."""

    def __init__(
        self,
        pool: BufferPool,
        root_page: int,
        page_size: int,
        allocate_page: Callable[[], int],
        txn_id: Optional[int] = None,
    ) -> None:
        self.pool = pool
        self.root_page = root_page
        self.page_size = page_size
        self.allocate_page = allocate_page
        self.txn_id = txn_id
        self._payload_limit = page_size - 64  # header + padding margin

    @classmethod
    def create(cls, pool: BufferPool, allocate_page: Callable[[], int]) -> int:
        """Allocate an empty tree; return its stable root page number."""
        root_no = allocate_page()
        pool.put_new(BTreeLeafPage(root_no))
        return root_no

    # -- internals ------------------------------------------------------------------

    def _dirty(self, page) -> None:
        self.pool.mark_dirty(page, self.txn_id)

    def _descend_to_leaf(self, key: bytes) -> BTreeLeafPage:
        page = self.pool.get(self.root_page)
        while isinstance(page, BTreeInternalPage):
            slot = bisect_right(page.keys, key)
            page = self.pool.get(page.children[slot])
        if not isinstance(page, BTreeLeafPage):
            raise BaselineError("B+tree descent did not end at a leaf")
        return page

    # -- queries ---------------------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        leaf = self._descend_to_leaf(key)
        keys = [entry_key for entry_key, _ in leaf.entries]
        position = bisect_left(keys, key)
        if position < len(keys) and keys[position] == key:
            return leaf.entries[position][1]
        return None

    def scan(self) -> Iterator[Tuple[bytes, bytes]]:
        """Yield every (key, value) in key order."""
        page = self.pool.get(self.root_page)
        while isinstance(page, BTreeInternalPage):
            page = self.pool.get(page.children[0])
        while True:
            yield from list(page.entries)
            if not page.next_leaf:
                return
            page = self.pool.get(page.next_leaf)

    def count(self) -> int:
        return sum(1 for _ in self.scan())

    # -- updates -----------------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> Optional[bytes]:
        """Insert or replace; return the previous value (the before image)."""
        before, split = self._put_into(self.root_page, key, value, is_root=True)
        if split is not None:
            raise BaselineError("root split must be absorbed in place")
        return before

    def _put_into(
        self, page_no: int, key: bytes, value: bytes, is_root: bool
    ) -> Tuple[Optional[bytes], Optional[Tuple[bytes, int]]]:
        page = self.pool.get(page_no)
        before: Optional[bytes] = None
        if isinstance(page, BTreeLeafPage):
            keys = [entry_key for entry_key, _ in page.entries]
            position = bisect_left(keys, key)
            self._dirty(page)
            if position < len(keys) and keys[position] == key:
                before = page.entries[position][1]
                page.add_used(len(value) - len(before))
                page.entries[position] = (key, value)
            else:
                page.entries.insert(position, (key, value))
                page.add_used(page.entry_size(key, value))
        else:
            slot = bisect_right(page.keys, key)
            before, split = self._put_into(page.children[slot], key, value, False)
            if split is None:
                return before, None
            separator, new_page_no = split
            self._dirty(page)
            position = bisect_right(page.keys, separator)
            page.keys.insert(position, separator)
            page.children.insert(position + 1, new_page_no)
            page.add_used(len(separator) + 18)
        if page.used_bytes <= self._payload_limit:
            return before, None
        if is_root:
            self._split_root(page)
            return before, None
        return before, self._split(page)

    def _split(self, page) -> Tuple[bytes, int]:
        new_no = self.allocate_page()
        if isinstance(page, BTreeLeafPage):
            mid = len(page.entries) // 2
            right = BTreeLeafPage(new_no)
            right.entries = page.entries[mid:]
            page.entries = page.entries[:mid]
            right.next_leaf = page.next_leaf
            page.next_leaf = new_no
            separator = right.entries[0][0]
            right.recompute_used()
            page.recompute_used()
        else:
            mid = len(page.keys) // 2
            right = BTreeInternalPage(new_no)
            separator = page.keys[mid]
            right.keys = page.keys[mid + 1:]
            right.children = page.children[mid + 1:]
            page.keys = page.keys[:mid]
            page.children = page.children[:mid + 1]
            right.recompute_used()
            page.recompute_used()
        self.pool.put_new(right)
        self.pool.mark_dirty(right, self.txn_id)
        return separator, new_no

    def _split_root(self, root) -> None:
        left_no = self.allocate_page()
        right_no = self.allocate_page()
        if isinstance(root, BTreeLeafPage):
            mid = len(root.entries) // 2
            left = BTreeLeafPage(left_no)
            right = BTreeLeafPage(right_no)
            left.entries = root.entries[:mid]
            right.entries = root.entries[mid:]
            right.next_leaf = root.next_leaf
            left.next_leaf = right_no
            separator = right.entries[0][0]
            left.recompute_used()
            right.recompute_used()
            new_root = BTreeInternalPage(root.page_no)
            new_root.keys = [separator]
            new_root.children = [left_no, right_no]
            new_root.recompute_used()
        else:
            mid = len(root.keys) // 2
            left = BTreeInternalPage(left_no)
            right = BTreeInternalPage(right_no)
            separator = root.keys[mid]
            left.keys = root.keys[:mid]
            left.children = root.children[:mid + 1]
            right.keys = root.keys[mid + 1:]
            right.children = root.children[mid + 1:]
            left.recompute_used()
            right.recompute_used()
            new_root = BTreeInternalPage(root.page_no)
            new_root.keys = [separator]
            new_root.children = [left_no, right_no]
            new_root.recompute_used()
        for page in (left, right, new_root):
            self.pool.put_new(page)
            self.pool.mark_dirty(page, self.txn_id)

    def delete(self, key: bytes) -> Optional[bytes]:
        """Remove ``key``; return its previous value or ``None``."""
        leaf = self._descend_to_leaf(key)
        keys = [entry_key for entry_key, _ in leaf.entries]
        position = bisect_left(keys, key)
        if position >= len(keys) or keys[position] != key:
            return None
        self._dirty(leaf)
        _, before = leaf.entries.pop(position)
        leaf.add_used(-leaf.entry_size(key, before))
        return before
