"""Page-based linear-hash access method for the baseline engine.

Berkeley DB's hash access method is extended linear hashing; this is the
page-level equivalent of the collection store's object-level table.  The
directory (level, split pointer, bucket page numbers) lives in the meta
page's table entry; buckets are pages with overflow chains.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Tuple

from repro.baseline.bufferpool import BufferPool
from repro.baseline.page import HashBucketPage
from repro.errors import BaselineError

__all__ = ["PageHash", "fnv1a"]


def fnv1a(data: bytes) -> int:
    """Stable 64-bit FNV-1a over raw key bytes."""
    value = 0xCBF29CE484222325
    for byte in data:
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value


class PageHash:
    """One linear-hash table bound to a buffer pool and directory state.

    ``directory`` is the mutable dict stored in the meta page:
    ``{"level", "split_pointer", "entry_count", "initial_buckets",
    "buckets"}``.  The caller marks the meta page dirty after updates.
    """

    def __init__(
        self,
        pool: BufferPool,
        directory: dict,
        page_size: int,
        allocate_page: Callable[[], int],
        txn_id: Optional[int] = None,
        max_load_entries: int = 24,
    ) -> None:
        self.pool = pool
        self.directory = directory
        self.page_size = page_size
        self.allocate_page = allocate_page
        self.txn_id = txn_id
        self.max_load_entries = max_load_entries
        self._payload_limit = page_size - 64

    @classmethod
    def create_directory(
        cls, pool: BufferPool, allocate_page: Callable[[], int], initial_buckets: int
    ) -> dict:
        """Allocate the initial buckets; return the directory dict."""
        buckets = []
        for _ in range(initial_buckets):
            page_no = allocate_page()
            pool.put_new(HashBucketPage(page_no))
            buckets.append(page_no)
        return {
            "level": 0,
            "split_pointer": 0,
            "entry_count": 0,
            "initial_buckets": initial_buckets,
            "buckets": buckets,
        }

    # -- plumbing -----------------------------------------------------------------

    def _dirty(self, page) -> None:
        self.pool.mark_dirty(page, self.txn_id)

    def _address(self, key: bytes) -> int:
        h = fnv1a(key)
        modulus = self.directory["initial_buckets"] * (2 ** self.directory["level"])
        slot = h % modulus
        if slot < self.directory["split_pointer"]:
            slot = h % (modulus * 2)
        return slot

    def _chain(self, head_page: int) -> Iterator[HashBucketPage]:
        page_no = head_page
        while page_no:
            page = self.pool.get(page_no)
            if not isinstance(page, HashBucketPage):
                raise BaselineError(f"page {page_no} is not a hash bucket")
            yield page
            page_no = page.overflow

    # -- queries ------------------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        head = self.directory["buckets"][self._address(key)]
        for bucket in self._chain(head):
            for entry_key, value in bucket.entries:
                if entry_key == key:
                    return value
        return None

    def scan(self) -> Iterator[Tuple[bytes, bytes]]:
        for head in list(self.directory["buckets"]):
            for bucket in self._chain(head):
                yield from list(bucket.entries)

    # -- updates --------------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> Optional[bytes]:
        """Insert or replace; return the before image."""
        head = self.directory["buckets"][self._address(key)]
        for bucket in self._chain(head):
            for index, (entry_key, before) in enumerate(bucket.entries):
                if entry_key == key:
                    self._dirty(bucket)
                    bucket.add_used(len(value) - len(before))
                    bucket.entries[index] = (key, value)
                    return before
        self._append(head, key, value)
        self.directory["entry_count"] += 1
        if (
            self.directory["entry_count"]
            / len(self.directory["buckets"])
            > self.max_load_entries
        ):
            self._split()
        return None

    def _append(self, head_page: int, key: bytes, value: bytes) -> None:
        last = None
        for bucket in self._chain(head_page):
            last = bucket
            fits = (
                bucket.used_bytes + bucket.entry_size(key, value)
                <= self._payload_limit
            )
            if fits:
                self._dirty(bucket)
                bucket.entries.append((key, value))
                bucket.add_used(bucket.entry_size(key, value))
                return
        overflow_no = self.allocate_page()
        overflow = HashBucketPage(overflow_no)
        overflow.entries.append((key, value))
        overflow.recompute_used()
        self.pool.put_new(overflow)
        self._dirty(overflow)
        self._dirty(last)
        last.overflow = overflow_no

    def delete(self, key: bytes) -> Optional[bytes]:
        head = self.directory["buckets"][self._address(key)]
        for bucket in self._chain(head):
            for index, (entry_key, before) in enumerate(bucket.entries):
                if entry_key == key:
                    self._dirty(bucket)
                    del bucket.entries[index]
                    bucket.add_used(-bucket.entry_size(key, before))
                    self.directory["entry_count"] -= 1
                    return before
        return None

    # -- growth ----------------------------------------------------------------------

    def _split(self) -> None:
        directory = self.directory
        victim_slot = directory["split_pointer"]
        modulus = directory["initial_buckets"] * (2 ** directory["level"])

        entries = []
        chain = list(self._chain(directory["buckets"][victim_slot]))
        for bucket in chain:
            entries.extend(bucket.entries)
        head = chain[0]
        self._dirty(head)
        head.entries = []
        head.overflow = 0
        head.recompute_used()
        # Overflow pages of the victim are left unreferenced; the page
        # allocator never reclaims them (Berkeley DB files do not shrink
        # either, which is part of the Figure 11b story).

        image_no = self.allocate_page()
        self.pool.put_new(HashBucketPage(image_no))
        directory["buckets"].append(image_no)
        directory["split_pointer"] += 1
        if directory["split_pointer"] == modulus:
            directory["split_pointer"] = 0
            directory["level"] += 1
        directory["entry_count"] -= len(entries)
        for key, value in entries:
            self._append(
                directory["buckets"][self._address(key)], key, value
            )
            directory["entry_count"] += 1
