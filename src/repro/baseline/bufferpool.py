"""Page file and buffer pool of the baseline engine.

The page file maps page numbers to fixed-size regions of one data file in
the untrusted store.  The buffer pool caches decoded pages with LRU
eviction; dirty pages owned by an *uncommitted* transaction are pinned
(no-steal), while committed-dirty pages may be written back on eviction —
the write-ahead rule holds because the log is flushed at every commit,
before the owning transaction releases its pages.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.baseline.page import Page, decode_page
from repro.errors import BaselineError
from repro.platform.untrusted import UntrustedStore

__all__ = ["PageFile", "BufferPool"]

DATA_FILE = "baseline.db"


class PageFile:
    """Fixed-size page I/O over the untrusted store."""

    def __init__(self, untrusted: UntrustedStore, page_size: int) -> None:
        self.untrusted = untrusted
        self.page_size = page_size
        if not untrusted.exists(DATA_FILE):
            untrusted.write(DATA_FILE, 0, b"")

    def read_page(self, page_no: int) -> bytes:
        offset = page_no * self.page_size
        data = self.untrusted.read(DATA_FILE, offset, self.page_size)
        if len(data) != self.page_size:
            raise BaselineError(f"short page read at page {page_no}")
        return data

    def write_page(self, page_no: int, data: bytes) -> None:
        if len(data) != self.page_size:
            raise BaselineError("page image has the wrong size")
        self.untrusted.write(DATA_FILE, page_no * self.page_size, data)

    def page_count(self) -> int:
        return self.untrusted.size(DATA_FILE) // self.page_size

    def sync(self) -> None:
        self.untrusted.sync(DATA_FILE)


class BufferPool:
    """LRU cache of decoded pages with no-steal pinning."""

    def __init__(self, page_file: PageFile, capacity_pages: int) -> None:
        if capacity_pages < 4:
            raise BaselineError("buffer pool needs at least 4 pages")
        self.page_file = page_file
        self.capacity_pages = capacity_pages
        self._pages: "OrderedDict[int, Page]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- access ------------------------------------------------------------------

    def get(self, page_no: int) -> Page:
        """Fetch a page, reading it from disk on a miss."""
        page = self._pages.get(page_no)
        if page is not None:
            self._pages.move_to_end(page_no)
            self.hits += 1
            return page
        self.misses += 1
        page = decode_page(page_no, self.page_file.read_page(page_no))
        self._insert(page)
        return page

    def put_new(self, page: Page) -> None:
        """Install a freshly created page (not yet on disk)."""
        page.dirty = True
        self._insert(page)

    def _insert(self, page: Page) -> None:
        self._pages[page.page_no] = page
        self._pages.move_to_end(page.page_no)
        self._evict_if_needed()

    def mark_dirty(self, page: Page, txn_id: Optional[int]) -> None:
        """Record a mutation; ``txn_id`` pins the page until commit/abort.

        The page is re-installed if an eviction dropped it between the
        caller's fetch and this mutation (e.g. a B+tree split allocating
        children evicted the clean parent the caller still holds); losing
        the mutation would corrupt the structure.
        """
        page.dirty = True
        if txn_id is not None:
            page.dirty_txn = txn_id
        if self._pages.get(page.page_no) is not page:
            self._insert(page)

    def release_txn(self, txn_id: int) -> None:
        """Unpin all pages the transaction dirtied (commit/abort time)."""
        for page in self._pages.values():
            if page.dirty_txn == txn_id:
                page.dirty_txn = None

    def drop(self, page_no: int) -> None:
        """Discard a cached page without writing it (abort helper)."""
        self._pages.pop(page_no, None)

    # -- write-back -----------------------------------------------------------------

    def _evict_if_needed(self) -> None:
        while len(self._pages) > self.capacity_pages:
            victim_no = None
            for page_no, page in self._pages.items():
                if page.dirty_txn is None:
                    victim_no = page_no
                    break
            if victim_no is None:
                # Everything is pinned by active transactions; allow the
                # pool to exceed its budget (no-steal).
                return
            page = self._pages.pop(victim_no)
            if page.dirty:
                self.page_file.write_page(
                    victim_no, page.encode(self.page_file.page_size)
                )
            self.evictions += 1

    def flush_all(self) -> None:
        """Write back every dirty page (checkpoint / close)."""
        for page in self._pages.values():
            if page.dirty and page.dirty_txn is None:
                self.page_file.write_page(
                    page.page_no, page.encode(self.page_file.page_size)
                )
                page.dirty = False

    def cached_pages(self) -> int:
        return len(self._pages)
