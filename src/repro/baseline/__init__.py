"""A Berkeley-DB-style embedded engine: the paper's performance baseline.

The paper compares TDB against Berkeley DB 3.0.55 on TPC-B (section 7).
Berkeley DB itself is C code we cannot link, so this package implements a
stand-in with the same architectural signature:

* **page-based storage** with update-in-place B+tree and linear-hash
  access methods over a buffer pool,
* a **write-ahead log** carrying logical records with *before and after
  images* — which is why it writes roughly twice as many bytes per
  transaction as TDB's compact variable-size chunks (the effect the paper
  measures: ~1100 vs ~523 bytes per TPC-B transaction),
* commit = flush the log; data pages reach disk lazily (no-steal for
  uncommitted work, write-back for committed work),
* **no automatic log checkpointing** — matching the paper's observation
  that Berkeley DB "does not checkpoint the log during the benchmark",
  which makes its on-disk footprint balloon in Figure 11(b); an explicit
  ``checkpoint()`` is available,
* no encryption, no hashing, no tamper detection — that is the point of
  the comparison.
"""

from repro.baseline.db import BaselineDB, BaselineTxn
from repro.baseline.bufferpool import BufferPool, PageFile
from repro.baseline.wal import WriteAheadLog

__all__ = ["BaselineDB", "BaselineTxn", "BufferPool", "PageFile", "WriteAheadLog"]
