"""Page types of the baseline engine.

Pages are fixed-size on disk; in memory the buffer pool caches decoded
page objects.  Every page type tracks an incremental estimate of its
serialized size so access methods can split before overflowing the page.

Page kinds: meta (per-table roots), B+tree leaf/internal, hash directory
extension, hash bucket, free.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from repro.errors import BaselineError
from repro.objectstore.encoding import BufferReader, BufferWriter

__all__ = [
    "PAGE_KIND_META",
    "PAGE_KIND_BTREE_LEAF",
    "PAGE_KIND_BTREE_INTERNAL",
    "PAGE_KIND_HASH_BUCKET",
    "PAGE_KIND_FREE",
    "Page",
    "MetaPage",
    "BTreeLeafPage",
    "BTreeInternalPage",
    "HashBucketPage",
    "decode_page",
]

PAGE_KIND_FREE = 0
PAGE_KIND_META = 1
PAGE_KIND_BTREE_LEAF = 2
PAGE_KIND_BTREE_INTERNAL = 3
PAGE_KIND_HASH_BUCKET = 4

_KIND = struct.Struct(">B")

# Serialized-size bookkeeping constants (upper bounds).
_ENTRY_OVERHEAD = 10  # two length prefixes plus slack


class Page:
    """Base class: identity, dirtiness, size accounting."""

    kind = PAGE_KIND_FREE

    def __init__(self, page_no: int) -> None:
        self.page_no = page_no
        self.dirty = False
        self.dirty_txn: Optional[int] = None  # uncommitted-dirty owner

    def body(self) -> bytes:
        """Serialize the page body (without kind byte)."""
        return b""

    def encode(self, page_size: int) -> bytes:
        data = _KIND.pack(self.kind) + self.body()
        if len(data) > page_size:
            raise BaselineError(
                f"page {self.page_no} overflows: {len(data)} > {page_size}"
            )
        return data.ljust(page_size, b"\x00")


class MetaPage(Page):
    """Page 0: table catalog (name -> access method, root, state)."""

    kind = PAGE_KIND_META

    def __init__(self, page_no: int = 0) -> None:
        super().__init__(page_no)
        self.next_page_no = 1
        self.free_pages: List[int] = []
        # Clean-shutdown handshake: when ``clean`` and the log is still
        # ``clean_log_size`` bytes long at open, the on-disk pages are
        # authoritative and replay is skipped.
        self.clean = False
        self.clean_log_size = 0
        # name -> (method, root_page, aux). For hash tables ``aux`` packs
        # the directory: (level, split_pointer, entry_count, bucket pages).
        self.tables: Dict[str, dict] = {}

    def body(self) -> bytes:
        writer = BufferWriter()
        writer.write_uint(self.next_page_no)
        writer.write_uint_list(self.free_pages)
        writer.write_bool(self.clean)
        writer.write_uint(self.clean_log_size)
        writer.write_uint(len(self.tables))
        for name in sorted(self.tables):
            info = self.tables[name]
            writer.write_str(name)
            writer.write_str(info["method"])
            writer.write_uint(info["root"])
            if info["method"] == "hash":
                writer.write_uint(info["level"])
                writer.write_uint(info["split_pointer"])
                writer.write_uint(info["entry_count"])
                writer.write_uint(info["initial_buckets"])
                writer.write_uint_list(info["buckets"])
        return writer.getvalue()

    @classmethod
    def from_body(cls, page_no: int, data: bytes) -> "MetaPage":
        page = cls(page_no)
        reader = BufferReader(data)
        page.next_page_no = reader.read_uint()
        page.free_pages = reader.read_uint_list()
        page.clean = reader.read_bool()
        page.clean_log_size = reader.read_uint()
        count = reader.read_uint()
        for _ in range(count):
            name = reader.read_str()
            method = reader.read_str()
            root = reader.read_uint()
            info = {"method": method, "root": root}
            if method == "hash":
                info["level"] = reader.read_uint()
                info["split_pointer"] = reader.read_uint()
                info["entry_count"] = reader.read_uint()
                info["initial_buckets"] = reader.read_uint()
                info["buckets"] = reader.read_uint_list()
            page.tables[name] = info
        return page


class BTreeLeafPage(Page):
    """Sorted (key, value) entries plus the next-leaf link."""

    kind = PAGE_KIND_BTREE_LEAF

    def __init__(self, page_no: int) -> None:
        super().__init__(page_no)
        self.entries: List[Tuple[bytes, bytes]] = []
        self.next_leaf = 0  # 0 = none (page 0 is meta, never a leaf)
        self._used = 32

    def recompute_used(self) -> None:
        self._used = 32 + sum(
            len(key) + len(value) + _ENTRY_OVERHEAD for key, value in self.entries
        )

    @property
    def used_bytes(self) -> int:
        return self._used

    def entry_size(self, key: bytes, value: bytes) -> int:
        return len(key) + len(value) + _ENTRY_OVERHEAD

    def add_used(self, delta: int) -> None:
        self._used += delta

    def body(self) -> bytes:
        writer = BufferWriter()
        writer.write_uint(self.next_leaf)
        writer.write_uint(len(self.entries))
        for key, value in self.entries:
            writer.write_bytes(key)
            writer.write_bytes(value)
        return writer.getvalue()

    @classmethod
    def from_body(cls, page_no: int, data: bytes) -> "BTreeLeafPage":
        page = cls(page_no)
        reader = BufferReader(data)
        page.next_leaf = reader.read_uint()
        count = reader.read_uint()
        page.entries = [
            (reader.read_bytes(), reader.read_bytes()) for _ in range(count)
        ]
        page.recompute_used()
        return page


class BTreeInternalPage(Page):
    """Separator keys and child page numbers."""

    kind = PAGE_KIND_BTREE_INTERNAL

    def __init__(self, page_no: int) -> None:
        super().__init__(page_no)
        self.keys: List[bytes] = []
        self.children: List[int] = []
        self._used = 32

    def recompute_used(self) -> None:
        self._used = 32 + sum(len(key) + _ENTRY_OVERHEAD + 8 for key in self.keys) + 8

    @property
    def used_bytes(self) -> int:
        return self._used

    def add_used(self, delta: int) -> None:
        self._used += delta

    def body(self) -> bytes:
        writer = BufferWriter()
        writer.write_list(self.keys, lambda w, k: w.write_bytes(k))
        writer.write_uint_list(self.children)
        return writer.getvalue()

    @classmethod
    def from_body(cls, page_no: int, data: bytes) -> "BTreeInternalPage":
        page = cls(page_no)
        reader = BufferReader(data)
        page.keys = reader.read_list(lambda r: r.read_bytes())
        page.children = reader.read_uint_list()
        page.recompute_used()
        return page


class HashBucketPage(Page):
    """Hash bucket: unordered (key, value) entries + overflow link."""

    kind = PAGE_KIND_HASH_BUCKET

    def __init__(self, page_no: int) -> None:
        super().__init__(page_no)
        self.entries: List[Tuple[bytes, bytes]] = []
        self.overflow = 0  # 0 = none
        self._used = 32

    def recompute_used(self) -> None:
        self._used = 32 + sum(
            len(key) + len(value) + _ENTRY_OVERHEAD for key, value in self.entries
        )

    @property
    def used_bytes(self) -> int:
        return self._used

    def entry_size(self, key: bytes, value: bytes) -> int:
        return len(key) + len(value) + _ENTRY_OVERHEAD

    def add_used(self, delta: int) -> None:
        self._used += delta

    def body(self) -> bytes:
        writer = BufferWriter()
        writer.write_uint(self.overflow)
        writer.write_uint(len(self.entries))
        for key, value in self.entries:
            writer.write_bytes(key)
            writer.write_bytes(value)
        return writer.getvalue()

    @classmethod
    def from_body(cls, page_no: int, data: bytes) -> "HashBucketPage":
        page = cls(page_no)
        reader = BufferReader(data)
        page.overflow = reader.read_uint()
        count = reader.read_uint()
        page.entries = [
            (reader.read_bytes(), reader.read_bytes()) for _ in range(count)
        ]
        page.recompute_used()
        return page


_DECODERS = {
    PAGE_KIND_META: MetaPage.from_body,
    PAGE_KIND_BTREE_LEAF: BTreeLeafPage.from_body,
    PAGE_KIND_BTREE_INTERNAL: BTreeInternalPage.from_body,
    PAGE_KIND_HASH_BUCKET: HashBucketPage.from_body,
}


def decode_page(page_no: int, raw: bytes) -> Page:
    """Decode one on-disk page image."""
    if not raw:
        raise BaselineError(f"page {page_no} is empty on disk")
    kind = raw[0]
    if kind == PAGE_KIND_FREE:
        return Page(page_no)
    decoder = _DECODERS.get(kind)
    if decoder is None:
        raise BaselineError(f"page {page_no} has unknown kind {kind}")
    return decoder(page_no, raw[1:])
