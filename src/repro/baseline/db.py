"""The baseline engine's public interface: tables and transactions.

Usage::

    db = BaselineDB.create(untrusted, BaselineConfig())
    db.create_table("account", method="btree")
    txn = db.begin()
    txn.put("account", key_bytes, value_bytes)
    txn.commit()            # flushes the WAL (the commit's durability)
    db.close()
    db = BaselineDB.open(untrusted, BaselineConfig())   # recovery if dirty

Recovery model: the write-ahead log holds the full history (create-table
records plus committed before/after images).  A clean close marks the
page file authoritative; any other open wipes the page file and replays
the log from the start — simple, and exactly as pessimistic about disk
state as the no-steal/write-back buffer policy allows.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.baseline.bufferpool import BufferPool, PageFile
from repro.baseline.btree import PageBTree
from repro.baseline.hashindex import PageHash
from repro.baseline.page import MetaPage, decode_page
from repro.baseline.wal import (
    LogRecord,
    REC_ABORT,
    REC_BEGIN,
    REC_COMMIT,
    REC_CREATE_TABLE,
    REC_DELETE,
    REC_PUT,
    WriteAheadLog,
)
from repro.config import BaselineConfig
from repro.errors import BaselineError
from repro.platform.untrusted import UntrustedStore

__all__ = ["BaselineDB", "BaselineTxn", "BaselineStats"]

from repro.baseline.bufferpool import DATA_FILE


@dataclass
class BaselineStats:
    """Point-in-time statistics of a baseline database."""

    data_file_bytes: int
    log_bytes: int
    total_bytes: int
    page_count: int
    cached_pages: int
    pool_hits: int
    pool_misses: int
    log_records: int


class BaselineDB:
    """A Berkeley-DB-style embedded database."""

    def __init__(self, *args, **kwargs) -> None:
        raise BaselineError(
            "use BaselineDB.create(...) or BaselineDB.open(...) to construct"
        )

    @classmethod
    def _new(cls, untrusted: UntrustedStore, config: BaselineConfig) -> "BaselineDB":
        self = object.__new__(cls)
        self.untrusted = untrusted
        self.config = config
        self.page_file = PageFile(untrusted, config.page_size)
        self.pool = BufferPool(
            self.page_file, max(4, config.cache_bytes // config.page_size)
        )
        self.wal = WriteAheadLog(untrusted, sync_enabled=config.fsync)
        self.meta = MetaPage()
        self._txn_ids = itertools.count(1)
        self._active_txn: Optional[int] = None
        self._closed = False
        return self

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls, untrusted: UntrustedStore, config: Optional[BaselineConfig] = None
    ) -> "BaselineDB":
        """Format a fresh baseline database."""
        config = config or BaselineConfig()
        if untrusted.exists(DATA_FILE) and untrusted.size(DATA_FILE) > 0:
            raise BaselineError("untrusted store already holds a baseline database")
        self = cls._new(untrusted, config)
        self._flush_meta()
        return self

    @classmethod
    def open(
        cls, untrusted: UntrustedStore, config: Optional[BaselineConfig] = None
    ) -> "BaselineDB":
        """Open an existing database, replaying the log if needed."""
        config = config or BaselineConfig()
        if not untrusted.exists(DATA_FILE):
            raise BaselineError("no baseline database found")
        self = cls._new(untrusted, config)
        meta = decode_page(0, self.page_file.read_page(0))
        if not isinstance(meta, MetaPage):
            raise BaselineError("page 0 is not a meta page")
        self.meta = meta
        if meta.clean and meta.clean_log_size == self.wal.size_bytes:
            self.meta.clean = False
            self._flush_meta()
            return self
        self._replay_log_suffix()
        return self

    def _replay_log_suffix(self) -> None:
        """Redo the log beyond what the flushed meta already reflects.

        Pages on disk may be arbitrarily fresher than the meta (committed
        pages are written back on eviction); logical redo is idempotent,
        so re-applying the suffix converges to the committed state.  Page
        allocation afterwards resumes past the end of the physical file so
        that no orphaned-but-live page can be handed out again.
        """
        start = min(self.meta.clean_log_size, self.wal.size_bytes)
        for record in self.wal.replay_plan(start):
            if record.kind == REC_CREATE_TABLE:
                if record.table not in self.meta.tables:
                    self._install_table(record.table, record.key.decode("ascii"))
            elif record.kind == REC_PUT:
                self._access(record.table, None).put(record.key, record.after)
            elif record.kind == REC_DELETE:
                self._access(record.table, None).delete(record.key)
        self.meta.next_page_no = max(
            self.meta.next_page_no, self.page_file.page_count()
        )
        self.meta.free_pages = []
        # The meta's applied-position claim must be true on disk before it
        # is written: flush the replayed pages first.
        self.pool.flush_all()
        self.meta.clean = False
        self.meta.clean_log_size = self.wal.size_bytes
        self._flush_meta()

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------

    def create_table(self, name: str, method: str = "btree") -> None:
        """Create a table; logged and immediately durable (DDL)."""
        self._check_open()
        if self._active_txn is not None:
            raise BaselineError("create_table is not allowed inside a transaction")
        if name in self.meta.tables:
            raise BaselineError(f"table {name!r} already exists")
        if method not in ("btree", "hash"):
            raise BaselineError(f"unknown access method {method!r}")
        self.wal.append(
            LogRecord(kind=REC_CREATE_TABLE, table=name, key=method.encode("ascii"))
        )
        self.wal.flush()
        self._install_table(name, method)
        # The meta will reference the new root/bucket pages; they must be
        # on disk before the meta is, or recovery could chase a dangling
        # page pointer.  DDL is rare, so the extra flush is cheap.
        self.pool.flush_all()
        self._flush_meta()

    def _install_table(self, name: str, method: str) -> None:
        if method == "btree":
            root = PageBTree.create(self.pool, self._allocate_page)
            self.meta.tables[name] = {"method": "btree", "root": root}
        else:
            directory = PageHash.create_directory(self.pool, self._allocate_page, 8)
            info = {"method": "hash", "root": directory["buckets"][0]}
            info.update(directory)
            self.meta.tables[name] = info

    def tables(self) -> List[str]:
        return sorted(self.meta.tables)

    def _access(self, table: str, txn_id: Optional[int]):
        info = self.meta.tables.get(table)
        if info is None:
            raise BaselineError(f"no table named {table!r}")
        if info["method"] == "btree":
            return PageBTree(
                self.pool,
                info["root"],
                self.config.page_size,
                self._allocate_page,
                txn_id,
            )
        return PageHash(
            self.pool, info, self.config.page_size, self._allocate_page, txn_id
        )

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def begin(self) -> "BaselineTxn":
        """Start a transaction (one at a time; the paper's workload is
        single-user)."""
        self._check_open()
        if self._active_txn is not None:
            raise BaselineError("another transaction is already active")
        txn_id = next(self._txn_ids)
        self._active_txn = txn_id
        return BaselineTxn(self, txn_id)

    def _txn_finished(self, txn_id: int) -> None:
        if self._active_txn == txn_id:
            self._active_txn = None
        self.pool.release_txn(txn_id)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def _allocate_page(self) -> int:
        if self.meta.free_pages:
            return self.meta.free_pages.pop()
        page_no = self.meta.next_page_no
        self.meta.next_page_no += 1
        return page_no

    def _flush_meta(self) -> None:
        self.page_file.write_page(0, self.meta.encode(self.config.page_size))

    def checkpoint(self) -> None:
        """Flush pages and truncate the log (Berkeley DB's db_checkpoint).

        The paper's benchmark never runs this — which is why the baseline's
        footprint grows without bound there.
        """
        self._check_open()
        if self._active_txn is not None:
            raise BaselineError("cannot checkpoint with an active transaction")
        self.pool.flush_all()
        self._flush_meta()
        if self.config.fsync:
            self.page_file.sync()
        self.wal.truncate()
        self.meta.clean_log_size = 0
        self._flush_meta()

    def stats(self) -> BaselineStats:
        data_bytes = self.untrusted.size(DATA_FILE) if self.untrusted.exists(DATA_FILE) else 0
        log_bytes = self.wal.size_bytes
        return BaselineStats(
            data_file_bytes=data_bytes,
            log_bytes=log_bytes,
            total_bytes=data_bytes + log_bytes,
            page_count=self.meta.next_page_no,
            cached_pages=self.pool.cached_pages(),
            pool_hits=self.pool.hits,
            pool_misses=self.pool.misses,
            log_records=self.wal.records_written,
        )

    def close(self) -> None:
        """Flush everything and mark a clean shutdown."""
        if self._closed:
            return
        if self._active_txn is not None:
            raise BaselineError("cannot close with an active transaction")
        self.wal.flush()
        self.pool.flush_all()
        self.meta.clean = True
        self.meta.clean_log_size = self.wal.size_bytes
        self._flush_meta()
        if self.config.fsync:
            self.page_file.sync()
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise BaselineError("baseline database is closed")

    def __enter__(self) -> "BaselineDB":
        return self

    def __exit__(self, *exc_info) -> None:
        if self._active_txn is None:
            self.close()


class BaselineTxn:
    """One transaction: logical ops with undo, WAL flush at commit."""

    def __init__(self, db: BaselineDB, txn_id: int) -> None:
        self.db = db
        self.txn_id = txn_id
        self.active = True
        self._began = False
        self._ops: List[Tuple[str, bytes, Optional[bytes], Optional[bytes]]] = []

    # -- data operations -----------------------------------------------------------

    def get(self, table: str, key: bytes) -> Optional[bytes]:
        self._check_active()
        return self.db._access(table, self.txn_id).get(key)

    def put(self, table: str, key: bytes, value: bytes) -> None:
        self._check_active()
        self._ensure_begin()
        before = self.db._access(table, self.txn_id).put(key, value)
        self.db.wal.append(
            LogRecord(
                kind=REC_PUT,
                txn_id=self.txn_id,
                table=table,
                key=key,
                before=before,
                after=value,
            )
        )
        self._ops.append((table, key, before, value))

    def delete(self, table: str, key: bytes) -> bool:
        self._check_active()
        self._ensure_begin()
        before = self.db._access(table, self.txn_id).delete(key)
        if before is None:
            return False
        self.db.wal.append(
            LogRecord(
                kind=REC_DELETE,
                txn_id=self.txn_id,
                table=table,
                key=key,
                before=before,
                after=None,
            )
        )
        self._ops.append((table, key, before, None))
        return True

    def scan(self, table: str) -> Iterator[Tuple[bytes, bytes]]:
        self._check_active()
        return self.db._access(table, self.txn_id).scan()

    # -- termination -----------------------------------------------------------------

    def commit(self, durable: bool = True) -> None:
        """Commit: append COMMIT and flush the log (the durability point)."""
        self._check_active()
        if self._began:
            self.db.wal.append(LogRecord(kind=REC_COMMIT, txn_id=self.txn_id))
            if durable:
                self.db.wal.flush()
        self.active = False
        self.db._txn_finished(self.txn_id)

    def abort(self) -> None:
        """Undo this transaction's effects in memory (logical undo)."""
        self._check_active()
        for table, key, before, _after in reversed(self._ops):
            access = self.db._access(table, None)
            if before is None:
                access.delete(key)
            else:
                access.put(key, before)
        if self._began:
            self.db.wal.append(LogRecord(kind=REC_ABORT, txn_id=self.txn_id))
        self.active = False
        self.db._txn_finished(self.txn_id)

    def _ensure_begin(self) -> None:
        if not self._began:
            self.db.wal.append(LogRecord(kind=REC_BEGIN, txn_id=self.txn_id))
            self._began = True

    def _check_active(self) -> None:
        if not self.active:
            raise BaselineError("transaction already finished")

    def __enter__(self) -> "BaselineTxn":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self.active:
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()
