"""Write-ahead log of the baseline engine.

Logical logging with **before and after images**: every update record
carries the key, the previous value (None for inserts) and the new value
(None for deletes).  This is the Berkeley-DB-style behaviour the paper
measures — per TPC-B transaction the baseline logs roughly twice the
record bytes TDB writes, because each update ships both images.

Recovery replays the log forward, applying only operations of committed
transactions.  Replays are idempotent (put/delete are set-semantics), so
data pages may be arbitrarily fresh or stale when recovery starts — the
no-steal policy guarantees no *uncommitted* state ever reached the pages.

Without explicit checkpoints the log only ever grows, exactly like the
paper's Berkeley DB run (Figure 11b); ``mark_checkpoint`` records a safe
replay start position for deployments that do checkpoint.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import BaselineError
from repro.objectstore.encoding import BufferReader, BufferWriter
from repro.platform.untrusted import UntrustedStore

__all__ = ["WriteAheadLog", "LogRecord"]

LOG_FILE = "baseline.log"

REC_BEGIN = 1
REC_PUT = 2
REC_DELETE = 3
REC_COMMIT = 4
REC_ABORT = 5
REC_CHECKPOINT = 6
REC_CREATE_TABLE = 7  # DDL: table name in ``table``, method in ``key``

_HEADER = struct.Struct(">BI")  # kind, body length
_CRC = struct.Struct(">I")


@dataclass
class LogRecord:
    """One decoded log record."""

    kind: int
    txn_id: int = 0
    table: str = ""
    key: bytes = b""
    before: Optional[bytes] = None
    after: Optional[bytes] = None

    def encode_body(self) -> bytes:
        writer = BufferWriter()
        writer.write_uint(self.txn_id)
        if self.kind == REC_CREATE_TABLE:
            writer.write_str(self.table)
            writer.write_bytes(self.key)
        if self.kind in (REC_PUT, REC_DELETE):
            writer.write_str(self.table)
            writer.write_bytes(self.key)
            writer.write_bool(self.before is not None)
            if self.before is not None:
                writer.write_bytes(self.before)
            writer.write_bool(self.after is not None)
            if self.after is not None:
                writer.write_bytes(self.after)
        return writer.getvalue()

    @classmethod
    def decode(cls, kind: int, body: bytes) -> "LogRecord":
        reader = BufferReader(body)
        record = cls(kind=kind, txn_id=reader.read_uint())
        if kind == REC_CREATE_TABLE:
            record.table = reader.read_str()
            record.key = reader.read_bytes()
        if kind in (REC_PUT, REC_DELETE):
            record.table = reader.read_str()
            record.key = reader.read_bytes()
            if reader.read_bool():
                record.before = reader.read_bytes()
            if reader.read_bool():
                record.after = reader.read_bytes()
        return record


class WriteAheadLog:
    """Append-only log over the untrusted store."""

    def __init__(self, untrusted: UntrustedStore, sync_enabled: bool = True) -> None:
        self.untrusted = untrusted
        self.sync_enabled = sync_enabled
        if not untrusted.exists(LOG_FILE):
            untrusted.write(LOG_FILE, 0, b"")
        self._tail = untrusted.size(LOG_FILE)
        self._buffer: List[bytes] = []
        self.records_written = 0

    # -- appends -----------------------------------------------------------------

    def append(self, record: LogRecord) -> None:
        """Buffer one record; it reaches disk at the next flush."""
        body = record.encode_body()
        framed = (
            _HEADER.pack(record.kind, len(body))
            + body
            + _CRC.pack(zlib.crc32(body) & 0xFFFFFFFF)
        )
        self._buffer.append(framed)
        self.records_written += 1

    def flush(self) -> None:
        """Write buffered records and force them to stable storage."""
        if self._buffer:
            blob = b"".join(self._buffer)
            self.untrusted.write(LOG_FILE, self._tail, blob)
            self._tail += len(blob)
            self._buffer.clear()
        if self.sync_enabled:
            self.untrusted.sync(LOG_FILE)

    def mark_checkpoint(self) -> None:
        """Append and flush a checkpoint marker."""
        self.append(LogRecord(kind=REC_CHECKPOINT))
        self.flush()

    @property
    def size_bytes(self) -> int:
        return self._tail

    # -- recovery -----------------------------------------------------------------

    def scan(self, start_offset: int = 0) -> Iterator[LogRecord]:
        """Yield intact records from ``start_offset``; stop at a torn one.

        ``start_offset`` must be a record boundary (it always is in
        practice: the callers pass positions recorded while no transaction
        was active).
        """
        data = self.untrusted.read(LOG_FILE)
        offset = start_offset
        while offset + _HEADER.size <= len(data):
            kind, body_len = _HEADER.unpack_from(data, offset)
            end = offset + _HEADER.size + body_len + _CRC.size
            if end > len(data):
                break  # torn tail
            body = data[offset + _HEADER.size:offset + _HEADER.size + body_len]
            (crc,) = _CRC.unpack_from(data, offset + _HEADER.size + body_len)
            if crc != zlib.crc32(body) & 0xFFFFFFFF:
                break  # torn or corrupt: stop replay here
            if kind not in (
                REC_BEGIN,
                REC_PUT,
                REC_DELETE,
                REC_COMMIT,
                REC_ABORT,
                REC_CHECKPOINT,
                REC_CREATE_TABLE,
            ):
                raise BaselineError(f"unknown log record kind {kind}")
            yield LogRecord.decode(kind, body)
            offset = end

    def replay_plan(self, start_offset: int = 0) -> List[LogRecord]:
        """The redo set from ``start_offset`` (a txn-boundary position).

        DDL records apply unconditionally (table creation flushes the log
        immediately); PUT/DELETE records apply only for committed
        transactions, in log order.  Redo is idempotent, so replaying onto
        pages that already reflect some of these operations is safe.
        """
        records = list(self.scan(start_offset))
        committed = {
            record.txn_id for record in records if record.kind == REC_COMMIT
        }
        plan = []
        for record in records:
            if record.kind == REC_CREATE_TABLE:
                plan.append(record)
            elif record.kind in (REC_PUT, REC_DELETE) and record.txn_id in committed:
                plan.append(record)
        return plan

    def truncate(self) -> None:
        """Drop the entire log (explicit checkpoint path only)."""
        self._buffer.clear()
        self.untrusted.truncate(LOG_FILE, 0)
        self._tail = 0
        if self.sync_enabled:
            self.untrusted.sync(LOG_FILE)
