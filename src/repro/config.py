"""Configuration objects for the TDB stack.

The paper stresses that TDB is *modular*: functionality (security, backup,
collections) can be traded for footprint and speed.  We express the same
knobs as small dataclasses that each layer receives at construction time.

Defaults follow the paper's evaluation setup: 60% maximum database
utilization, a 4 MB cache, SHA-1 hashing and a block cipher for the secure
profile (the paper used 3DES; see ``DESIGN.md`` for the substitution notes).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.crypto.cipher import CIPHER_KEY_SIZES, ENGINE_NAMES
from repro.errors import ConfigError

__all__ = [
    "SecurityProfile",
    "ChunkStoreConfig",
    "ObjectStoreConfig",
    "CollectionStoreConfig",
    "BaselineConfig",
]


@dataclass(frozen=True)
class SecurityProfile:
    """Selects the cryptographic machinery of the chunk store.

    ``hash_name``
        ``"sha1"`` (hashlib-accelerated), ``"sha1-pure"`` (this repo's
        from-scratch implementation) or ``"sha256"``.
    ``cipher_name``
        ``"aes-128"``, ``"aes-256"``, ``"3des"``, ``"des"`` or ``"null"``
        (no encryption; still padded framing so record layout is identical).
    ``enabled``
        When false the store runs in the paper's plain **TDB** mode: no
        hashing, no encryption, no one-way-counter bump per commit.  When
        true it runs as **TDB-S**.
    ``kernel``
        Selects the crypto *engine* behind the AES profiles.
        ``"native"`` uses the platform's crypto (OpenSSL via the
        ``cryptography`` package when importable, with a pure-python
        fallback) — the analogue of the native crypto TDB-S measured
        with; ``"fast"`` selects the precomputed-table AES and the
        batched whole-payload CBC/CTR kernels; ``"reference"`` keeps
        the per-block byte-wise path as a correctness oracle.  The
        default ``"auto"`` resolves at store-construction time via the
        ``REPRO_CRYPTO_ENGINE`` environment variable (falling back to
        ``"native"``), so a whole test suite or deployment can be
        switched without touching profile objects.  All engines produce
        identical on-disk images and interoperate freely.
    ``digest_memo``
        Whether the chunk store remembers which payload versions already
        verified so incremental scrubs skip clean subtrees.  Costs a
        dict entry per chunk; disable for minimal-footprint embeddings.
    ``pool_workers``
        Worker processes of the chunk store's digest pool, used to fan
        whole-segment verification (scrub, backup streams, replication
        shipments) across cores.  ``1`` (default) keeps everything
        serial in-process; ``0`` means one worker per CPU.
    """

    enabled: bool = True
    hash_name: str = "sha1"
    cipher_name: str = "aes-128"
    kernel: str = "auto"
    digest_memo: bool = True
    pool_workers: int = 1

    #: Hash engine names accepted by ``hash_name``.
    HASH_NAMES = ("sha1", "sha1-pure", "sha256")

    def __post_init__(self) -> None:
        if self.kernel != "auto" and self.kernel not in ENGINE_NAMES:
            raise ConfigError(
                f"unknown crypto engine: {self.kernel!r} "
                f"(valid: auto, {', '.join(ENGINE_NAMES)})"
            )
        if self.cipher_name != "null" and self.cipher_name not in CIPHER_KEY_SIZES:
            raise ConfigError(
                f"unknown cipher: {self.cipher_name!r} "
                f"(valid: null, {', '.join(CIPHER_KEY_SIZES)})"
            )
        if self.hash_name not in self.HASH_NAMES:
            raise ConfigError(
                f"unknown hash engine: {self.hash_name!r} "
                f"(valid: {', '.join(self.HASH_NAMES)})"
            )
        if self.pool_workers < 0:
            raise ConfigError("pool_workers must be >= 0 (0 = one per CPU)")

    @property
    def resolved_kernel(self) -> str:
        """The concrete engine name, with ``"auto"`` resolved.

        ``"auto"`` reads ``REPRO_CRYPTO_ENGINE`` (default ``"native"``)
        *at call time*, so configs baked at import time still honour an
        engine override set later (the engine-parametrized test fixtures
        rely on this).
        """
        if self.kernel != "auto":
            return self.kernel
        engine = os.environ.get("REPRO_CRYPTO_ENGINE", "native")
        if engine not in ENGINE_NAMES:
            raise ConfigError(
                f"REPRO_CRYPTO_ENGINE={engine!r} is not a crypto engine "
                f"(valid: {', '.join(ENGINE_NAMES)})"
            )
        return engine

    def with_cipher(self, cipher_name: str) -> "SecurityProfile":
        """Return a copy of this profile using a different cipher."""
        return replace(self, cipher_name=cipher_name)

    def with_hash(self, hash_name: str) -> "SecurityProfile":
        """Return a copy of this profile using a different hash."""
        return replace(self, hash_name=hash_name)

    def with_kernel(self, kernel: str) -> "SecurityProfile":
        """Return a copy of this profile using a different crypto kernel."""
        return replace(self, kernel=kernel)

    @classmethod
    def insecure(cls) -> "SecurityProfile":
        """Profile for plain TDB (no tamper detection, no secrecy)."""
        return cls(enabled=False, hash_name="sha1", cipher_name="null")

    @classmethod
    def paper_tdb_s(cls) -> "SecurityProfile":
        """The paper's TDB-S configuration: SHA-1 hashing + block cipher.

        TDB-S ran on native crypto (the paper calls its crypto cost
        *minor*), so the default ``"auto"`` engine — which resolves to
        ``"native"`` — is the faithful choice here.
        """
        return cls(enabled=True, hash_name="sha1", cipher_name="aes-128")

    @classmethod
    def reference_kernels(cls) -> "SecurityProfile":
        """TDB-S semantics on the per-block reference crypto path."""
        return cls(enabled=True, kernel="reference")


@dataclass(frozen=True)
class ChunkStoreConfig:
    """Tuning knobs of the log-structured chunk store.

    ``segment_size``
        Bytes per log segment file.  Small relative to real systems so the
        cleaner is exercised by modest workloads.
    ``max_utilization``
        Maximum fraction of segment space occupied by live chunks before
        the store grows instead of cleaning harder (paper section 3.2.1;
        the default 0.6 is the paper's default).
    ``checkpoint_residual_bytes``
        Checkpoint the location map once the residual log exceeds this many
        bytes; recovery replays at most this much log.
    ``map_fanout``
        Children per location-map node (the map is a radix tree over chunk
        ids; it doubles as the Merkle tree).
    ``map_cache_entries``
        Maximum number of map nodes cached in memory; the cache budget is
        shared with the object cache in the full stack.
    ``cleaner_segments_per_pass``
        How many victim segments one cleaning pass may process, bounding
        per-commit cleaning latency.
    ``initial_segments``
        Segments allocated when a fresh store is formatted.
    ``fsync``
        Whether durable commits flush through the OS cache (the paper opens
        log files with WRITE_THROUGH).
    """

    segment_size: int = 64 * 1024
    max_utilization: float = 0.6
    checkpoint_residual_bytes: int = 256 * 1024
    map_fanout: int = 64
    map_cache_entries: int = 1024
    cleaner_segments_per_pass: int = 4
    initial_segments: int = 4
    fsync: bool = False
    security: SecurityProfile = field(default_factory=SecurityProfile)

    def __post_init__(self) -> None:
        if self.segment_size < 4096:
            raise ValueError("segment_size must be at least 4096 bytes")
        if not 0.1 <= self.max_utilization <= 0.95:
            raise ValueError("max_utilization must lie in [0.1, 0.95]")
        if self.map_fanout < 2:
            raise ValueError("map_fanout must be at least 2")
        if self.initial_segments < 2:
            raise ValueError("initial_segments must be at least 2")


@dataclass(frozen=True)
class ObjectStoreConfig:
    """Tuning knobs of the object store.

    ``cache_bytes``
        Budget of the shared LRU cache (objects + map entries).  The
        paper's evaluation used 4 MB.
    ``locking``
        Transactional locking can be switched off for single-threaded
        embeddings (paper section 4.2.3).
    ``lock_timeout``
        Seconds a transaction waits for an object lock before a
        :class:`~repro.errors.LockTimeoutError` breaks the potential
        deadlock.
    """

    cache_bytes: int = 4 * 1024 * 1024
    locking: bool = True
    lock_timeout: float = 2.0

    def __post_init__(self) -> None:
        if self.cache_bytes < 4096:
            raise ValueError("cache_bytes must be at least 4096")
        if self.lock_timeout <= 0:
            raise ValueError("lock_timeout must be positive")


@dataclass(frozen=True)
class CollectionStoreConfig:
    """Tuning knobs of the collection store index implementations."""

    btree_order: int = 32
    hash_initial_buckets: int = 8
    hash_max_load: float = 2.0
    list_node_capacity: int = 64

    def __post_init__(self) -> None:
        if self.btree_order < 4:
            raise ValueError("btree_order must be at least 4")
        if self.hash_initial_buckets < 1:
            raise ValueError("hash_initial_buckets must be at least 1")
        if self.hash_max_load <= 0:
            raise ValueError("hash_max_load must be positive")
        if self.list_node_capacity < 1:
            raise ValueError("list_node_capacity must be at least 1")


@dataclass(frozen=True)
class BaselineConfig:
    """Tuning knobs of the Berkeley-DB-style baseline engine."""

    page_size: int = 4096
    cache_bytes: int = 4 * 1024 * 1024
    btree_min_keys: int = 4
    fsync: bool = False
    checkpoint_log: bool = False  # BDB's TPC-B run never checkpoints (fig 11b)

    def __post_init__(self) -> None:
        if self.page_size < 512:
            raise ValueError("page_size must be at least 512")
        if self.cache_bytes < self.page_size:
            raise ValueError("cache_bytes must hold at least one page")
