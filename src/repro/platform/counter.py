"""The one-way counter: a persistent counter that cannot be decremented.

The chunk store binds the counter value into every durable commit.  If a
consumer saves a copy of the database, buys content, and then restores the
old copy, the counter (which the attacker cannot rewind) exceeds the value
authenticated in the restored image and the replay is detected.

The paper points at special-purpose hardware (Infineon Eurochip) but its
own evaluation emulated the counter with a file; :class:`FileOneWayCounter`
does the same with an atomic rename protocol.
"""

from __future__ import annotations

import os
import threading
from abc import ABC, abstractmethod

from repro.errors import StoreError

__all__ = ["OneWayCounter", "MemoryOneWayCounter", "FileOneWayCounter"]


class OneWayCounter(ABC):
    """Abstract monotonic persistent counter."""

    @abstractmethod
    def read(self) -> int:
        """Return the current counter value."""

    @abstractmethod
    def increment(self) -> int:
        """Advance the counter by one and return the new value."""


class MemoryOneWayCounter(OneWayCounter):
    """In-memory counter for tests and CPU-isolated benchmarks."""

    def __init__(self, value: int = 0) -> None:
        if value < 0:
            raise StoreError("counter cannot start negative")
        self._value = value
        self._lock = threading.Lock()

    def read(self) -> int:
        with self._lock:
            return self._value

    def increment(self) -> int:
        with self._lock:
            self._value += 1
            return self._value


class FileOneWayCounter(OneWayCounter):
    """File-backed counter with crash-safe, monotonic updates.

    The new value is written to a sibling temp file and renamed over the
    current one, so a crash leaves either the old or the new value, never
    garbage.  Reads refuse to go backwards even if the file was replaced
    with a smaller value while the process ran — the hardware contract is
    monotonicity, so regression is treated as a platform fault.
    """

    def __init__(self, path: str) -> None:
        self.path = os.path.abspath(path)
        self._lock = threading.Lock()
        self._high_water = 0
        if not os.path.exists(self.path):
            self._persist(0)
        self._high_water = self._load()

    def _load(self) -> int:
        try:
            with open(self.path, "rb") as handle:
                raw = handle.read().strip()
            value = int(raw.decode("ascii"))
        except (OSError, ValueError) as exc:
            raise StoreError(f"one-way counter file unreadable: {exc}") from exc
        if value < 0:
            raise StoreError("one-way counter file holds a negative value")
        return value

    def _persist(self, value: int) -> None:
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(str(value).encode("ascii"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    def read(self) -> int:
        with self._lock:
            value = self._load()
            if value < self._high_water:
                raise StoreError(
                    "one-way counter regressed on disk "
                    f"({value} < {self._high_water}); platform violated monotonicity"
                )
            self._high_water = value
            return value

    def increment(self) -> int:
        with self._lock:
            value = self._load()
            if value < self._high_water:
                raise StoreError(
                    "one-way counter regressed on disk "
                    f"({value} < {self._high_water}); platform violated monotonicity"
                )
            value += 1
            self._persist(value)
            self._high_water = value
            return value
