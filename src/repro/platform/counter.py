"""The one-way counter: a persistent counter that cannot be decremented.

The chunk store binds the counter value into every durable commit.  If a
consumer saves a copy of the database, buys content, and then restores the
old copy, the counter (which the attacker cannot rewind) exceeds the value
authenticated in the restored image and the replay is detected.

The paper points at special-purpose hardware (Infineon Eurochip) but its
own evaluation emulated the counter with a file; :class:`FileOneWayCounter`
does the same with an atomic rename protocol.
"""

from __future__ import annotations

import os
import threading
from abc import ABC, abstractmethod

from repro.errors import StoreError, TamperDetectedError

__all__ = [
    "OneWayCounter",
    "MemoryOneWayCounter",
    "FileOneWayCounter",
    "MirrorOneWayCounter",
]


class OneWayCounter(ABC):
    """Abstract monotonic persistent counter."""

    @abstractmethod
    def read(self) -> int:
        """Return the current counter value."""

    @abstractmethod
    def increment(self) -> int:
        """Advance the counter by one and return the new value."""


class MemoryOneWayCounter(OneWayCounter):
    """In-memory counter for tests and CPU-isolated benchmarks."""

    def __init__(self, value: int = 0) -> None:
        if value < 0:
            raise StoreError("counter cannot start negative")
        self._value = value
        self._lock = threading.Lock()

    def read(self) -> int:
        with self._lock:
            return self._value

    def increment(self) -> int:
        with self._lock:
            self._value += 1
            return self._value


class MirrorOneWayCounter(OneWayCounter):
    """A pinned counter for verifying a *copy* of someone else's store.

    A replica holds a byte-for-byte image of the primary's untrusted
    store, so the counter value authenticated inside that image is the
    *primary's* — the replica has no hardware of its own to consult.  The
    applier pins this mirror to the counter value the primary asserted
    for the shipped generation; opening the image then demands exact
    equality.  In particular the chunk store's lost-commit tolerance
    (actual == expected - 1 re-advances the counter) is unavailable:
    :meth:`increment` raises, turning a truncate-one-commit +
    rewind-the-asserted-counter shipment into a detected tamper instead
    of a silently accepted rollback.
    """

    def __init__(self, value: int) -> None:
        if value < 0:
            raise StoreError("counter cannot be negative")
        self._value = value

    def read(self) -> int:
        return self._value

    def increment(self) -> int:
        raise TamperDetectedError(
            "replica counter is a read-only mirror of the primary's "
            "one-way counter; the shipped image does not match the "
            "counter value asserted for it"
        )


class FileOneWayCounter(OneWayCounter):
    """File-backed counter with crash-safe, monotonic updates.

    The new value is written to a sibling temp file and renamed over the
    current one, so a crash leaves either the old or the new value, never
    garbage.  Reads refuse to go backwards even if the file was replaced
    with a smaller value while the process ran — the hardware contract is
    monotonicity, so regression is treated as a platform fault.
    """

    def __init__(self, path: str) -> None:
        self.path = os.path.abspath(path)
        self._lock = threading.Lock()
        self._high_water = 0
        if not os.path.exists(self.path):
            self._persist(0)
        self._high_water = self._load()

    @classmethod
    def initialize(cls, path: str, value: int) -> "FileOneWayCounter":
        """Seed (or fast-forward) the counter file at ``path`` to ``value``.

        Used by replica promotion: the promoted node binds itself to a
        real one-way counter starting at the last value it verified from
        the primary.  Refuses to move an existing counter backwards —
        that would be exactly the rewind the counter exists to prevent.
        """
        if value < 0:
            raise StoreError("counter cannot be negative")
        counter = cls(path)
        with counter._lock:
            current = counter._load()
            if current > value:
                raise StoreError(
                    "refusing to rewind one-way counter "
                    f"({current} -> {value})"
                )
            counter._persist(value)
            counter._high_water = value
        return counter

    def _load(self) -> int:
        try:
            with open(self.path, "rb") as handle:
                raw = handle.read().strip()
            value = int(raw.decode("ascii"))
        except (OSError, ValueError) as exc:
            raise StoreError(f"one-way counter file unreadable: {exc}") from exc
        if value < 0:
            raise StoreError("one-way counter file holds a negative value")
        return value

    def _persist(self, value: int) -> None:
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(str(value).encode("ascii"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    def read(self) -> int:
        with self._lock:
            value = self._load()
            if value < self._high_water:
                raise StoreError(
                    "one-way counter regressed on disk "
                    f"({value} < {self._high_water}); platform violated monotonicity"
                )
            self._high_water = value
            return value

    def increment(self) -> int:
        with self._lock:
            value = self._load()
            if value < self._high_water:
                raise StoreError(
                    "one-way counter regressed on disk "
                    f"({value} < {self._high_water}); platform violated monotonicity"
                )
            value += 1
            self._persist(value)
            self._high_water = value
            return value
