"""I/O accounting shared by the platform stores.

The paper attributes TDB's TPC-B win mostly to write volume (~523 bytes
per transaction vs ~1100 for Berkeley DB, section 7.4).  Since absolute
wall-clock numbers on a 2001 disk are not reproducible, the benchmark
harness relies on these counters to compare the mechanisms, so every
store implementation funnels its traffic through an :class:`IOStats`.

The counters are updated under an internal mutex: with the service layer
(:mod:`repro.server`) many sessions drive one platform store from
different threads, and bare ``+=`` on shared ints drops increments under
contention.  Snapshots (:meth:`snapshot` / :meth:`delta_since`) are
detached copies and need no further synchronization.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

__all__ = ["IOStats"]


@dataclass
class IOStats:
    """Mutable counters of traffic through a platform store.

    ``random_writes`` counts writes that did not continue where the
    previous write to the same file ended — on a disk those pay a seek,
    which is the cost difference between a log-structured store's
    sequential appends and a page store's scattered write-back.
    """

    bytes_read: int = 0
    bytes_written: int = 0
    read_calls: int = 0
    write_calls: int = 0
    sync_calls: int = 0
    random_writes: int = 0
    transient_retries: int = 0
    transient_giveups: int = 0
    _write_cursors: Dict[str, int] = field(default_factory=dict, repr=False)
    _sections: Dict[str, Callable[[], Dict[str, object]]] = field(
        default_factory=dict, repr=False, compare=False
    )
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def attach_section(
        self, name: str, provider: Callable[[], Dict[str, object]]
    ) -> None:
        """Nest ``provider()``'s dict under ``name`` in :meth:`as_dict`.

        The chunk store attaches its :class:`~repro.perf.PerfStats` here
        so one ``stats`` round-trip reports I/O *and* crypto-kernel
        counters.  Providers must be cheap and thread-safe; snapshots
        and deltas carry plain counters only (no sections).
        """
        with self._lock:
            self._sections[name] = provider

    def record_read(self, nbytes: int) -> None:
        with self._lock:
            self.bytes_read += nbytes
            self.read_calls += 1

    def record_write(
        self, nbytes: int, name: Optional[str] = None, offset: Optional[int] = None
    ) -> None:
        with self._lock:
            self.bytes_written += nbytes
            self.write_calls += 1
            if name is not None and offset is not None:
                if self._write_cursors.get(name) != offset:
                    self.random_writes += 1
                self._write_cursors[name] = offset + nbytes

    def record_sync(self) -> None:
        with self._lock:
            self.sync_calls += 1

    def record_retry(self) -> None:
        """One transient fault absorbed by retrying the operation."""
        with self._lock:
            self.transient_retries += 1

    def record_giveup(self) -> None:
        """Retries exhausted; the transient fault escaped to the caller."""
        with self._lock:
            self.transient_giveups += 1

    def reset(self) -> None:
        """Zero all counters (used between benchmark phases)."""
        with self._lock:
            self.bytes_read = 0
            self.bytes_written = 0
            self.read_calls = 0
            self.write_calls = 0
            self.sync_calls = 0
            self.random_writes = 0
            self.transient_retries = 0
            self.transient_giveups = 0
            self._write_cursors.clear()

    def snapshot(self) -> "IOStats":
        """Return an independent copy of the current counters."""
        with self._lock:
            return IOStats(
                bytes_read=self.bytes_read,
                bytes_written=self.bytes_written,
                read_calls=self.read_calls,
                write_calls=self.write_calls,
                sync_calls=self.sync_calls,
                random_writes=self.random_writes,
                transient_retries=self.transient_retries,
                transient_giveups=self.transient_giveups,
            )

    def delta_since(self, earlier: "IOStats") -> "IOStats":
        """Return the difference between these counters and ``earlier``."""
        current = self.snapshot()
        return IOStats(
            bytes_read=current.bytes_read - earlier.bytes_read,
            bytes_written=current.bytes_written - earlier.bytes_written,
            read_calls=current.read_calls - earlier.read_calls,
            write_calls=current.write_calls - earlier.write_calls,
            sync_calls=current.sync_calls - earlier.sync_calls,
            random_writes=current.random_writes - earlier.random_writes,
            transient_retries=(
                current.transient_retries - earlier.transient_retries
            ),
            transient_giveups=(
                current.transient_giveups - earlier.transient_giveups
            ),
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-able view of the counters (the service ``stats`` verb)."""
        current = self.snapshot()
        with self._lock:
            sections = dict(self._sections)
        out: Dict[str, object] = {
            "bytes_read": current.bytes_read,
            "bytes_written": current.bytes_written,
            "read_calls": current.read_calls,
            "write_calls": current.write_calls,
            "sync_calls": current.sync_calls,
            "random_writes": current.random_writes,
            "transient_retries": current.transient_retries,
            "transient_giveups": current.transient_giveups,
        }
        for name, provider in sections.items():
            out[name] = provider()
        return out
