"""Transient-fault-tolerant wrapper around an untrusted store.

The paper's target devices store the database on consumer media —
removable flash, cheap disks — where I/O faults are often *transient*:
the same read succeeds a moment later.  :class:`ResilientUntrustedStore`
wraps any :class:`~repro.platform.untrusted.UntrustedStore` and retries
operations that fail with :class:`~repro.errors.TransientStoreError`
(or an ``OSError`` whose errno classifies as transient) under a bounded,
*deterministic* exponential-backoff schedule.

Determinism matters because the fault-injection sweeps replay thousands
of scenarios and must produce identical traces on every run: the jitter
is derived from a CRC32 hash of ``(seed, op_id, attempt)`` rather than a
random source, and the sleep function is injectable (the test suite
passes a recording no-op).
"""

from __future__ import annotations

import struct
import time
import zlib
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import TransientStoreError
from repro.platform.untrusted import UntrustedStore, classify_os_error

__all__ = ["RetryPolicy", "ResilientUntrustedStore"]


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic exponential-backoff schedule for transient faults.

    Attempt *n* (1-based) that fails sleeps for::

        min(max_delay, base_delay * multiplier ** (n - 1)) * (1 + j)

    where ``j`` is a deterministic pseudo-jitter in ``[0, jitter]``
    computed from ``(seed, op_id, attempt)`` — no global random state,
    so a replayed sweep observes byte-identical delay sequences.
    """

    max_attempts: int = 4
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1.0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def delay(self, attempt: int, op_id: int = 0) -> float:
        """Backoff delay after the given failed attempt (1-based)."""
        if attempt < 1:
            raise ValueError("attempt numbers are 1-based")
        raw = self.base_delay * (self.multiplier ** (attempt - 1))
        capped = min(self.max_delay, raw)
        if self.jitter == 0.0:
            return capped
        digest = zlib.crc32(struct.pack(">qqq", self.seed, op_id, attempt))
        fraction = (digest & 0xFFFF) / 0xFFFF
        return capped * (1.0 + self.jitter * fraction)

    def schedule(self, op_id: int = 0) -> List[float]:
        """The full delay sequence for one operation (len = max_attempts - 1)."""
        return [self.delay(n, op_id) for n in range(1, self.max_attempts)]


class ResilientUntrustedStore(UntrustedStore):
    """Retries transient faults of an inner store with bounded backoff.

    Permanent :class:`~repro.errors.StoreError` failures propagate
    immediately; :class:`~repro.errors.TransientStoreError` (and raw
    ``OSError`` with a transient errno, in case a foreign store
    implementation leaks one) is retried up to
    ``policy.max_attempts`` times.  Absorbed faults are counted in
    ``stats.transient_retries``; exhausted operations bump
    ``stats.transient_giveups`` and re-raise the last transient error.

    The wrapper exposes the *inner* store's ``stats`` object so existing
    benchmark accounting keeps seeing every byte that actually moved,
    including the retried attempts.
    """

    def __init__(
        self,
        inner: UntrustedStore,
        policy: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        super().__init__()
        self.inner = inner
        self.policy = policy or RetryPolicy()
        self._sleep = sleep
        self._op_counter = 0
        # Share the inner store's counters so retry accounting and byte
        # accounting land in one place.
        self.stats = inner.stats

    # -- retry core --------------------------------------------------------

    def _run(self, context: str, operation: Callable[[], object]) -> object:
        self._op_counter += 1
        op_id = self._op_counter
        attempt = 0
        while True:
            attempt += 1
            try:
                return operation()
            except TransientStoreError as exc:
                fault = exc
            except OSError as exc:
                classified = classify_os_error(exc, context)
                if not isinstance(classified, TransientStoreError):
                    raise classified from exc
                fault = classified
            if attempt >= self.policy.max_attempts:
                self.stats.record_giveup()
                raise fault
            self.stats.record_retry()
            self._sleep(self.policy.delay(attempt, op_id))

    # -- namespace ---------------------------------------------------------

    def list_files(self) -> List[str]:
        return self._run("list_files", self.inner.list_files)

    def exists(self, name: str) -> bool:
        return self._run(f"exists({name!r})", lambda: self.inner.exists(name))

    def size(self, name: str) -> int:
        return self._run(f"size({name!r})", lambda: self.inner.size(name))

    def delete(self, name: str) -> None:
        self._run(f"delete({name!r})", lambda: self.inner.delete(name))

    # -- data --------------------------------------------------------------

    def read(self, name: str, offset: int = 0, length: Optional[int] = None) -> bytes:
        return self._run(
            f"read({name!r})", lambda: self.inner.read(name, offset, length)
        )

    def write(self, name: str, offset: int, data: bytes) -> None:
        self._run(f"write({name!r})", lambda: self.inner.write(name, offset, data))

    def truncate(self, name: str, size: int) -> None:
        self._run(f"truncate({name!r})", lambda: self.inner.truncate(name, size))

    def sync(self, name: str) -> None:
        self._run(f"sync({name!r})", lambda: self.inner.sync(name))
