"""Attacker toolkit: offline manipulation of the untrusted store.

The paper's threat model gives the consumer full control of the device's
storage: they can read it, flip bits, splice records, or save an old copy
of the whole database and replay it later to erase purchases.  This module
packages those manipulations so tests and examples can demonstrate that the
chunk store *detects* each of them (it cannot prevent them).

This is defensive tooling: it attacks only the reproduction's own stores to
verify tamper detection, mirroring the paper's security argument.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import StoreError
from repro.platform.untrusted import UntrustedStore

__all__ = ["Attacker"]


class Attacker:
    """Wraps an :class:`UntrustedStore` with attack operations."""

    def __init__(self, store: UntrustedStore) -> None:
        self.store = store

    # -- reading (secrecy attacks) ------------------------------------------

    def dump(self) -> Dict[str, bytes]:
        """Read the entire untrusted store (offline media analysis)."""
        return {name: self.store.read(name) for name in self.store.list_files()}

    def search_plaintext(self, needle: bytes) -> List[str]:
        """Return the files whose raw contents contain ``needle``.

        Used to verify secrecy: with encryption on, application plaintext
        must never be found in the untrusted store.
        """
        if not needle:
            raise ValueError("needle must be non-empty")
        return [name for name, data in self.dump().items() if needle in data]

    # -- modification (integrity attacks) ------------------------------------

    def flip_bit(self, name: str, offset: int, bit: int = 0) -> None:
        """Flip one bit of ``name`` at byte ``offset``."""
        if not 0 <= bit < 8:
            raise ValueError("bit index must be in [0, 8)")
        size = self.store.size(name)
        if not 0 <= offset < size:
            raise StoreError(f"offset {offset} outside {name!r} (size {size})")
        original = self.store.read(name, offset, 1)
        self.store.write(name, offset, bytes([original[0] ^ (1 << bit)]))

    def overwrite(self, name: str, offset: int, data: bytes) -> None:
        """Overwrite bytes of ``name`` starting at ``offset``."""
        self.store.write(name, offset, data)

    def truncate(self, name: str, size: int) -> None:
        """Truncate ``name`` to ``size`` bytes (chop off log tail)."""
        self.store.truncate(name, size)

    def delete(self, name: str) -> None:
        """Delete ``name`` outright."""
        self.store.delete(name)

    def splice(self, source: str, target: str) -> None:
        """Replace the contents of ``target`` with those of ``source``.

        Models moving valid-looking records between locations to confuse
        the store with authentic-but-misplaced data.
        """
        self.store.truncate(target, 0)
        self.store.write(target, 0, self.store.read(source))

    # -- replay attacks -------------------------------------------------------

    def save_image(self) -> Dict[str, bytes]:
        """Save a full copy of the database (step one of a replay)."""
        return self.dump()

    def replay_image(self, image: Dict[str, bytes]) -> None:
        """Restore a previously saved copy over the current database.

        The classic DRM attack: purchase content, then roll the database
        back to before the purchase.  The one-way counter cannot be rolled
        back, which is how the chunk store catches this.
        """
        for name in self.store.list_files():
            if name not in image:
                self.store.delete(name)
        for name, data in image.items():
            if self.store.exists(name):
                self.store.truncate(name, 0)
            self.store.write(name, 0, data)

    # -- reconnaissance -------------------------------------------------------

    def traffic_profile(self, before: Optional[Dict[str, bytes]] = None) -> Dict[str, int]:
        """Byte-level diff sizes per file against a previous dump.

        A traffic analyst watching removable media sees which regions
        changed; log-structuring makes linking those regions to logical
        records hard (paper section 3.2.1).  Returns changed-byte counts.
        """
        current = self.dump()
        if before is None:
            return {name: len(data) for name, data in current.items()}
        profile: Dict[str, int] = {}
        for name, data in current.items():
            old = before.get(name, b"")
            limit = max(len(data), len(old))
            padded_new = data.ljust(limit, b"\x00")
            padded_old = old.ljust(limit, b"\x00")
            changed = sum(1 for a, b in zip(padded_new, padded_old) if a != b)
            if changed:
                profile[name] = changed
        for name in before:
            if name not in current:
                profile[name] = len(before[name])
        return profile
