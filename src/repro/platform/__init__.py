"""Platform substrates assumed (dashed boxes) by the TDB architecture.

The paper expects the hosting device to provide four infrastructure
modules (Figure 1):

* an **untrusted store** — file-system-like random-access storage holding
  the database; an attacker may read and modify it arbitrarily,
* an **archival store** — stream-based sequential storage for backups,
  equally untrusted,
* a **secret store** — a small store readable only by authorized programs,
  holding the database secret key (ROM / battery-backed SRAM on a device),
* a **one-way counter** — a persistent counter that cannot be decremented
  (special-purpose hardware on a device; the paper's own evaluation
  emulated it with a file, as we do in :class:`FileOneWayCounter`).

Each substrate has an in-memory implementation (fast, introspectable — the
attacker toolkit and the test suite use it) and a file-backed one (real
persistence for the benchmarks and examples).
"""

from repro.platform.iostats import IOStats
from repro.platform.untrusted import (
    UntrustedStore,
    MemoryUntrustedStore,
    FileUntrustedStore,
    TRANSIENT_ERRNOS,
    classify_os_error,
)
from repro.platform.resilient import RetryPolicy, ResilientUntrustedStore
from repro.platform.secret import SecretStore, MemorySecretStore, FileSecretStore
from repro.platform.counter import (
    OneWayCounter,
    MemoryOneWayCounter,
    FileOneWayCounter,
    MirrorOneWayCounter,
)
from repro.platform.archival import (
    ArchivalStore,
    MemoryArchivalStore,
    FileArchivalStore,
)
from repro.platform.staging import StagedArchivalStore
from repro.platform.attacker import Attacker

__all__ = [
    "IOStats",
    "UntrustedStore",
    "MemoryUntrustedStore",
    "FileUntrustedStore",
    "TRANSIENT_ERRNOS",
    "classify_os_error",
    "RetryPolicy",
    "ResilientUntrustedStore",
    "SecretStore",
    "MemorySecretStore",
    "FileSecretStore",
    "OneWayCounter",
    "MemoryOneWayCounter",
    "FileOneWayCounter",
    "MirrorOneWayCounter",
    "ArchivalStore",
    "MemoryArchivalStore",
    "FileArchivalStore",
    "StagedArchivalStore",
    "Attacker",
]
