"""The archival store: stream-based sequential storage for backups.

The backup store writes validated backup streams here and reads them back
at restore time.  Like the untrusted store, the archival store is under
attacker control — a typical deployment stages backups locally and
opportunistically migrates them to a remote server — so backup streams are
encrypted and authenticated by the backup store, never by this layer.
"""

from __future__ import annotations

import io
import os
import threading
from abc import ABC, abstractmethod
from typing import Dict, List, BinaryIO

from repro.errors import StoreError

__all__ = ["ArchivalStore", "MemoryArchivalStore", "FileArchivalStore"]


class ArchivalStore(ABC):
    """Abstract store of named append-once byte streams."""

    @abstractmethod
    def create_stream(self, name: str) -> BinaryIO:
        """Open a new stream for writing; fails if ``name`` exists."""

    @abstractmethod
    def open_stream(self, name: str) -> BinaryIO:
        """Open an existing stream for sequential reading."""

    @abstractmethod
    def list_streams(self) -> List[str]:
        """Return the names of all streams, sorted."""

    @abstractmethod
    def delete_stream(self, name: str) -> None:
        """Remove a stream; raise :class:`StoreError` if absent."""

    @abstractmethod
    def exists(self, name: str) -> bool:
        """Return whether a stream called ``name`` exists."""


class _MemoryStreamWriter(io.BytesIO):
    """BytesIO that publishes its contents into the store on close."""

    def __init__(self, store: "MemoryArchivalStore", name: str) -> None:
        super().__init__()
        self._store = store
        self._name = name

    def close(self) -> None:
        if not self.closed:
            self._store._publish(self._name, self.getvalue())
        super().close()


class MemoryArchivalStore(ArchivalStore):
    """In-memory archival store for tests and demos."""

    def __init__(self) -> None:
        self._streams: Dict[str, bytes] = {}
        self._lock = threading.Lock()

    def _publish(self, name: str, data: bytes) -> None:
        with self._lock:
            self._streams[name] = data

    def create_stream(self, name: str) -> BinaryIO:
        with self._lock:
            if name in self._streams:
                raise StoreError(f"archival stream already exists: {name!r}")
            # Reserve the name so concurrent creators collide immediately.
            self._streams[name] = b""
        return _MemoryStreamWriter(self, name)

    def open_stream(self, name: str) -> BinaryIO:
        with self._lock:
            if name not in self._streams:
                raise StoreError(f"no such archival stream: {name!r}")
            return io.BytesIO(self._streams[name])

    def list_streams(self) -> List[str]:
        with self._lock:
            return sorted(self._streams)

    def delete_stream(self, name: str) -> None:
        with self._lock:
            if name not in self._streams:
                raise StoreError(f"no such archival stream: {name!r}")
            del self._streams[name]

    def exists(self, name: str) -> bool:
        with self._lock:
            return name in self._streams

    # -- attacker access ---------------------------------------------------

    def corrupt(self, name: str, offset: int, replacement: bytes) -> None:
        """Overwrite bytes of a stored stream (attacker interface)."""
        with self._lock:
            if name not in self._streams:
                raise StoreError(f"no such archival stream: {name!r}")
            data = bytearray(self._streams[name])
            data[offset:offset + len(replacement)] = replacement
            self._streams[name] = bytes(data)


class FileArchivalStore(ArchivalStore):
    """Directory-backed archival store using one file per stream."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)

    def _path(self, name: str) -> str:
        if not name or "/" in name or os.sep in name or name in (".", ".."):
            raise StoreError(f"invalid archival stream name: {name!r}")
        return os.path.join(self.root, name)

    def create_stream(self, name: str) -> BinaryIO:
        path = self._path(name)
        if os.path.exists(path):
            raise StoreError(f"archival stream already exists: {name!r}")
        return open(path, "wb")

    def open_stream(self, name: str) -> BinaryIO:
        path = self._path(name)
        if not os.path.isfile(path):
            raise StoreError(f"no such archival stream: {name!r}")
        return open(path, "rb")

    def list_streams(self) -> List[str]:
        return sorted(
            entry for entry in os.listdir(self.root)
            if os.path.isfile(os.path.join(self.root, entry))
        )

    def delete_stream(self, name: str) -> None:
        path = self._path(name)
        if not os.path.isfile(path):
            raise StoreError(f"no such archival stream: {name!r}")
        os.remove(path)

    def exists(self, name: str) -> bool:
        return os.path.isfile(self._path(name))
