"""Staged archival store: local staging + opportunistic remote migration.

The paper (section 2): "A typical implementation of the backup store may
stage backups in the untrusted store and opportunistically migrate them
to a remote server."  :class:`StagedArchivalStore` implements exactly
that composition: new streams land in a staging area carved out of the
local untrusted store (``bak-<name>`` files), and :meth:`migrate` pushes
completed streams to a remote :class:`ArchivalStore` when connectivity
allows — reads fall through to the remote for already-migrated streams,
so callers never care where a backup currently lives.

Security note: the staging area needs no protection of its own — backup
streams are already encrypted and MACed by the backup store, and restore
re-validates them wherever they come from.
"""

from __future__ import annotations

import io
from typing import BinaryIO, List

from repro.errors import StoreError
from repro.platform.archival import ArchivalStore
from repro.platform.untrusted import UntrustedStore

__all__ = ["StagedArchivalStore"]

_PREFIX = "bak-"


class _StagingWriter(io.BytesIO):
    """Buffers a stream and lands it in the staging area on close."""

    def __init__(self, store: "StagedArchivalStore", name: str) -> None:
        super().__init__()
        self._store = store
        self._name = name

    def close(self) -> None:
        if not self.closed:
            self._store._finish_staging(self._name, self.getvalue())
        super().close()


class StagedArchivalStore(ArchivalStore):
    """Archival store staging locally, migrating to a remote store."""

    def __init__(self, local: UntrustedStore, remote: ArchivalStore) -> None:
        self.local = local
        self.remote = remote

    # -- helpers -------------------------------------------------------------

    def _staged_name(self, name: str) -> str:
        if not name or "/" in name:
            raise StoreError(f"invalid archival stream name: {name!r}")
        return _PREFIX + name

    def _finish_staging(self, name: str, data: bytes) -> None:
        self.local.write(self._staged_name(name), 0, data)

    def staged_streams(self) -> List[str]:
        """Streams still waiting in the local staging area."""
        return sorted(
            name[len(_PREFIX):]
            for name in self.local.list_files()
            if name.startswith(_PREFIX)
        )

    # -- ArchivalStore interface -----------------------------------------------

    def create_stream(self, name: str) -> BinaryIO:
        if self.exists(name):
            raise StoreError(f"archival stream already exists: {name!r}")
        # Reserve the staging slot immediately.
        self.local.write(self._staged_name(name), 0, b"")
        return _StagingWriter(self, name)

    def open_stream(self, name: str) -> BinaryIO:
        staged = self._staged_name(name)
        if self.local.exists(staged):
            return io.BytesIO(self.local.read(staged))
        return self.remote.open_stream(name)

    def list_streams(self) -> List[str]:
        names = set(self.staged_streams())
        names.update(self.remote.list_streams())
        return sorted(names)

    def delete_stream(self, name: str) -> None:
        found = False
        staged = self._staged_name(name)
        if self.local.exists(staged):
            self.local.delete(staged)
            found = True
        if self.remote.exists(name):
            self.remote.delete_stream(name)
            found = True
        if not found:
            raise StoreError(f"no such archival stream: {name!r}")

    def exists(self, name: str) -> bool:
        return self.local.exists(self._staged_name(name)) or self.remote.exists(name)

    # -- migration ------------------------------------------------------------------

    def migrate(self, limit: int = None) -> List[str]:
        """Push staged streams to the remote store; return those migrated.

        Idempotent and crash-safe in the right order: the remote copy is
        written completely before the staged copy is deleted, so a crash
        can leave a duplicate (harmless — same bytes) but never lose a
        backup.  A stream whose name already exists remotely is treated
        as previously migrated.
        """
        migrated = []
        for name in self.staged_streams():
            if limit is not None and len(migrated) >= limit:
                break
            data = self.local.read(self._staged_name(name))
            if not self.remote.exists(name):
                writer = self.remote.create_stream(name)
                try:
                    writer.write(data)
                finally:
                    writer.close()
            self.local.delete(self._staged_name(name))
            migrated.append(name)
        return migrated
