"""The secret store: a small trusted store holding the database key.

On a consumer device the paper expects this to live in ROM or in
battery-backed SRAM that zeroes itself on physical tampering.  Programs
that can read the secret store are *authorized*; everything the database
persists outside it is protected by keys derived from this secret.
"""

from __future__ import annotations

import hmac
import hashlib
import os
from abc import ABC, abstractmethod

from repro.errors import StoreError

__all__ = ["SecretStore", "MemorySecretStore", "FileSecretStore"]

_MIN_SECRET_BYTES = 16


class SecretStore(ABC):
    """Abstract read-only store of the master secret."""

    @abstractmethod
    def read_secret(self) -> bytes:
        """Return the master secret (at least 16 bytes)."""

    def derive_key(self, purpose: str, length: int) -> bytes:
        """Derive a ``purpose``-specific key from the master secret.

        Separate keys for encryption, MACs and backups are derived with
        HMAC-SHA-256 in counter mode so that a leak of one derived key
        does not expose the others.
        """
        if length <= 0:
            raise ValueError("key length must be positive")
        secret = self.read_secret()
        blocks = []
        counter = 0
        while sum(len(block) for block in blocks) < length:
            message = purpose.encode("utf-8") + b"\x00" + counter.to_bytes(4, "big")
            blocks.append(hmac.new(secret, message, hashlib.sha256).digest())
            counter += 1
        return b"".join(blocks)[:length]


class MemorySecretStore(SecretStore):
    """Secret held in process memory (models ROM on the device)."""

    def __init__(self, secret: bytes) -> None:
        if len(secret) < _MIN_SECRET_BYTES:
            raise StoreError(
                f"secret must be at least {_MIN_SECRET_BYTES} bytes, got {len(secret)}"
            )
        self._secret = bytes(secret)

    @classmethod
    def generate(cls) -> "MemorySecretStore":
        """Create a store around a fresh random 32-byte secret."""
        return cls(os.urandom(32))

    def read_secret(self) -> bytes:
        return self._secret


class FileSecretStore(SecretStore):
    """Secret held in a file outside the untrusted store.

    This models firmware-resident secrets for the file-backed deployments
    used by the benchmarks; the file must *not* live inside the untrusted
    store's directory (that would hand the key to the attacker).
    """

    def __init__(self, path: str, create: bool = False) -> None:
        self.path = os.path.abspath(path)
        if create and not os.path.exists(self.path):
            with open(self.path, "wb") as handle:
                handle.write(os.urandom(32))
            os.chmod(self.path, 0o600)
        if not os.path.isfile(self.path):
            raise StoreError(f"secret store file missing: {self.path}")

    def read_secret(self) -> bytes:
        with open(self.path, "rb") as handle:
            secret = handle.read()
        if len(secret) < _MIN_SECRET_BYTES:
            raise StoreError("secret store file is too short to be a key")
        return secret
