"""The untrusted store: file-system-like random-access storage.

The chunk store keeps its log segments and master record here, and the
baseline engine keeps its page files and WAL here.  The threat model is
that an attacker may read, modify, or replace any content at any time —
secrecy and integrity are provided *above* this layer, never by it.

Error contract: every failure surfaces as a :class:`StoreError` (or its
:class:`TransientStoreError` subclass for faults worth retrying) — raw
``OSError`` never escapes this layer, so the "everything derives from
``TDBError``" promise of :mod:`repro.errors` holds for media faults too.
"""

from __future__ import annotations

import errno
import os
import threading
from abc import ABC, abstractmethod
from contextlib import contextmanager
from typing import Dict, List, Optional

from repro.errors import StoreError, TransientStoreError
from repro.platform.iostats import IOStats

__all__ = [
    "UntrustedStore",
    "MemoryUntrustedStore",
    "FileUntrustedStore",
    "TRANSIENT_ERRNOS",
    "classify_os_error",
]


#: errno values treated as transient media faults: the same call may
#: succeed if retried (interrupted syscall, busy device, timeout, the
#: recoverable read errors flaky removable media produce).
TRANSIENT_ERRNOS = frozenset(
    {
        errno.EINTR,
        errno.EAGAIN,
        errno.EBUSY,
        errno.ETIMEDOUT,
        errno.EIO,
    }
)


def classify_os_error(exc: OSError, context: str) -> StoreError:
    """Map a raw ``OSError`` into the store-error taxonomy.

    Transient errnos become :class:`TransientStoreError` (retryable);
    everything else — missing files, permissions, full disks — is a
    permanent :class:`StoreError`.
    """
    if exc.errno in TRANSIENT_ERRNOS:
        return TransientStoreError(f"transient I/O fault during {context}: {exc}")
    return StoreError(f"I/O failure during {context}: {exc}")


@contextmanager
def _translating(context: str):
    """Re-raise any ``OSError`` inside the block as a classified store error."""
    try:
        yield
    except OSError as exc:
        raise classify_os_error(exc, context) from exc


class UntrustedStore(ABC):
    """Abstract random-access store of named byte files.

    Offsets may point past the current end of a file: writes extend the
    file, zero-filling any gap, mirroring POSIX sparse-file semantics.
    """

    def __init__(self) -> None:
        self.stats = IOStats()

    # -- namespace ---------------------------------------------------------

    @abstractmethod
    def list_files(self) -> List[str]:
        """Return the names of all files, sorted."""

    @abstractmethod
    def exists(self, name: str) -> bool:
        """Return whether a file called ``name`` exists."""

    @abstractmethod
    def size(self, name: str) -> int:
        """Return the size of ``name`` in bytes."""

    @abstractmethod
    def delete(self, name: str) -> None:
        """Remove ``name``; raise :class:`StoreError` if absent."""

    # -- data --------------------------------------------------------------

    @abstractmethod
    def read(self, name: str, offset: int = 0, length: Optional[int] = None) -> bytes:
        """Read ``length`` bytes (to EOF when ``None``) at ``offset``."""

    @abstractmethod
    def write(self, name: str, offset: int, data: bytes) -> None:
        """Write ``data`` at ``offset``, creating / extending the file."""

    @abstractmethod
    def truncate(self, name: str, size: int) -> None:
        """Shrink or zero-extend ``name`` to exactly ``size`` bytes."""

    @abstractmethod
    def sync(self, name: str) -> None:
        """Flush ``name`` through any caches to stable storage."""

    # -- conveniences ------------------------------------------------------

    def append(self, name: str, data: bytes) -> int:
        """Append ``data`` to ``name`` and return the offset it landed at."""
        offset = self.size(name) if self.exists(name) else 0
        self.write(name, offset, data)
        return offset

    def total_bytes(self) -> int:
        """Total bytes across all files (the on-disk database size)."""
        return sum(self.size(name) for name in self.list_files())


class MemoryUntrustedStore(UntrustedStore):
    """In-memory implementation backed by ``bytearray`` objects.

    Used by the test suite, by the attacker toolkit (its contents can be
    snapshotted and replayed trivially), and by benchmarks that want to
    isolate CPU costs from the filesystem.
    """

    def __init__(self) -> None:
        super().__init__()
        self._files: Dict[str, bytearray] = {}
        self._lock = threading.Lock()

    def list_files(self) -> List[str]:
        with self._lock:
            return sorted(self._files)

    def exists(self, name: str) -> bool:
        with self._lock:
            return name in self._files

    def size(self, name: str) -> int:
        with self._lock:
            return len(self._require(name))

    def delete(self, name: str) -> None:
        with self._lock:
            self._require(name)
            del self._files[name]

    def read(self, name: str, offset: int = 0, length: Optional[int] = None) -> bytes:
        with self._lock:
            buf = self._require(name)
            end = len(buf) if length is None else offset + length
            data = bytes(buf[offset:end])
        self.stats.record_read(len(data))
        return data

    def write(self, name: str, offset: int, data: bytes) -> None:
        with self._lock:
            buf = self._files.setdefault(name, bytearray())
            if offset > len(buf):
                buf.extend(b"\x00" * (offset - len(buf)))
            buf[offset:offset + len(data)] = data
        self.stats.record_write(len(data), name, offset)

    def truncate(self, name: str, size: int) -> None:
        with self._lock:
            buf = self._require(name)
            if size <= len(buf):
                del buf[size:]
            else:
                buf.extend(b"\x00" * (size - len(buf)))

    def sync(self, name: str) -> None:
        self.stats.record_sync()

    # -- attacker access ---------------------------------------------------

    def raw_view(self, name: str) -> bytearray:
        """Return the live backing buffer of ``name`` (attacker interface).

        Mutating the returned buffer models offline modification of
        removable media; the trusted layers never use this entry point.
        """
        with self._lock:
            return self._require(name)

    def _require(self, name: str) -> bytearray:
        buf = self._files.get(name)
        if buf is None:
            raise StoreError(f"no such file in untrusted store: {name!r}")
        return buf


class FileUntrustedStore(UntrustedStore):
    """Directory-backed implementation using real files.

    File names are mapped one-to-one to entries of ``root``; nested names
    are rejected to keep the namespace flat like the paper's file-system
    interface.

    All operations — metadata probes included — run under one lock, so a
    concurrent ``write``/``truncate`` cannot interleave with the
    existence probe another thread's ``write`` bases its open mode on,
    and ``list_files``/``exists``/``size`` observe a consistent
    namespace.  Raw ``OSError`` is translated to
    :class:`StoreError`/:class:`TransientStoreError` at every entry
    point.
    """

    def __init__(self, root: str) -> None:
        super().__init__()
        with _translating(f"creating store directory {root!r}"):
            self.root = os.path.abspath(root)
            os.makedirs(self.root, exist_ok=True)
        self._lock = threading.Lock()

    def _path(self, name: str) -> str:
        if not name or "/" in name or os.sep in name or name in (".", ".."):
            raise StoreError(f"invalid untrusted-store file name: {name!r}")
        return os.path.join(self.root, name)

    def list_files(self) -> List[str]:
        with self._lock, _translating("listing store directory"):
            return sorted(
                entry for entry in os.listdir(self.root)
                if os.path.isfile(os.path.join(self.root, entry))
            )

    def exists(self, name: str) -> bool:
        path = self._path(name)
        with self._lock, _translating(f"probing {name!r}"):
            return os.path.isfile(path)

    def size(self, name: str) -> int:
        path = self._path(name)
        with self._lock, _translating(f"sizing {name!r}"):
            if not os.path.isfile(path):
                raise StoreError(f"no such file in untrusted store: {name!r}")
            return os.path.getsize(path)

    def delete(self, name: str) -> None:
        path = self._path(name)
        with self._lock, _translating(f"deleting {name!r}"):
            if not os.path.isfile(path):
                raise StoreError(f"no such file in untrusted store: {name!r}")
            os.remove(path)

    def read(self, name: str, offset: int = 0, length: Optional[int] = None) -> bytes:
        path = self._path(name)
        with self._lock, _translating(f"reading {name!r}"):
            if not os.path.isfile(path):
                raise StoreError(f"no such file in untrusted store: {name!r}")
            with open(path, "rb") as handle:
                handle.seek(offset)
                data = handle.read() if length is None else handle.read(length)
        self.stats.record_read(len(data))
        return data

    def write(self, name: str, offset: int, data: bytes) -> None:
        path = self._path(name)
        with self._lock, _translating(f"writing {name!r}"):
            # The mode probe must sit inside the lock: another thread's
            # write may create the file between probe and open, and
            # "w+b" would then truncate its data away.
            mode = "r+b" if os.path.isfile(path) else "w+b"
            with open(path, mode) as handle:
                handle.seek(0, os.SEEK_END)
                end = handle.tell()
                if offset > end:
                    handle.write(b"\x00" * (offset - end))
                handle.seek(offset)
                handle.write(data)
        self.stats.record_write(len(data), name, offset)

    def truncate(self, name: str, size: int) -> None:
        path = self._path(name)
        with self._lock, _translating(f"truncating {name!r}"):
            if not os.path.isfile(path):
                raise StoreError(f"no such file in untrusted store: {name!r}")
            with open(path, "r+b") as handle:
                handle.truncate(size)

    def sync(self, name: str) -> None:
        path = self._path(name)
        with self._lock, _translating(f"syncing {name!r}"):
            if os.path.isfile(path):
                with open(path, "rb") as handle:
                    os.fsync(handle.fileno())
        self.stats.record_sync()
