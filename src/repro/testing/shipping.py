"""In-flight shipment tampering: the attacker owns the wire.

PR 1's :class:`~repro.testing.tamper.TamperMatrix` attacks the media
under a store; this module attacks the *replication channel* between a
primary and a :class:`~repro.replication.ReplicaApplier`.  The applier
accepts any transport with ``call(op, **params)``, so the attacker is a
client wrapper:

* :class:`TamperingReplicationClient` — rewrites manifests, segment
  frames, and master frames in flight (corrupt, truncate, drop,
  reorder, counter/generation rewind, consistently forged digests),
* :class:`RecordingReplicationClient` / :class:`ReplayShipmentClient` —
  capture a complete legitimate shipment and replay it later, the
  channel-level analogue of the paper's image-replay attack,
* :class:`ShipmentTamperMatrix` — runs every tamper kind against a
  fresh replica and demands that each one is *rejected with an error*,
  never silently installed.

The matrix picks its corruption targets from the primary's own location
map, so "corrupt a sealed payload byte under a forged digest" really
lands on authenticated state and must be caught by the applier's deep
scrub — the one check that reads bytes ``ChunkStore.open`` never
touches.
"""

from __future__ import annotations

import base64
import copy
import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ReplicationError, TDBError

__all__ = [
    "ShipmentTamper",
    "TamperingReplicationClient",
    "ShipmentRecording",
    "RecordingReplicationClient",
    "ReplayShipmentClient",
    "ShipmentCaseResult",
    "ShipmentTamperReport",
    "ShipmentTamperMatrix",
    "SHIPMENT_TAMPER_KINDS",
]

#: Every channel-attack family the matrix must exercise.
SHIPMENT_TAMPER_KINDS = (
    "corrupt-segment",
    "truncate-segment",
    "drop-segment",
    "reorder-segments",
    "forge-digest-payload",
    "corrupt-master",
    "truncate-master",
    "drop-master",
    "rewind-counter",
    "rewind-generation",
    "replay-shipment",
)


@dataclass
class ShipmentTamper:
    """One channel attack.

    ``target``/``partner`` are segment numbers; ``None`` targets the
    first sealed segment of the manifest (and the next one as partner).
    ``payload_offset`` positions single-byte corruption for the
    forged-digest attack.
    """

    kind: str
    target: Optional[int] = None
    partner: Optional[int] = None
    payload_offset: int = 0


class TamperingReplicationClient:
    """Transport wrapper applying one :class:`ShipmentTamper` in flight."""

    def __init__(self, inner, tamper: ShipmentTamper) -> None:
        self.inner = inner
        self.tamper = tamper
        self._manifest: Optional[Dict[str, Any]] = None
        self._swap: Dict[int, int] = {}
        self._forged: Dict[int, bytes] = {}

    def close(self) -> None:
        self.inner.close()

    # ------------------------------------------------------------------

    def call(self, op: str, **params) -> Dict[str, Any]:
        reply = self.inner.call(op, **params)
        if op == "repl.subscribe" and not reply.get("up_to_date"):
            reply = self._tamper_manifest(copy.deepcopy(reply))
            self._manifest = reply
        elif op == "repl.segments":
            reply = self._tamper_segment(params, dict(reply))
        elif op == "repl.master":
            reply = self._tamper_master(dict(reply))
        return reply

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _resolve_targets(self, manifest: Dict[str, Any]) -> Tuple[int, int]:
        entries = manifest["segments"]
        sealed = [e["number"] for e in entries if not e["is_tail"]]
        ordered = sealed + [e["number"] for e in entries if e["is_tail"]]
        target = self.tamper.target if self.tamper.target is not None else ordered[0]
        others = [n for n in ordered if n != target]
        partner = (
            self.tamper.partner
            if self.tamper.partner is not None
            else (others[0] if others else target)
        )
        return target, partner

    def _entry(self, manifest: Dict[str, Any], number: int) -> Dict[str, Any]:
        for entry in manifest["segments"]:
            if entry["number"] == number:
                return entry
        raise ReplicationError(f"segment {number} not in manifest")

    def _fetch_true_bytes(self, number: int, file_bytes: int) -> bytes:
        parts, cursor = [], 0
        while cursor < file_bytes:
            step = min(file_bytes - cursor, 4 * 1024 * 1024)
            reply = self.inner.call(
                "repl.segments", segment=number, offset=cursor, length=step
            )
            parts.append(base64.b64decode(reply["data"]))
            cursor += step
        return b"".join(parts)

    # ------------------------------------------------------------------
    # Tamper application
    # ------------------------------------------------------------------

    def _tamper_manifest(self, manifest: Dict[str, Any]) -> Dict[str, Any]:
        kind = self.tamper.kind
        target, partner = self._resolve_targets(manifest)
        if kind == "drop-segment":
            manifest["segments"] = [
                e for e in manifest["segments"] if e["number"] != target
            ]
        elif kind == "reorder-segments":
            a, b = self._entry(manifest, target), self._entry(manifest, partner)
            for key in ("file_bytes", "digest"):
                a[key], b[key] = b[key], a[key]
            self._swap = {target: partner, partner: target}
        elif kind == "forge-digest-payload":
            entry = self._entry(manifest, target)
            data = bytearray(self._fetch_true_bytes(target, entry["file_bytes"]))
            offset = min(self.tamper.payload_offset, len(data) - 1)
            data[offset] ^= 0xFF
            forged = bytes(data)
            entry["digest"] = hashlib.sha256(forged).hexdigest()
            self._forged[target] = forged
        elif kind == "rewind-counter":
            manifest["expected_counter"] = int(manifest["expected_counter"]) - 1
        elif kind == "rewind-generation":
            manifest["generation"] = int(manifest["generation"]) - 1
        elif kind == "truncate-master":
            manifest["master_bytes"] = int(manifest["master_bytes"]) - 1
        elif kind == "drop-master":
            manifest["master_bytes"] = 0
        return manifest

    def _tamper_segment(
        self, params: Dict[str, Any], reply: Dict[str, Any]
    ) -> Dict[str, Any]:
        kind = self.tamper.kind
        if self._manifest is None:
            return reply
        target, partner = self._resolve_targets(self._manifest)
        number = int(params["segment"])
        if kind == "corrupt-segment" and number == target:
            data = bytearray(base64.b64decode(reply["data"]))
            if data:
                data[len(data) // 2] ^= 0xFF
            reply["data"] = base64.b64encode(bytes(data)).decode("ascii")
        elif kind == "truncate-segment" and number == target:
            data = base64.b64decode(reply["data"])
            reply["data"] = base64.b64encode(data[:-1]).decode("ascii")
        elif kind == "reorder-segments" and number in self._swap:
            other = self._swap[number]
            swapped = self.inner.call(
                "repl.segments",
                segment=other,
                offset=int(params["offset"]),
                length=int(params["length"]),
            )
            reply["data"] = swapped["data"]
        elif kind == "forge-digest-payload" and number in self._forged:
            offset, length = int(params["offset"]), int(params["length"])
            chunk = self._forged[number][offset : offset + length]
            reply["data"] = base64.b64encode(chunk).decode("ascii")
        return reply

    def _tamper_master(self, reply: Dict[str, Any]) -> Dict[str, Any]:
        kind = self.tamper.kind
        data = bytearray(base64.b64decode(reply["data"]))
        if kind == "corrupt-master" and data:
            data[len(data) // 2] ^= 0xFF
        elif kind == "truncate-master":
            data = data[:-1]
        elif kind == "drop-master":
            data = bytearray()
        reply["data"] = base64.b64encode(bytes(data)).decode("ascii")
        return reply


# ---------------------------------------------------------------------------
# Record / replay
# ---------------------------------------------------------------------------


@dataclass
class ShipmentRecording:
    """A captured shipment: every frame of one full sync."""

    manifest: Optional[Dict[str, Any]] = None
    segments: Dict[Tuple[int, int, int], Dict[str, Any]] = field(default_factory=dict)
    master: Optional[Dict[str, Any]] = None


class RecordingReplicationClient:
    """Pass-through transport that captures the shipment it carries."""

    def __init__(self, inner) -> None:
        self.inner = inner
        self.recording = ShipmentRecording()

    def close(self) -> None:
        self.inner.close()

    def call(self, op: str, **params) -> Dict[str, Any]:
        reply = self.inner.call(op, **params)
        if op == "repl.subscribe" and not reply.get("up_to_date"):
            self.recording.manifest = copy.deepcopy(reply)
        elif op == "repl.segments":
            key = (
                int(params["segment"]),
                int(params["offset"]),
                int(params["length"]),
            )
            self.recording.segments[key] = copy.deepcopy(reply)
        elif op == "repl.master":
            self.recording.master = copy.deepcopy(reply)
        return reply


class ReplayShipmentClient:
    """Serves a recorded shipment verbatim — the channel replay attack."""

    def __init__(self, recording: ShipmentRecording) -> None:
        if recording.manifest is None or recording.master is None:
            raise ReplicationError("recording does not hold a full shipment")
        self.recording = recording

    def close(self) -> None:
        pass

    def call(self, op: str, **params) -> Dict[str, Any]:
        if op == "repl.subscribe":
            # The replayer ignores the replica's freshness hints — that
            # is the whole attack.
            return copy.deepcopy(self.recording.manifest)
        if op == "repl.segments":
            key = (
                int(params["segment"]),
                int(params["offset"]),
                int(params["length"]),
            )
            reply = self.recording.segments.get(key)
            if reply is None:
                raise ReplicationError(
                    f"replayed shipment has no frame for {key}"
                )
            return copy.deepcopy(reply)
        if op == "repl.master":
            return copy.deepcopy(self.recording.master)
        raise ReplicationError(f"replayed shipment cannot answer {op!r}")


# ---------------------------------------------------------------------------
# The matrix
# ---------------------------------------------------------------------------


@dataclass
class ShipmentCaseResult:
    name: str
    outcome: str  # "detected" | "accepted-identical" | "FAILED"
    detail: str = ""


@dataclass
class ShipmentTamperReport:
    cases: List[ShipmentCaseResult] = field(default_factory=list)

    @property
    def failures(self) -> List[ShipmentCaseResult]:
        return [case for case in self.cases if case.outcome == "FAILED"]

    @property
    def detected(self) -> List[ShipmentCaseResult]:
        return [case for case in self.cases if case.outcome == "detected"]

    def summary(self) -> str:
        return (
            f"{len(self.cases)} shipment attacks: "
            f"{len(self.detected)} detected, "
            f"{len(self.failures)} FAILED"
        )

    def assert_ok(self, require_all_detected: bool = True) -> None:
        problems = list(self.failures)
        if require_all_detected:
            problems += [
                case for case in self.cases if case.outcome == "accepted-identical"
            ]
        if problems:
            details = "; ".join(
                f"{case.name}: {case.outcome} {case.detail}" for case in problems
            )
            raise AssertionError(f"shipment attacks not rejected: {details}")


class ShipmentTamperMatrix:
    """Run every channel attack against fresh replicas of one primary.

    ``server`` is the primary's in-process
    :class:`~repro.server.server.TdbServer`; ``make_replica_dir`` must
    return a fresh directory provisioned with the shared ``secret.key``;
    ``advance_primary`` must perform one durable commit on the primary
    (used to make a recorded shipment stale before replaying it).
    """

    def __init__(
        self,
        server,
        make_replica_dir: Callable[[], str],
        advance_primary: Callable[[], None],
        chunk_config=None,
    ) -> None:
        self.server = server
        self.make_replica_dir = make_replica_dir
        self.advance_primary = advance_primary
        self.chunk_config = chunk_config

    # -- target selection ------------------------------------------------

    def _payload_target(self) -> Optional[Tuple[int, int]]:
        """``(segment, offset)`` of a live payload in a sealed segment.

        Chosen from the primary's own location map so single-byte
        corruption under a forged digest provably lands on Merkle-
        covered state (the deep-scrub detection path).
        """
        store = self.server.db.chunk_store
        with store._lock:
            tail = store.segments.tail_segment
            for _chunk_id, locator in store.location_map.iterate():
                if locator.segment != tail:
                    return locator.segment, locator.offset
        return None

    def _connect(self):
        from repro.server.client import TdbClient

        return TdbClient(*self.server.address)

    # -- case runners ----------------------------------------------------

    def _classify_accept(self, directory: str) -> ShipmentCaseResult:
        """A shipment was installed: identical to the primary, or corrupt?"""
        from repro.platform import FileSecretStore
        from repro.replication import load_state, open_replica_database
        import os

        secret = FileSecretStore(
            os.path.join(directory, "secret.key"), create=False
        )
        state = load_state(directory, secret)
        primary_master = self.server.db.chunk_store.master_io.load_latest()
        db = open_replica_database(directory, state.counter, self.chunk_config)
        try:
            replica_master = db.chunk_store.master_io.load_latest()
        finally:
            db.close()
        identical = (
            replica_master.db_uuid == primary_master.db_uuid
            and replica_master.generation == primary_master.generation
            and replica_master.root == primary_master.root
            and replica_master.expected_counter == primary_master.expected_counter
        )
        if identical:
            return ShipmentCaseResult("", "accepted-identical")
        return ShipmentCaseResult(
            "", "FAILED", "tampered shipment was installed and diverges"
        )

    def _run_tamper_case(self, tamper: ShipmentTamper) -> ShipmentCaseResult:
        from repro.replication import ReplicaApplier

        directory = self.make_replica_dir()
        client = TamperingReplicationClient(self._connect(), tamper)
        applier = ReplicaApplier(
            directory, client=client, chunk_config=self.chunk_config
        )
        try:
            applier.sync_once()
        except TDBError as exc:
            return ShipmentCaseResult(
                tamper.kind, "detected", type(exc).__name__
            )
        finally:
            applier.close()
        result = self._classify_accept(directory)
        result.name = tamper.kind
        return result

    def _run_replay_case(self) -> ShipmentCaseResult:
        from repro.replication import ReplicaApplier

        directory = self.make_replica_dir()
        recorder = RecordingReplicationClient(self._connect())
        with ReplicaApplier(
            directory, client=recorder, chunk_config=self.chunk_config
        ) as applier:
            applier.sync_once()
        recording = recorder.recording
        # The primary moves on and the replica follows...
        self.advance_primary()
        with ReplicaApplier(
            directory, client=self._connect(), chunk_config=self.chunk_config
        ) as applier:
            applier.sync_once()
        # ...then the attacker replays the captured, now-stale shipment.
        with ReplicaApplier(
            directory,
            client=ReplayShipmentClient(recording),
            chunk_config=self.chunk_config,
        ) as applier:
            try:
                applier.sync_once()
            except TDBError as exc:
                return ShipmentCaseResult(
                    "replay-shipment", "detected", type(exc).__name__
                )
        result = self._classify_accept(directory)
        result.name = "replay-shipment"
        if result.outcome == "accepted-identical":
            # Installing the *stale* image without an error is exactly
            # the rollback the sidecar exists to stop.
            result = ShipmentCaseResult(
                "replay-shipment", "FAILED", "stale shipment was re-installed"
            )
        return result

    # -- driver ----------------------------------------------------------

    def run(self, kinds=SHIPMENT_TAMPER_KINDS) -> ShipmentTamperReport:
        report = ShipmentTamperReport()
        for kind in kinds:
            if kind == "replay-shipment":
                report.cases.append(self._run_replay_case())
                continue
            tamper = ShipmentTamper(kind)
            if kind == "forge-digest-payload":
                located = self._payload_target()
                if located is None:
                    report.cases.append(
                        ShipmentCaseResult(
                            kind,
                            "FAILED",
                            "no sealed live payload to target; grow the workload",
                        )
                    )
                    continue
                tamper = ShipmentTamper(
                    kind, target=located[0], payload_offset=located[1]
                )
            report.cases.append(self._run_tamper_case(tamper))
        return report
