"""Ready-made crash scenarios for the sweep harness.

:class:`ChunkStoreCrashScenario` drives a TPC-B-shaped workload (branch,
tellers, accounts, append-only history — the paper's own benchmark
family) against a :class:`~repro.chunkstore.ChunkStore`, reporting every
durability barrier to the sweep's :class:`~repro.testing.sweeper.CommitLedger`.

Durability bookkeeping mirrors the store's recovery contract
(`store._replay`): recovery rolls back to the last *durable* commit or
checkpoint, so nondurable commits are only acknowledged once a later
durable commit, explicit/auto checkpoint, or cleaner pass folds them in.
Barriers are detected from ``stats()`` deltas (``durable_commits_total``,
``checkpoints_total``) rather than from the arguments we passed, so
auto-checkpoints triggered by residual-log growth are counted exactly
like explicit ones.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.chunkstore import ChunkStore
from repro.config import ChunkStoreConfig, SecurityProfile
from repro.platform import MemoryOneWayCounter, MemorySecretStore
from repro.testing.faults import FaultyUntrustedStore
from repro.testing.sweeper import CommitLedger, CrashScenario

__all__ = ["ChunkStoreCrashScenario"]

_SECRET = b"fault-sweep-secret-0123456789abc"


def _payload(tag: int, seq: int, size: int) -> bytes:
    """Deterministic chunk content (no randomness: sweeps must replay)."""
    pattern = bytes((tag * 37 + seq * 11 + i) % 256 for i in range(min(size, 64)))
    reps = size // len(pattern) + 1
    return (pattern * reps)[:size]


class ChunkStoreCrashScenario(CrashScenario):
    """TPC-B-style transactions over a small, churn-heavy chunk store.

    ``transactions`` durable/nondurable update rounds run after an
    initial durable population; the round mix includes a mid-run
    checkpoint, a history-chunk deallocation, and payloads sized to roll
    the 4 KiB segments so the sweep crosses segment-header and
    master-record writes, not just commit records.
    """

    def __init__(self, *, secure: bool = True, transactions: int = 8) -> None:
        self.secure = secure
        self.transactions = transactions
        self.config = ChunkStoreConfig(
            segment_size=4096,
            initial_segments=3,
            checkpoint_residual_bytes=8192,
            map_fanout=8,
            fsync=True,  # memory-store syncs are free but give the sweep
                         # real sync boundaries to crash at

            security=(
                SecurityProfile() if secure else SecurityProfile.insecure()
            ),
        )
        self.secret_store = MemorySecretStore(_SECRET)
        self.counter = MemoryOneWayCounter()
        self.store: Optional[ChunkStore] = None
        self.model: Dict[int, bytes] = {}

    # -- CrashScenario interface -------------------------------------------

    def build(self, store: FaultyUntrustedStore) -> None:
        self.untrusted = store
        self.store = ChunkStore.format(
            store, self.secret_store, self.counter, self.config
        )

    def workload(self, ledger: CommitLedger) -> None:
        store = self.store
        branch = store.allocate_chunk_id()
        tellers = [store.allocate_chunk_id() for _ in range(2)]
        accounts = [store.allocate_chunk_id() for _ in range(4)]

        setup = {branch: _payload(1, 0, 160)}
        setup.update({t: _payload(2, i, 120) for i, t in enumerate(tellers)})
        setup.update({a: _payload(3, i, 200) for i, a in enumerate(accounts)})
        self._commit(ledger, setup, durable=True)

        history: list = []
        for txn in range(1, self.transactions + 1):
            account = accounts[txn % len(accounts)]
            teller = tellers[txn % len(tellers)]
            hist = store.allocate_chunk_id()
            history.append(hist)
            writes = {
                account: _payload(3, txn, 200 + 40 * (txn % 3)),
                teller: _payload(2, txn, 120),
                branch: _payload(1, txn, 160),
                hist: _payload(4, txn, 300),
            }
            deallocs = ()
            if txn == self.transactions - 2 and len(history) > 2:
                deallocs = (history.pop(0),)
            self._commit(ledger, writes, deallocs=deallocs, durable=(txn % 3 != 1))
            if txn == self.transactions // 2:
                self._barrier_call(ledger, lambda: store.checkpoint(force=True))
        self._barrier_call(ledger, lambda: store.clean(max_segments=1))

    def recover(self) -> Dict[int, bytes]:
        store = ChunkStore.open(
            self.untrusted, self.secret_store, self.counter, self.config
        )
        try:
            return {cid: store.read(cid) for cid in store.chunk_ids()}
        finally:
            try:
                store.close()
            except Exception:  # noqa: BLE001 - state was already captured
                pass

    # -- tamper-matrix plumbing --------------------------------------------

    def run_to_image(self, clean_close: bool = True):
        """Fault-free run; the tamper-matrix baseline.

        Returns ``(image, expected_states)``: a media snapshot and every
        committed state recovery may legally land on (all durable
        prefixes plus the final folded state).  With ``clean_close`` the
        snapshot is taken after ``close()`` — the master covers the whole
        log and commit framing is dead data.  Without it the snapshot is
        a crash image with a live residual log, so tampering must get
        past the record hash chain too.
        """
        store = FaultyUntrustedStore()
        ledger = CommitLedger()
        self.build(store)
        ledger.format_complete = True
        self.workload(ledger)
        self.tag_size = self.store.codec.tag_size
        final = dict(self._target())
        if clean_close:
            self.store.close()  # the close checkpoint folds pending commits
            self.model, self._pending = final, None
        states = [dict(s) for s in ledger.durable_states]
        if final not in states:
            states.append(final)
        return store.save_image(), states

    def recover_image(self, image) -> Dict[int, bytes]:
        """Open a fresh store over ``image`` and return its state."""
        fresh = FaultyUntrustedStore()
        fresh.load_image(image)
        self.untrusted = fresh
        return self.recover()

    # -- durability bookkeeping --------------------------------------------

    def _commit(
        self,
        ledger: CommitLedger,
        writes: Dict[int, bytes],
        deallocs=(),
        durable: bool = True,
    ) -> None:
        target = dict(self._target())
        target.update(writes)
        for cid in deallocs:
            target.pop(cid, None)
        self._run_tracked(
            ledger,
            target,
            lambda: self.store.commit(writes, deallocs, durable=durable),
        )

    def _barrier_call(self, ledger: CommitLedger, call: Callable[[], None]) -> None:
        """A call that adds no state but may make pending commits durable."""
        self._run_tracked(ledger, dict(self._target()), call)

    def _target(self) -> Dict[int, bytes]:
        # The state a durability barrier would persist right now: the last
        # acknowledged model plus every pending nondurable commit, which is
        # exactly what ``attempted`` tracked since the last barrier.
        return self._pending if self._pending is not None else self.model

    def _run_tracked(self, ledger: CommitLedger, target, call) -> None:
        before = self.store.stats()
        ledger.attempting(target)
        self._pending = target
        call()
        after = self.store.stats()
        if (
            after.durable_commits_total > before.durable_commits_total
            or after.checkpoints_total > before.checkpoints_total
        ):
            self.model = target
            self._pending = None
            ledger.acknowledged()

    _pending: Optional[Dict[int, bytes]] = None
