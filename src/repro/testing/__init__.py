"""Deterministic fault-injection and tamper-sweep harness.

Testing machinery for the paper's threat model, reusable from the test
suite, examples, and benchmarks:

* :mod:`repro.testing.faults` — :class:`FaultyUntrustedStore` /
  :class:`FaultyArchivalStore` wrap the platform stores and inject
  scheduled crashes, torn writes, bit-flips, zeroing, image replay, and
  transient (retryable) failures (:class:`FaultSchedule`),
* :mod:`repro.testing.sweeper` — :class:`CrashSweeper` enumerates every
  write/sync boundary of a workload and checks recovery against a
  :class:`CommitLedger`; :meth:`CrashSweeper.sweep_replays` sweeps
  rollback attacks against the one-way counter,
* :mod:`repro.testing.tamper` — :class:`TamperMatrix` corrupts every
  typed byte region of a media image (:func:`map_image_regions`) and
  demands detection or clean recovery, never silent acceptance,
* :mod:`repro.testing.netfaults` — :class:`ChaosProxy`, a deterministic
  in-process TCP proxy that drops, delays, truncates, trickles,
  duplicates, and black-holes protocol frames on an exact
  ``(connection, frame)`` schedule (:class:`NetFaultSchedule`) — the
  network-layer mirror of the storage fault harness,
* :mod:`repro.testing.scenarios` — ready-made workloads
  (:class:`ChunkStoreCrashScenario`),
* :mod:`repro.testing.shipping` — in-flight replication-channel attacks
  (:class:`TamperingReplicationClient`, record/replay clients) and the
  :class:`ShipmentTamperMatrix` proving a replica rejects every one.
"""

from repro.testing.faults import (
    Fault,
    FaultSchedule,
    FaultyArchivalStore,
    FaultyDigestPool,
    FaultyUntrustedStore,
    InjectedCrash,
)
from repro.testing.netfaults import (
    ChaosProxy,
    NET_FAULT_ACTIONS,
    NetFault,
    NetFaultSchedule,
)
from repro.testing.scenarios import ChunkStoreCrashScenario
from repro.testing.shipping import (
    RecordingReplicationClient,
    ReplayShipmentClient,
    SHIPMENT_TAMPER_KINDS,
    ShipmentCaseResult,
    ShipmentRecording,
    ShipmentTamper,
    ShipmentTamperMatrix,
    ShipmentTamperReport,
    TamperingReplicationClient,
)
from repro.testing.sweeper import (
    CommitLedger,
    CrashPointResult,
    CrashScenario,
    CrashSweeper,
    ReplayPointResult,
    ReplayReport,
    SweepReport,
)
from repro.testing.tamper import (
    Mutation,
    Region,
    REQUIRED_REGION_KINDS,
    TamperMatrix,
    TamperReport,
    map_image_regions,
)

__all__ = [
    "Fault",
    "FaultSchedule",
    "FaultyArchivalStore",
    "FaultyDigestPool",
    "FaultyUntrustedStore",
    "InjectedCrash",
    "ChaosProxy",
    "NET_FAULT_ACTIONS",
    "NetFault",
    "NetFaultSchedule",
    "ChunkStoreCrashScenario",
    "RecordingReplicationClient",
    "ReplayShipmentClient",
    "SHIPMENT_TAMPER_KINDS",
    "ShipmentCaseResult",
    "ShipmentRecording",
    "ShipmentTamper",
    "ShipmentTamperMatrix",
    "ShipmentTamperReport",
    "TamperingReplicationClient",
    "CommitLedger",
    "CrashPointResult",
    "CrashScenario",
    "CrashSweeper",
    "ReplayPointResult",
    "ReplayReport",
    "SweepReport",
    "Mutation",
    "Region",
    "REQUIRED_REGION_KINDS",
    "TamperMatrix",
    "TamperReport",
    "map_image_regions",
]
