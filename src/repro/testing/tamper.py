"""Exhaustive offline-tamper enumeration over a recorded media image.

The paper's adversary edits the untrusted store while the system is
down.  :func:`map_image_regions` parses a media image (the dict of
file contents a :class:`~repro.testing.faults.FaultyUntrustedStore`
snapshots) into typed byte regions — master records, segment headers,
commit-record framing, chunk payloads, location-map nodes, checkpoint
and link records — and :class:`TamperMatrix` then corrupts every region
(bit-flips across the region plus whole-region zeroing) and classifies
what recovery does with each mutation:

``detected``
    recovery raised :class:`TamperDetectedError` (or its replay
    subclass) — the integrity machinery caught it,
``clean``
    recovery succeeded and landed on a known committed state — the
    mutation hit dead data (superseded chunk versions, stale map nodes,
    the unused master slot), which is outside the threat model,
``structural``
    recovery refused with some other :class:`TDBError` — loud, but
    worth eyeballing, so it is tallied separately,
``failed``
    recovery accepted corrupted data silently (a state no committed
    prefix ever had) or crashed with a non-TDB exception.

`assert_ok` demands zero failures *and* that the sweep actually covered
the four on-disk region families the threat model names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.chunkstore.format import CommitBody, RecordCodec, RecordKind
from repro.chunkstore.master import MASTER_FILES
from repro.errors import TamperDetectedError, TDBError

__all__ = [
    "Region",
    "Mutation",
    "map_image_regions",
    "TamperMatrix",
    "TamperReport",
    "REQUIRED_REGION_KINDS",
]

# The four on-disk region families of the paper's threat model.
REQUIRED_REGION_KINDS = frozenset(
    {"master", "segment-header", "chunk-payload", "map-node"}
)

_KIND_NAMES = {
    RecordKind.SEG_HEADER: "segment-header",
    RecordKind.COMMIT: "commit-record",
    RecordKind.MAP_NODE: "map-node",
    RecordKind.CHECKPOINT: "checkpoint",
    RecordKind.LINK: "link",
}


@dataclass
class Region:
    """A typed byte range ``[start, start+length)`` of one image file."""

    file: str
    start: int
    length: int
    kind: str
    detail: str = ""

    def describe(self) -> str:
        tail = f" ({self.detail})" if self.detail else ""
        return f"{self.kind} {self.file}@{self.start}+{self.length}{tail}"


def map_image_regions(image: Dict[str, bytes], tag_size: int) -> List[Region]:
    """Partition every byte of ``image`` into typed regions.

    ``tag_size`` is the record tag width of the store that wrote the
    image (MAC tag size when secure, 4 for the CRC fallback) — region
    boundaries depend on it.  Bytes that do not parse as records are
    reported as ``unparsed`` regions so the partition stays total.
    """
    codec = RecordCodec()  # header parsing does not involve the tag
    regions: List[Region] = []
    for name in sorted(image):
        data = image[name]
        if name in MASTER_FILES:
            if data:
                regions.append(Region(name, 0, len(data), "master"))
            continue
        offset = 0
        while offset < len(data):
            try:
                kind, body_len = codec.parse_header(
                    data[offset:offset + codec.header_size]
                )
            except TDBError:
                regions.append(
                    Region(name, offset, len(data) - offset, "unparsed")
                )
                break
            total = codec.header_size + body_len + tag_size
            if offset + total > len(data):
                regions.append(
                    Region(name, offset, len(data) - offset, "unparsed",
                           "torn tail record")
                )
                break
            kind_name = _KIND_NAMES.get(kind, "unparsed")
            if kind == RecordKind.COMMIT:
                regions.extend(
                    _split_commit_record(name, data, offset, body_len, total, codec)
                )
            else:
                regions.append(Region(name, offset, total, kind_name))
            offset += total
    return regions


def _split_commit_record(
    name: str,
    data: bytes,
    offset: int,
    body_len: int,
    total: int,
    codec: RecordCodec,
) -> List[Region]:
    """Split one COMMIT record into payload intervals and framing."""
    body = data[offset + codec.header_size:offset + codec.header_size + body_len]
    try:
        parsed = CommitBody.decode(bytes(body), codec.header_size)
    except Exception:  # noqa: BLE001 - unparseable body: treat as one blob
        return [Region(name, offset, total, "commit-record", "undecodable body")]
    regions: List[Region] = []
    cursor = offset
    intervals = sorted(
        (offset + rel, len(item.payload))
        for rel, item in zip(parsed.payload_offsets, parsed.writes)
        if len(item.payload) > 0
    )
    for seqno, (start, length) in enumerate(intervals):
        if start > cursor:
            regions.append(
                Region(name, cursor, start - cursor, "commit-record",
                       f"seqno {parsed.seqno}")
            )
        regions.append(
            Region(name, start, length, "chunk-payload",
                   f"commit seqno {parsed.seqno} write #{seqno}")
        )
        cursor = start + length
    if cursor < offset + total:
        regions.append(
            Region(name, cursor, offset + total - cursor, "commit-record",
                   f"seqno {parsed.seqno}")
        )
    return regions


@dataclass
class Mutation:
    """One corruption of the baseline image."""

    region: Region
    action: str          # "flip" | "zero"
    offset: int = 0      # absolute file offset (flip)
    mask: int = 0x01

    def describe(self) -> str:
        if self.action == "zero":
            return f"zero whole {self.region.describe()}"
        return (
            f"flip {self.region.file}@{self.offset} mask 0x{self.mask:02x} "
            f"in {self.region.describe()}"
        )

    def apply(self, image: Dict[str, bytes]) -> Dict[str, bytes]:
        """Return a copy of ``image`` with this mutation applied."""
        mutated = dict(image)
        buf = bytearray(mutated[self.region.file])
        if self.action == "zero":
            end = self.region.start + self.region.length
            buf[self.region.start:end] = bytes(self.region.length)
        else:
            buf[self.offset] ^= self.mask & 0xFF
        mutated[self.region.file] = bytes(buf)
        return mutated


@dataclass
class TamperOutcome:
    mutation: Mutation
    outcome: str         # "detected" | "clean" | "structural" | "failed"
    detail: str = ""


@dataclass
class TamperReport:
    regions: List[Region]
    outcomes: List[TamperOutcome] = field(default_factory=list)

    def tally(self) -> Dict[str, Dict[str, int]]:
        """``{region kind: {outcome: count}}``."""
        table: Dict[str, Dict[str, int]] = {}
        for entry in self.outcomes:
            kind_row = table.setdefault(entry.mutation.region.kind, {})
            kind_row[entry.outcome] = kind_row.get(entry.outcome, 0) + 1
        return table

    @property
    def failures(self) -> List[TamperOutcome]:
        return [o for o in self.outcomes if o.outcome == "failed"]

    def kinds_covered(self) -> frozenset:
        return frozenset(r.kind for r in self.regions)

    def summary(self) -> str:
        parts = []
        for kind, row in sorted(self.tally().items()):
            cells = ", ".join(f"{k}={v}" for k, v in sorted(row.items()))
            parts.append(f"{kind}: {cells}")
        return f"{len(self.outcomes)} mutations — " + "; ".join(parts)

    def assert_ok(
        self, required_kinds: frozenset = REQUIRED_REGION_KINDS
    ) -> None:
        missing = required_kinds - self.kinds_covered()
        if missing:
            raise AssertionError(
                f"tamper sweep never touched region kinds {sorted(missing)}; "
                "the workload image is too small to be meaningful"
            )
        if self.failures:
            lines = [self.summary()] + [
                f"  {o.mutation.describe()}: {o.detail}"
                for o in self.failures[:12]
            ]
            raise AssertionError("\n".join(lines))


class TamperMatrix:
    """Every-region corruption sweep over a baseline media image."""

    def __init__(
        self,
        image: Dict[str, bytes],
        tag_size: int,
        *,
        offsets_per_region: int = 8,
        regions: Optional[List[Region]] = None,
    ) -> None:
        self.image = dict(image)
        self.regions = (
            regions if regions is not None
            else map_image_regions(self.image, tag_size)
        )
        self.offsets_per_region = offsets_per_region

    def mutations(self) -> List[Mutation]:
        """The full mutation list: flips across each region, plus zeroing."""
        out: List[Mutation] = []
        for region in self.regions:
            if region.length <= 0:
                continue
            for offset in self._flip_offsets(region):
                out.append(
                    Mutation(region, "flip", offset=offset,
                             mask=1 << (offset % 8))
                )
            out.append(Mutation(region, "zero"))
        return out

    def _flip_offsets(self, region: Region) -> List[int]:
        """All offsets for small regions; edges plus an even stride else."""
        n = self.offsets_per_region
        if region.length <= n:
            return [region.start + i for i in range(region.length)]
        picks = {
            region.start + round(i * (region.length - 1) / (n - 1))
            for i in range(n)
        }
        return sorted(picks)

    def sweep(
        self,
        recover: Callable[[Dict[str, bytes]], dict],
        expected_states: Sequence[dict],
    ) -> TamperReport:
        """Run ``recover`` over every mutation of the baseline image.

        ``recover`` must open the system from the given image and return
        its full observable state (reading every chunk, so payload and
        map corruption cannot hide).  ``expected_states`` are the
        committed states recovery may legally land on.
        """
        report = TamperReport(regions=self.regions)
        for mutation in self.mutations():
            try:
                state = recover(mutation.apply(self.image))
            except TamperDetectedError as exc:
                report.outcomes.append(
                    TamperOutcome(mutation, "detected", str(exc))
                )
            except TDBError as exc:
                report.outcomes.append(
                    TamperOutcome(
                        mutation, "structural",
                        f"{type(exc).__name__}: {exc}",
                    )
                )
            except Exception as exc:  # noqa: BLE001 - that IS the finding
                report.outcomes.append(
                    TamperOutcome(
                        mutation, "failed",
                        f"recovery crashed with non-TDB "
                        f"{type(exc).__name__}: {exc}",
                    )
                )
            else:
                if any(state == known for known in expected_states):
                    report.outcomes.append(TamperOutcome(mutation, "clean"))
                else:
                    report.outcomes.append(
                        TamperOutcome(
                            mutation, "failed",
                            "recovery silently accepted corrupted data "
                            f"({len(state)} chunks, matching no committed "
                            "state)",
                        )
                    )
        return report
