"""Exhaustive crash-schedule enumeration for recoverable stores.

A :class:`CrashSweeper` runs a workload once over a
:class:`~repro.testing.faults.FaultyUntrustedStore` to *count* its media
operations, then re-runs it once per operation boundary — crash after
every write, torn version of every multi-byte write, crash after every
sync — and asserts recovery after each crash lands on a committed prefix
of the history.  No boundary is sampled away: the sweep is exhaustive by
construction, which is how related verifiable-store work (GlassDB's
systematic fault schedules) validates integrity guarantees.

The contract with the workload is the :class:`CommitLedger`: before each
store call that could become durable the workload reports the state that
call would make durable (``attempting``), and after the call returns and
is known durable it confirms (``acknowledged``).  At any crash point the
only legal recoveries are then the last acknowledged state or the
in-flight attempted one; anything else is lost data or fabricated data,
and the sweep fails.  A crash that interrupts initial formatting may
instead be *flagged* (recovery refuses), since no commitment exists yet.

:meth:`CrashSweeper.sweep_replays` additionally replays every
intermediate media image recorded at a durable boundary against the
final one-way counter, asserting each rollback is detected — the paper's
replay attack, swept instead of sampled.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ReplayDetectedError, TDBError
from repro.testing.faults import FaultSchedule, FaultyUntrustedStore, InjectedCrash

__all__ = [
    "CommitLedger",
    "CrashScenario",
    "CrashPointResult",
    "SweepReport",
    "ReplayPointResult",
    "ReplayReport",
    "CrashSweeper",
]


class CommitLedger:
    """The durable-state history a crash sweep checks recovery against.

    ``durable_states`` starts with the empty state (what a freshly
    formatted store recovers to); ``attempting``/``acknowledged`` append
    to it as the workload runs.  States are plain dicts mapping an
    application-chosen key to a value — the sweep only compares them for
    equality.
    """

    def __init__(self, on_acknowledge: Optional[Callable[[], None]] = None) -> None:
        self.durable_states: List[dict] = [{}]
        self.attempted: Optional[dict] = None
        self.format_complete = False
        self._on_acknowledge = on_acknowledge

    def attempting(self, state: dict) -> None:
        """Declare the state the next store call would make durable."""
        self.attempted = dict(state)

    def acknowledged(self) -> None:
        """Confirm the attempted state is durable (the call returned)."""
        if self.attempted is None:
            return
        self.durable_states.append(self.attempted)
        self.attempted = None
        if self._on_acknowledge is not None:
            self._on_acknowledge()

    def candidates(self) -> List[dict]:
        """States a crash right now may legally recover to."""
        legal = [self.durable_states[-1]]
        if self.attempted is not None:
            legal.append(self.attempted)
        return legal


class CrashScenario(ABC):
    """One system under crash test.  A fresh instance is built per run.

    Implementations must set ``self.untrusted`` to the store passed to
    :meth:`build` and, when they use a one-way counter, expose it as
    ``self.counter`` (the sweeper's replay sweep reads it).
    """

    untrusted: FaultyUntrustedStore
    counter = None

    @abstractmethod
    def build(self, store: FaultyUntrustedStore) -> None:
        """Format the system on ``store`` (runs under the fault schedule)."""

    @abstractmethod
    def workload(self, ledger: CommitLedger) -> None:
        """Run the workload, reporting durable boundaries to ``ledger``."""

    @abstractmethod
    def recover(self) -> dict:
        """Reopen from ``self.untrusted`` and return the observable state.

        Raises a :class:`TDBError` when recovery refuses (flagged).
        """


@dataclass
class CrashPointResult:
    description: str
    outcome: str            # "recovered" | "flagged" | "failed"
    detail: str = ""


@dataclass
class SweepReport:
    """Everything one :meth:`CrashSweeper.sweep` learned."""

    total_writes: int
    total_syncs: int
    points: List[CrashPointResult] = field(default_factory=list)

    @property
    def recovered(self) -> int:
        return sum(1 for p in self.points if p.outcome == "recovered")

    @property
    def flagged(self) -> int:
        return sum(1 for p in self.points if p.outcome == "flagged")

    @property
    def failures(self) -> List[CrashPointResult]:
        return [p for p in self.points if p.outcome == "failed"]

    def summary(self) -> str:
        return (
            f"{len(self.points)} crash points over {self.total_writes} writes "
            f"/ {self.total_syncs} syncs: {self.recovered} recovered, "
            f"{self.flagged} flagged, {len(self.failures)} failed"
        )

    def assert_ok(self) -> None:
        if self.failures:
            lines = [self.summary()] + [
                f"  {p.description}: {p.detail}" for p in self.failures[:12]
            ]
            raise AssertionError("\n".join(lines))


@dataclass
class ReplayPointResult:
    description: str
    outcome: str            # "detected" | "current" | "failed"
    detail: str = ""


@dataclass
class ReplayReport:
    points: List[ReplayPointResult] = field(default_factory=list)

    @property
    def detected(self) -> int:
        return sum(1 for p in self.points if p.outcome == "detected")

    @property
    def failures(self) -> List[ReplayPointResult]:
        return [p for p in self.points if p.outcome == "failed"]

    def assert_ok(self) -> None:
        if self.failures:
            lines = [f"{len(self.failures)} replayed images were accepted:"] + [
                f"  {p.description}: {p.detail}" for p in self.failures[:12]
            ]
            raise AssertionError("\n".join(lines))


class CrashSweeper:
    """Enumerates every crash boundary of a scenario's workload."""

    def __init__(
        self,
        scenario_factory: Callable[[], CrashScenario],
        *,
        torn_writes: bool = True,
        torn_keep: Callable[[int], int] = lambda size: size // 2,
    ) -> None:
        self.scenario_factory = scenario_factory
        self.torn_writes = torn_writes
        self.torn_keep = torn_keep

    # -- profiling ---------------------------------------------------------

    def profile(self) -> FaultyUntrustedStore:
        """Run the workload once, fault-free, to count its operations."""
        scenario = self.scenario_factory()
        store = FaultyUntrustedStore()
        ledger = CommitLedger()
        scenario.build(store)
        ledger.format_complete = True
        scenario.workload(ledger)
        return store

    # -- the sweep ---------------------------------------------------------

    def sweep(self) -> SweepReport:
        profile = self.profile()
        report = SweepReport(
            total_writes=profile.total_writes, total_syncs=profile.total_syncs
        )
        mutation_ops = [op for op in profile.op_log if op[0] != "sync"]
        for index, (kind, name, nbytes) in enumerate(mutation_ops, start=1):
            fault = FaultSchedule().crash_after_write(index).faults[0]
            report.points.append(
                self.run_point(fault, f"crash after {kind}#{index} ({name})")
            )
            if self.torn_writes and kind == "write" and nbytes >= 2:
                keep = max(1, min(nbytes - 1, self.torn_keep(nbytes)))
                torn = FaultSchedule().crash_mid_write(index, keep).faults[0]
                report.points.append(
                    self.run_point(
                        torn, f"torn write#{index} ({name}, {keep}/{nbytes} bytes)"
                    )
                )
        for index in range(1, profile.total_syncs + 1):
            fault = FaultSchedule().crash_after_sync(index).faults[0]
            report.points.append(self.run_point(fault, f"crash after sync#{index}"))
        return report

    def run_point(self, fault, description: str) -> CrashPointResult:
        scenario = self.scenario_factory()
        store = FaultyUntrustedStore(schedule=FaultSchedule([fault]))
        ledger = CommitLedger()
        crashed = False
        try:
            scenario.build(store)
            ledger.format_complete = True
            scenario.workload(ledger)
        except InjectedCrash:
            crashed = True
        if not crashed:
            return CrashPointResult(
                description,
                "failed",
                "scheduled fault never fired: workload is nondeterministic",
            )
        store.heal()
        try:
            state = scenario.recover()
        except TDBError as exc:
            if ledger.format_complete:
                return CrashPointResult(
                    description,
                    "failed",
                    f"recovery flagged a pure crash as {type(exc).__name__}: {exc}",
                )
            return CrashPointResult(description, "flagged", str(exc))
        except Exception as exc:  # noqa: BLE001 - classifying arbitrary bugs
            return CrashPointResult(
                description,
                "failed",
                f"recovery raised non-TDB {type(exc).__name__}: {exc}",
            )
        for candidate in ledger.candidates():
            if state == candidate:
                return CrashPointResult(description, "recovered")
        return CrashPointResult(
            description,
            "failed",
            f"recovered state matches no committed prefix "
            f"(got {len(state)} entries, last durable has "
            f"{len(ledger.durable_states[-1])})",
        )

    # -- replay sweep ------------------------------------------------------

    def sweep_replays(self) -> ReplayReport:
        """Replay every durable-boundary image against the final counter.

        Requires a scenario with a one-way counter (``scenario.counter``);
        every image recorded before the final counter value must be
        rejected as a replay, and the final image must still open.
        """
        scenario = self.scenario_factory()
        store = FaultyUntrustedStore()
        images: List[Dict[str, bytes]] = []
        counters: List[int] = []

        def capture() -> None:
            images.append(store.save_image())
            counters.append(scenario.counter.read())

        ledger = CommitLedger(on_acknowledge=capture)
        scenario.build(store)
        ledger.format_complete = True
        scenario.workload(ledger)
        if scenario.counter is None:
            raise ValueError("replay sweep needs a scenario with a one-way counter")
        # Close out the run through normal recovery so the final image and
        # counter are settled, then record them as the "current" epoch.
        scenario.recover()
        final_counter = scenario.counter.read()
        final_image = store.save_image()
        images.append(final_image)
        counters.append(final_counter)

        report = ReplayReport()
        for position, (image, counter_at) in enumerate(zip(images, counters)):
            description = (
                f"image #{position} (counter {counter_at}, current {final_counter})"
            )
            store.load_image(image)
            is_stale = counter_at < final_counter
            try:
                scenario.recover()
            except ReplayDetectedError as exc:
                if is_stale:
                    report.points.append(
                        ReplayPointResult(description, "detected", str(exc))
                    )
                else:
                    report.points.append(
                        ReplayPointResult(
                            description, "failed",
                            f"current image misflagged as replay: {exc}",
                        )
                    )
            except TDBError as exc:
                report.points.append(
                    ReplayPointResult(
                        description,
                        "failed",
                        f"replay misclassified as {type(exc).__name__}: {exc}",
                    )
                )
            except Exception as exc:  # noqa: BLE001
                report.points.append(
                    ReplayPointResult(
                        description,
                        "failed",
                        f"recovery raised non-TDB {type(exc).__name__}: {exc}",
                    )
                )
            else:
                if is_stale:
                    report.points.append(
                        ReplayPointResult(
                            description, "failed", "stale image replayed undetected"
                        )
                    )
                else:
                    report.points.append(ReplayPointResult(description, "current"))
        return report
