"""Deterministic network fault injection: the ChaosProxy.

The storage fault harness (:mod:`repro.testing.faults`) enumerates what
a power cut can do to the media; this module does the same for what a
hostile network can do to the wire protocol.  A :class:`ChaosProxy`
sits between a :class:`~repro.server.client.TdbClient` and a
:class:`~repro.server.server.TdbServer` as an in-process TCP proxy
that understands the length-prefixed framing, so faults land at exact
frame boundaries — the points where exactly-once semantics are won or
lost:

* **drop-before** — the request frame never reaches the server (the
  client cannot know whether it was sent),
* **drop-after** — the request executes but its response is discarded
  (the classic in-doubt commit),
* **truncate** — only a prefix of the request frame arrives before the
  connection dies (the server sees a mid-frame EOF),
* **delay** — the frame is held for a fixed time before forwarding
  (timeout paths),
* **trickle** — the frame dribbles in a few bytes at a time (slow-loris;
  the server's absolute frame deadline must fire),
* **duplicate** — the frame is delivered twice (idempotency paths),
* **blackhole** — the connection accepts but nothing is ever forwarded
  or answered (client timeout paths).

Faults are scheduled on exact ``(connection, frame)`` coordinates —
both 1-based, mirroring the storage harness's 1-based operation
indices — via the chainable :class:`NetFaultSchedule`, so a sweep is
deterministic and replayable with no global random state.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "NetFault",
    "NetFaultSchedule",
    "ChaosProxy",
    "NET_FAULT_ACTIONS",
]

_LENGTH = struct.Struct(">I")

# Fault actions.
DROP_BEFORE = "drop_before"  # never forward the request; kill the connection
DROP_AFTER = "drop_after"    # forward, execute, discard the response
TRUNCATE = "truncate"        # forward only `keep` bytes, then kill
DELAY = "delay"              # hold the frame for `delay` seconds
TRICKLE = "trickle"          # forward in `chunk`-byte slices, `interval` apart
DUPLICATE = "duplicate"      # deliver the frame twice
BLACKHOLE = "blackhole"      # accept the connection, forward nothing, ever

NET_FAULT_ACTIONS = (
    DROP_BEFORE, DROP_AFTER, TRUNCATE, DELAY, TRICKLE, DUPLICATE, BLACKHOLE,
)


@dataclass
class NetFault:
    """One scheduled network fault.

    ``connection``/``frame`` select the trigger: the ``frame``-th
    request frame (1-based) of the ``connection``-th accepted
    connection (1-based).  A :data:`BLACKHOLE` fault binds to the whole
    connection; its ``frame`` is ignored.
    """

    connection: int
    frame: int
    action: str
    delay: float = 0.0       # seconds, for DELAY
    keep: int = 4            # forwarded prefix bytes, for TRUNCATE
    chunk: int = 1           # slice size in bytes, for TRICKLE
    interval: float = 0.05   # sleep between slices, for TRICKLE
    fired: bool = field(init=False, default=False)

    def __post_init__(self) -> None:
        if self.action not in NET_FAULT_ACTIONS:
            raise ValueError(f"unknown net fault action {self.action!r}")
        if self.connection < 1 or self.frame < 1:
            raise ValueError("connection and frame indices are 1-based")
        if self.keep < 0:
            raise ValueError("keep must be non-negative")
        if self.chunk < 1:
            raise ValueError("chunk must be at least 1 byte")


class NetFaultSchedule:
    """An ordered collection of :class:`NetFault` objects (chainable)."""

    def __init__(self, faults: Optional[List[NetFault]] = None) -> None:
        self.faults: List[NetFault] = list(faults or [])

    # -- builders ----------------------------------------------------------

    def add(self, fault: NetFault) -> "NetFaultSchedule":
        self.faults.append(fault)
        return self

    def drop_before(self, connection: int, frame: int) -> "NetFaultSchedule":
        return self.add(NetFault(connection, frame, DROP_BEFORE))

    def drop_after(self, connection: int, frame: int) -> "NetFaultSchedule":
        return self.add(NetFault(connection, frame, DROP_AFTER))

    def truncate(
        self, connection: int, frame: int, keep: int = 4
    ) -> "NetFaultSchedule":
        return self.add(NetFault(connection, frame, TRUNCATE, keep=keep))

    def delay(
        self, connection: int, frame: int, seconds: float
    ) -> "NetFaultSchedule":
        return self.add(NetFault(connection, frame, DELAY, delay=seconds))

    def trickle(
        self,
        connection: int,
        frame: int,
        chunk: int = 1,
        interval: float = 0.05,
    ) -> "NetFaultSchedule":
        return self.add(
            NetFault(connection, frame, TRICKLE, chunk=chunk, interval=interval)
        )

    def duplicate(self, connection: int, frame: int) -> "NetFaultSchedule":
        return self.add(NetFault(connection, frame, DUPLICATE))

    def blackhole(self, connection: int) -> "NetFaultSchedule":
        return self.add(NetFault(connection, 1, BLACKHOLE))

    # -- queries -----------------------------------------------------------

    def matching(self, connection: int, frame: int) -> Optional[NetFault]:
        for fault in self.faults:
            if fault.action == BLACKHOLE and fault.connection == connection:
                return fault
            if fault.connection == connection and fault.frame == frame:
                return fault
        return None

    def fired(self) -> List[NetFault]:
        return [f for f in self.faults if f.fired]

    def unfired(self) -> List[NetFault]:
        return [f for f in self.faults if not f.fired]


class _ProxyConnection:
    """One client connection pumped through the fault schedule."""

    def __init__(
        self,
        proxy: "ChaosProxy",
        client_sock: socket.socket,
        index: int,
    ) -> None:
        self.proxy = proxy
        self.client = client_sock
        self.index = index
        self.server: Optional[socket.socket] = None
        self.frames = 0
        self.thread = threading.Thread(
            target=self._pump, name=f"chaos-conn-{index}", daemon=True
        )

    def start(self) -> None:
        self.thread.start()

    def close(self) -> None:
        for sock in (self.client, self.server):
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass

    def _kill(self) -> None:
        """Abortive close (RST, not FIN) on both sides.

        A fault must look like a *dropped* connection, not a polite
        goodbye: the server parks a session whose peer vanished
        (OSError/ProtocolError) but treats a clean EOF as "client done"
        and aborts immediately.
        """
        for sock in (self.client, self.server):
            if sock is not None:
                try:
                    sock.setsockopt(
                        socket.SOL_SOCKET,
                        socket.SO_LINGER,
                        struct.pack("ii", 1, 0),
                    )
                except OSError:
                    pass
        self.close()

    # -- framing -----------------------------------------------------------

    def _recv_exact(self, sock: socket.socket, nbytes: int) -> Optional[bytes]:
        chunks = []
        remaining = nbytes
        while remaining > 0:
            chunk = sock.recv(min(remaining, 65536))
            if not chunk:
                return None
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _read_raw_frame(self, sock: socket.socket) -> Optional[bytes]:
        header = self._recv_exact(sock, _LENGTH.size)
        if header is None:
            return None
        (length,) = _LENGTH.unpack(header)
        body = self._recv_exact(sock, length)
        if body is None:
            return None
        return header + body

    # -- pump --------------------------------------------------------------

    def _pump(self) -> None:
        try:
            self.server = socket.create_connection(
                (self.proxy.target_host, self.proxy.target_port), timeout=10.0
            )
            self.server.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._pump_loop()
        except OSError:
            pass
        finally:
            self.close()
            self.proxy._connection_finished(self)

    def _pump_loop(self) -> None:
        while not self.proxy._stopping:
            frame = self._read_raw_frame(self.client)
            if frame is None:
                return  # client done (or gone)
            self.frames += 1
            fault = self.proxy.schedule.matching(self.index, self.frames)
            if fault is None:
                self.server.sendall(frame)
                self._relay_responses(1)
                continue
            fault.fired = True
            self.proxy._record_fault(fault)
            if fault.action == BLACKHOLE:
                # Swallow everything; the client's timeout is the only
                # way out.  Keep reading so the client's sends succeed.
                while self._read_raw_frame(self.client) is not None:
                    pass
                return
            if fault.action == DROP_BEFORE:
                self._kill()  # drop both sides without forwarding
                return
            if fault.action == TRUNCATE:
                self.server.sendall(frame[: fault.keep])
                self._kill()  # mid-frame cut on the server side
                return
            if fault.action == DELAY:
                time.sleep(fault.delay)
                self.server.sendall(frame)
                self._relay_responses(1)
                continue
            if fault.action == TRICKLE:
                try:
                    for start in range(0, len(frame), fault.chunk):
                        self.server.sendall(frame[start : start + fault.chunk])
                        time.sleep(fault.interval)
                except OSError:
                    return  # the server hung up on the slow-loris: done
                self._relay_responses(1)
                continue
            if fault.action == DUPLICATE:
                self.server.sendall(frame)
                self.server.sendall(frame)
                self._relay_responses(2)
                continue
            if fault.action == DROP_AFTER:
                self.server.sendall(frame)
                # Let the request execute and discard its response.
                self._read_raw_frame(self.server)
                self._kill()
                return
            raise AssertionError(f"unhandled fault action {fault.action!r}")

    def _relay_responses(self, count: int) -> None:
        for _ in range(count):
            response = self._read_raw_frame(self.server)
            if response is None:
                # Server closed (timeout abort, shutdown): mirror the
                # EOF to the client and end the pump via OSError.
                raise OSError("upstream closed")
            self.client.sendall(response)
            self.proxy.frames_forwarded += 1


class ChaosProxy:
    """A deterministic in-process TCP proxy injecting network faults.

    Frame-synchronous by design: each accepted connection is pumped
    request-by-request, so a fault lands on an exact protocol frame.
    Usable as a context manager; ``proxy.address`` is where the client
    should connect.
    """

    def __init__(
        self,
        target_host: str,
        target_port: int,
        schedule: Optional[NetFaultSchedule] = None,
        host: str = "127.0.0.1",
    ) -> None:
        self.target_host = target_host
        self.target_port = target_port
        self.schedule = schedule or NetFaultSchedule()
        self.host = host
        self.port = 0
        self.connections_accepted = 0
        self.frames_forwarded = 0
        self.faults_fired: List[Tuple[int, str]] = []
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._connections: Dict[int, _ProxyConnection] = {}
        self._lock = threading.Lock()
        self._stopping = False
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ChaosProxy":
        if self._started:
            return self
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        listener.settimeout(0.1)
        self._listener = listener
        self.host, self.port = listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-accept", daemon=True
        )
        self._started = True
        self._accept_thread.start()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def stop(self) -> None:
        if not self._started or self._stopping:
            return
        self._stopping = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        with self._lock:
            connections = list(self._connections.values())
        for conn in connections:
            conn.close()
        for conn in connections:
            conn.thread.join(timeout=5.0)
        self._started = False

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- internals ---------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping:
            try:
                sock, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                self.connections_accepted += 1
                index = self.connections_accepted
                conn = _ProxyConnection(self, sock, index)
                self._connections[index] = conn
            conn.start()

    def _connection_finished(self, conn: _ProxyConnection) -> None:
        with self._lock:
            self._connections.pop(conn.index, None)

    def _record_fault(self, fault: NetFault) -> None:
        with self._lock:
            self.faults_fired.append((fault.connection, fault.action))
