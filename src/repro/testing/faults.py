"""Deterministic fault injection for the untrusted platform stores.

The paper's guarantees are stated over *schedules* an adversary or a
power cut can impose on the untrusted store: the process may die between
or inside any two media operations, and the media themselves may be
modified offline at any byte.  This module makes those schedules explicit
and repeatable:

* :class:`FaultyUntrustedStore` wraps any :class:`UntrustedStore` behind
  the same interface and counts every mutating operation (write,
  truncate, delete) and every sync, so a sweep can enumerate *all*
  operation boundaries of a workload rather than sampling a few,
* :class:`FaultSchedule` describes what to inject and when: crash after
  the Nth write, crash in the middle of the Nth write (a torn append),
  crash after the Nth sync, bit-flips at chosen offsets, sector zeroing,
  whole-image replay from a recorded snapshot, and transient failures
  (the Nth read/write/sync raises
  :class:`~repro.errors.TransientStoreError` ``times`` attempts in a
  row, then recovers — the schedule the resilient retry layer exists
  for),
* :class:`FaultyArchivalStore` gives backup streams the same treatment,
* :class:`FaultyDigestPool` injects dispatch-level failures into a
  :class:`~repro.crypto.pool.DigestPool` — a worker-process crash
  (:class:`BrokenProcessPool`) or a transient error — to prove the
  pool's users (scrub above all) fall back to the serial path without
  ever under-reporting damage.

A fired crash raises :class:`InjectedCrash` — deliberately *not* a
:class:`~repro.errors.TDBError`, so no library error handler can mistake
it for a condition it is supposed to recover from.  After a crash every
further operation on the store raises too (the process is "dead");
:meth:`FaultyUntrustedStore.heal` models rebooting with the surviving
media.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import BinaryIO, Dict, List, Optional, Tuple

from concurrent.futures.process import BrokenProcessPool

from repro.crypto.pool import DigestPool
from repro.errors import StoreError, TransientStoreError
from repro.platform.archival import ArchivalStore
from repro.platform.untrusted import MemoryUntrustedStore, UntrustedStore

__all__ = [
    "InjectedCrash",
    "Fault",
    "FaultSchedule",
    "FaultyUntrustedStore",
    "FaultyArchivalStore",
    "FaultyDigestPool",
]


class InjectedCrash(Exception):
    """A scheduled crash point fired (simulated power loss).

    Not a :class:`TDBError`: the library must never catch or convert it.
    """


# Fault actions.
CRASH = "crash"         # complete the operation, then crash
TORN = "torn"           # apply only a prefix of the write, then crash
FLIP = "flip"           # complete the operation, then flip bits on the media
ZERO = "zero"           # complete the operation, then zero a byte region
REPLAY = "replay"       # complete the operation, then replace the whole image
TRANSIENT = "transient" # fail with TransientStoreError *before* the operation

_ACTIONS = (CRASH, TORN, FLIP, ZERO, REPLAY, TRANSIENT)


@dataclass
class Fault:
    """One scheduled fault.

    ``on``/``index`` select the trigger: the ``index``-th (1-based)
    mutating operation (``on="write"`` — truncate and delete count too,
    they mutate the media), the ``index``-th sync (``on="sync"``), or
    the ``index``-th read (``on="read"``, transient faults only).
    ``action`` selects what happens there.

    A :data:`TRANSIENT` fault raises
    :class:`~repro.errors.TransientStoreError` *before* the operation
    reaches the media and does **not** consume the operation index, so a
    retrying caller hits the same fault again until its ``times`` budget
    is spent — the flaky-then-recover schedule the resilient store's
    backoff is built for.  ``times`` larger than the retry budget models
    a fault that never recovers (the giveup path).
    """

    on: str                     # "write" | "sync" | "read"
    index: int                  # 1-based operation index
    action: str                 # one of _ACTIONS
    name: Optional[str] = None  # target file for flip/zero
    offset: int = 0             # byte offset for flip/zero
    length: int = 0             # region length for zero
    mask: int = 0x01            # xor mask for flip
    keep: int = 0               # bytes of the write that land for torn
    image: Optional[Dict[str, bytes]] = None  # replacement image for replay
    times: int = 1              # consecutive failures for transient
    remaining: int = field(init=False, default=0)
    fired: bool = False

    def __post_init__(self) -> None:
        if self.on not in ("write", "sync", "read"):
            raise ValueError(
                f"fault trigger must be 'write', 'sync' or 'read': {self.on!r}"
            )
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.on == "read" and self.action != TRANSIENT:
            raise ValueError("read faults support only the transient action")
        if self.index < 1:
            raise ValueError("fault indices are 1-based")
        if self.action == TORN and self.keep < 0:
            raise ValueError("torn writes keep a non-negative byte count")
        if self.times < 1:
            raise ValueError("transient faults fire at least once")
        self.remaining = self.times if self.action == TRANSIENT else 0

    def describe(self) -> str:
        where = f"{self.on}#{self.index}"
        if self.action == TORN:
            return f"torn {where} (keep {self.keep} bytes)"
        if self.action == FLIP:
            return f"flip {where} {self.name}@{self.offset} mask 0x{self.mask:02x}"
        if self.action == ZERO:
            return f"zero {where} {self.name}@{self.offset}+{self.length}"
        if self.action == REPLAY:
            return f"replay image after {where}"
        if self.action == TRANSIENT:
            return f"transient {where} x{self.times}"
        return f"crash after {where}"


class FaultSchedule:
    """An ordered collection of :class:`Fault` objects.

    Build one with the named helpers (mirroring the fault menu) or by
    passing faults directly; hand it to a :class:`FaultyUntrustedStore`.
    """

    def __init__(self, faults: Optional[List[Fault]] = None) -> None:
        self.faults: List[Fault] = list(faults or [])

    # -- builders ----------------------------------------------------------

    def add(self, fault: Fault) -> "FaultSchedule":
        self.faults.append(fault)
        return self

    def crash_after_write(self, index: int) -> "FaultSchedule":
        return self.add(Fault(on="write", index=index, action=CRASH))

    def crash_mid_write(self, index: int, keep: int) -> "FaultSchedule":
        return self.add(Fault(on="write", index=index, action=TORN, keep=keep))

    def crash_after_sync(self, index: int) -> "FaultSchedule":
        return self.add(Fault(on="sync", index=index, action=CRASH))

    def flip_after_write(
        self, index: int, name: str, offset: int, mask: int = 0x01
    ) -> "FaultSchedule":
        return self.add(
            Fault(on="write", index=index, action=FLIP, name=name,
                  offset=offset, mask=mask)
        )

    def zero_after_write(
        self, index: int, name: str, offset: int, length: int
    ) -> "FaultSchedule":
        return self.add(
            Fault(on="write", index=index, action=ZERO, name=name,
                  offset=offset, length=length)
        )

    def replay_after_write(
        self, index: int, image: Dict[str, bytes]
    ) -> "FaultSchedule":
        return self.add(Fault(on="write", index=index, action=REPLAY, image=image))

    def transient_on_read(self, index: int, times: int = 1) -> "FaultSchedule":
        return self.add(Fault(on="read", index=index, action=TRANSIENT, times=times))

    def transient_on_write(self, index: int, times: int = 1) -> "FaultSchedule":
        return self.add(Fault(on="write", index=index, action=TRANSIENT, times=times))

    def transient_on_sync(self, index: int, times: int = 1) -> "FaultSchedule":
        return self.add(Fault(on="sync", index=index, action=TRANSIENT, times=times))

    # -- queries -----------------------------------------------------------

    def matching(self, on: str, index: int) -> List[Fault]:
        return [f for f in self.faults if f.on == on and f.index == index]

    def unfired(self) -> List[Fault]:
        return [f for f in self.faults if not f.fired]

    def describe(self) -> str:
        return "; ".join(f.describe() for f in self.faults) or "no faults"


class FaultyUntrustedStore(UntrustedStore):
    """An :class:`UntrustedStore` that injects scheduled faults.

    Wraps ``inner`` (a fresh :class:`MemoryUntrustedStore` by default) and
    is substitutable anywhere the trusted layers expect an untrusted
    store.  Mutating operations and syncs are counted; matching faults
    from :attr:`schedule` fire at their boundary.
    """

    def __init__(
        self,
        inner: Optional[UntrustedStore] = None,
        schedule: Optional[FaultSchedule] = None,
    ) -> None:
        super().__init__()
        self.inner = inner if inner is not None else MemoryUntrustedStore()
        self.schedule = schedule or FaultSchedule()
        self.total_writes = 0        # mutating ops: write, truncate, delete
        self.total_syncs = 0
        self.total_reads = 0         # read() calls that reached the media
        self.op_log: List[Tuple[str, str, int]] = []  # (kind, name, nbytes)
        self.crashed = False

    # -- crash machinery ---------------------------------------------------

    def _check_alive(self) -> None:
        if self.crashed:
            raise InjectedCrash("store crashed earlier in this schedule")

    def _crash(self, fault: Fault) -> None:
        fault.fired = True
        self.crashed = True
        raise InjectedCrash(fault.describe())

    def _apply_post_faults(self, faults: List[Fault]) -> None:
        for fault in faults:
            if fault.action == CRASH:
                self._crash(fault)
            elif fault.action == FLIP:
                fault.fired = True
                self.flip_bits(fault.name, fault.offset, fault.mask)
            elif fault.action == ZERO:
                fault.fired = True
                self.zero_region(fault.name, fault.offset, fault.length)
            elif fault.action == REPLAY:
                fault.fired = True
                self.load_image(fault.image or {})

    def _maybe_transient(self, on: str, candidate: int, context: str) -> None:
        """Fire a pending transient fault for the *candidate* op index.

        Raising here leaves the operation counter untouched, so a retry
        of the same logical operation meets the same fault again until
        its ``times`` budget runs out and the operation finally lands.
        """
        for fault in self.schedule.matching(on, candidate):
            if fault.action == TRANSIENT and fault.remaining > 0:
                fault.remaining -= 1
                fault.fired = True
                raise TransientStoreError(
                    f"injected {fault.describe()} during {context}"
                )

    def heal(self) -> None:
        """Reboot: clear the crashed flag and drop the remaining schedule."""
        self.crashed = False
        self.schedule = FaultSchedule()

    # -- mutating operations (fault boundaries) ----------------------------

    def write(self, name: str, offset: int, data: bytes) -> None:
        self._check_alive()
        self._maybe_transient("write", self.total_writes + 1, f"write({name!r})")
        self.total_writes += 1
        faults = self.schedule.matching("write", self.total_writes)
        for fault in faults:
            if fault.action == TORN:
                keep = max(0, min(fault.keep, len(data)))
                if keep:
                    self.inner.write(name, offset, data[:keep])
                self.op_log.append(("write", name, keep))
                self._crash(fault)
        self.inner.write(name, offset, data)
        self.op_log.append(("write", name, len(data)))
        self._apply_post_faults(faults)

    def truncate(self, name: str, size: int) -> None:
        self._check_alive()
        self._maybe_transient("write", self.total_writes + 1, f"truncate({name!r})")
        self.total_writes += 1
        faults = self.schedule.matching("write", self.total_writes)
        for fault in faults:
            if fault.action == TORN:
                # A "torn" truncate never reaches the media.
                self.op_log.append(("truncate", name, 0))
                self._crash(fault)
        self.inner.truncate(name, size)
        self.op_log.append(("truncate", name, size))
        self._apply_post_faults(faults)

    def delete(self, name: str) -> None:
        self._check_alive()
        self._maybe_transient("write", self.total_writes + 1, f"delete({name!r})")
        self.total_writes += 1
        faults = self.schedule.matching("write", self.total_writes)
        for fault in faults:
            if fault.action == TORN:
                self.op_log.append(("delete", name, 0))
                self._crash(fault)
        self.inner.delete(name)
        self.op_log.append(("delete", name, 0))
        self._apply_post_faults(faults)

    def sync(self, name: str) -> None:
        self._check_alive()
        self._maybe_transient("sync", self.total_syncs + 1, f"sync({name!r})")
        self.total_syncs += 1
        self.inner.sync(name)
        self.op_log.append(("sync", name, 0))
        self._apply_post_faults(self.schedule.matching("sync", self.total_syncs))

    # -- read-side delegation ----------------------------------------------

    def list_files(self) -> List[str]:
        self._check_alive()
        return self.inner.list_files()

    def exists(self, name: str) -> bool:
        self._check_alive()
        return self.inner.exists(name)

    def size(self, name: str) -> int:
        self._check_alive()
        return self.inner.size(name)

    def read(self, name: str, offset: int = 0, length: Optional[int] = None) -> bytes:
        self._check_alive()
        self._maybe_transient("read", self.total_reads + 1, f"read({name!r})")
        self.total_reads += 1
        return self.inner.read(name, offset, length)

    # -- offline manipulation (does not count as operations) ---------------

    def save_image(self) -> Dict[str, bytes]:
        """Record a full media snapshot (step one of a replay attack)."""
        return {name: self.inner.read(name) for name in self.inner.list_files()}

    def load_image(self, image: Dict[str, bytes]) -> None:
        """Replace the media contents with a recorded snapshot."""
        for name in self.inner.list_files():
            if name not in image:
                self.inner.delete(name)
        for name, data in image.items():
            if self.inner.exists(name):
                self.inner.truncate(name, 0)
            self.inner.write(name, 0, data)

    def flip_bits(self, name: str, offset: int, mask: int = 0x01) -> None:
        """XOR ``mask`` into the byte of ``name`` at ``offset``."""
        size = self.inner.size(name)
        if not 0 <= offset < size:
            raise StoreError(f"flip offset {offset} outside {name!r} (size {size})")
        original = self.inner.read(name, offset, 1)
        self.inner.write(name, offset, bytes([original[0] ^ (mask & 0xFF)]))

    def zero_region(self, name: str, offset: int, length: int) -> None:
        """Overwrite ``length`` bytes of ``name`` at ``offset`` with zeros."""
        size = self.inner.size(name)
        if not 0 <= offset <= size:
            raise StoreError(f"zero offset {offset} outside {name!r} (size {size})")
        length = min(length, size - offset)
        if length > 0:
            self.inner.write(name, offset, b"\x00" * length)


class FaultyDigestPool(DigestPool):
    """A :class:`DigestPool` whose first N dispatches fail.

    ``crash_dispatches`` makes that many parallel dispatches raise
    :class:`BrokenProcessPool` (the executor's worker-death signal);
    ``transient_error`` substitutes a different exception type to model
    infrastructure failures that are not worker deaths (pickling I/O,
    resource exhaustion).  Either way the real executor is never
    touched for a failed dispatch, so tests stay fast and
    deterministic.  ``dispatch_attempts`` counts every parallel dispatch
    the pool *tried*, fired or clean.
    """

    def __init__(
        self,
        max_workers: int = 2,
        perf=None,
        batch_size: int = 16,
        crash_dispatches: int = 1,
        transient_error: Optional[Exception] = None,
    ) -> None:
        super().__init__(
            max_workers=max_workers, perf=perf, batch_size=batch_size
        )
        self.crash_dispatches = crash_dispatches
        self.transient_error = transient_error
        self.dispatch_attempts = 0

    def _dispatch(self, fn, batches):
        self.dispatch_attempts += 1
        if self.dispatch_attempts <= self.crash_dispatches:
            if self.transient_error is not None:
                raise self.transient_error
            raise BrokenProcessPool(
                "injected worker crash "
                f"(dispatch {self.dispatch_attempts}/{self.crash_dispatches})"
            )
        return super()._dispatch(fn, batches)


class _FaultyStreamWriter(io.RawIOBase):
    """Stream writer that counts writes and fires scheduled faults."""

    def __init__(self, store: "FaultyArchivalStore", inner: BinaryIO) -> None:
        super().__init__()
        self._store = store
        self._inner = inner

    def writable(self) -> bool:
        return True

    def write(self, data) -> int:
        if self._store.crashed:
            raise InjectedCrash("archival store crashed earlier in this schedule")
        self._store.total_writes += 1
        faults = self._store.schedule.matching("write", self._store.total_writes)
        for fault in faults:
            if fault.action == TORN:
                keep = max(0, min(fault.keep, len(data)))
                if keep:
                    self._inner.write(bytes(data[:keep]))
                self._inner.close()
                fault.fired = True
                self._store.crashed = True
                raise InjectedCrash(fault.describe())
        written = self._inner.write(bytes(data))
        for fault in faults:
            if fault.action == CRASH:
                self._inner.close()
                fault.fired = True
                self._store.crashed = True
                raise InjectedCrash(fault.describe())
        return written if written is not None else len(data)

    def close(self) -> None:
        if not self.closed:
            self._inner.close()
        super().close()


class FaultyArchivalStore(ArchivalStore):
    """An :class:`ArchivalStore` whose stream writes can crash or tear."""

    def __init__(
        self,
        inner: ArchivalStore,
        schedule: Optional[FaultSchedule] = None,
    ) -> None:
        self.inner = inner
        self.schedule = schedule or FaultSchedule()
        self.total_writes = 0
        self.crashed = False

    def heal(self) -> None:
        self.crashed = False
        self.schedule = FaultSchedule()

    def create_stream(self, name: str) -> BinaryIO:
        if self.crashed:
            raise InjectedCrash("archival store crashed earlier in this schedule")
        return _FaultyStreamWriter(self, self.inner.create_stream(name))

    def open_stream(self, name: str) -> BinaryIO:
        if self.crashed:
            raise InjectedCrash("archival store crashed earlier in this schedule")
        return self.inner.open_stream(name)

    def list_streams(self) -> List[str]:
        return self.inner.list_streams()

    def delete_stream(self, name: str) -> None:
        self.inner.delete_stream(name)

    def exists(self, name: str) -> bool:
        return self.inner.exists(name)
